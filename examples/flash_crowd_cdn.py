#!/usr/bin/env python3
"""Flash crowd on a peer-to-peer CDN: detection + dynamic replication.

The paper's motivating scenario (§1): a document suddenly becomes very
popular at a remote site. This example drives a request trace with an
injected flash crowd through the detector and the hotspot replication
policy, placing replicas via the authenticated admin interface, and
reports how client-perceived latency at the crowded site evolves.

Run: ``python examples/flash_crowd_cdn.py``
"""

from __future__ import annotations

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import HOST_SITE, Testbed
from repro.location.service import LocationClient
from repro.net.address import ContactAddress, Endpoint
from repro.net.rpc import RpcClient
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.replication.flashcrowd import FlashCrowdDetector
from repro.replication.policy import RequestObservation
from repro.replication.strategies import HotspotReplication
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.workloads.trace import TraceConfig, generate_trace, inject_flash_crowd

CROWD_SITE = "root/us/cornell"
CROWD_HOST = "ensamble02.cornell.edu"


def site_fetch_time(testbed, site_host: str, url: str) -> float:
    stack = testbed.client_stack(site_host, location_ttl=1.0)
    start = testbed.clock.now()
    response = stack.proxy.handle(url)
    assert response.ok, response.status
    return testbed.clock.now() - start


def main() -> None:
    testbed = Testbed()

    # Publish the soon-to-be-viral document at the VU home site.
    owner = DocumentOwner("vu.nl/viral-story", clock=testbed.clock)
    owner.put_element(
        PageElement("index.html", b"<html><h1>Breaking story</h1></html>" + b"." * 8000)
    )
    document = owner.publish(validity=7200)
    testbed.publish(owner)
    url = "globe://vu.nl/viral-story!/index.html"

    # Object servers at the remote sites, keystore-authorised for the owner.
    rpc = RpcClient(testbed.network.transport_for("sporty.cs.vu.nl"))
    coordinator = ReplicationCoordinator(
        LocationClient(
            rpc, testbed.location_endpoint, "root/europe/vu", clock=testbed.clock
        )
    )
    for host, site in (("canardo.inria.fr", "root/europe/inria"), (CROWD_HOST, CROWD_SITE)):
        server = ObjectServer(host=host, site=site, clock=testbed.clock)
        server.keystore.authorize("owner", owner.public_key)
        testbed.network.register(
            Endpoint(host, "objectserver"), server.rpc_server().handle_frame
        )
        coordinator.add_site(
            SitePort(
                site=site,
                admin=AdminClient(
                    rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock
                ),
            )
        )

    print("Before the crowd, a Cornell access costs "
          f"{site_fetch_time(testbed, CROWD_HOST, url)*1000:.0f} ms (transatlantic)")

    # A background trace plus a flash crowd from Cornell.
    trace = inject_flash_crowd(
        generate_trace(
            TraceConfig(
                documents=(owner.name,),
                sites=("root/europe/vu", "root/europe/inria", CROWD_SITE),
                duration=300.0,
                rate=0.5,
                seed=42,
            )
        ),
        document=owner.name,
        site=CROWD_SITE,
        start=60.0,
        duration=60.0,
        rate=10.0,
        seed=43,
    )
    print(f"Trace: {len(trace)} requests over 300 s "
          f"(crowd of ~600 between t=60 s and t=120 s)")

    detector = FlashCrowdDetector(short_window=10.0, long_window=120.0, surge_factor=4.0)
    policy = HotspotReplication(create_rate=1.0, destroy_rate=0.05, window=30.0)
    current_sites = ["root/europe/vu"]
    placed_at = None

    base_time = testbed.clock.now()
    for event in trace:
        now = base_time + event.time
        if now > testbed.clock.now():
            testbed.clock.advance_to(now)
        crowd_event = detector.observe(now)
        if crowd_event is not None:
            print(f"  t={event.time:6.1f}s  flash crowd {crowd_event.kind}: "
                  f"{crowd_event.short_rate:.1f} req/s vs baseline "
                  f"{crowd_event.baseline_rate:.2f} req/s")
        for action in policy.on_request(
            RequestObservation(site=event.site, time=now), current_sites
        ):
            if action.kind.value == "create" and action.site == CROWD_SITE:
                port_admin = AdminClient(
                    rpc, Endpoint(CROWD_HOST, "objectserver"), owner.keys, testbed.clock
                )
                result = port_admin.create_replica(document)
                testbed.location_service.tree.insert(
                    owner.oid.hex,
                    CROWD_SITE,
                    ContactAddress.from_dict(result["address"]),
                )
                current_sites.append(CROWD_SITE)
                placed_at = event.time
                print(f"  t={event.time:6.1f}s  replica pushed to {CROWD_SITE} "
                      f"(signed state, authenticated admin channel)")

    assert placed_at is not None, "the crowd never triggered replication"
    after = site_fetch_time(testbed, CROWD_HOST, url)
    print(f"\nAfter replication, a Cornell access costs {after*1000:.0f} ms (local replica)")
    print("Every byte served by the new replica is still verified against")
    print("the owner's integrity certificate — the CDN host needs no trust.")


if __name__ == "__main__":
    main()
