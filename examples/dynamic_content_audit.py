#!/usr/bin/env python3
"""Dynamic Web content on untrusted hosts (§6 future work).

Static GlobeDoc content is signed once by the owner; dynamic content
(per-query results) cannot be. This example runs the paper's suggested
alternative: untrusted replicas evaluate the owner's query function and
*sign every answer*; clients probabilistically double-check against the
trusted origin; an offline audit of the signed receipts convicts any
replica that ever lied.

Also demonstrates the §6 hosting-negotiation machinery: the replica is
placed only after a server's resource quote satisfies the owner's QoS
requirements.

Run: ``python examples/dynamic_content_audit.py``
"""

from __future__ import annotations

from repro.dynamic.audit import DynamicAuditor
from repro.dynamic.client import DynamicClient
from repro.dynamic.service import DynamicOrigin, DynamicReplica
from repro.errors import AuthenticityError
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.replication.negotiation import QosRequirements, choose_site
from repro.server.objectserver import ObjectServer
from repro.server.resources import ResourceLimits
from repro.sim.clock import SimClock


def search(state, query: str) -> bytes:
    """The owner's dynamic logic: full-text search over page elements."""
    hits = [
        name
        for name in state.element_names
        if query.encode() in state.element(name).content
    ]
    return ("results: " + ", ".join(hits) if hits else "results: none").encode()


def main() -> None:
    clock = SimClock(0.0)

    # -- The owner's document and its dynamic search service ------------
    owner = DocumentOwner("vu.nl/archive", clock=clock)
    owner.put_element(PageElement("2004/scaling.html", b"web scaling and caching"))
    owner.put_element(PageElement("2005/security.html", b"replica security and signing"))
    owner.put_element(PageElement("2005/naming.html", b"secure naming and caching"))
    state = owner.publish(validity=3600).state()
    print(f"Document {owner.name!r}: {len(state.element_names)} elements, "
          "dynamic search installed")

    # -- Hosting negotiation before placing the dynamic replica ---------
    small = ObjectServer(host="tiny-box", site="root/x", clock=clock,
                         limits=ResourceLimits(disk_bytes=10))
    big = ObjectServer(host="cdn-box", site="root/y", clock=clock,
                       limits=ResourceLimits(disk_bytes=10_000_000))
    requirements = QosRequirements(disk_bytes=state.total_size)
    chosen = choose_site(requirements, [small.rpc_quote(), big.rpc_quote()])
    print(f"Negotiation: {chosen.host!r} at {chosen.site!r} accepted "
          f"(disk need {requirements.disk_bytes} B); 'tiny-box' was rejected")

    # -- Wire origin + (untrusted) replica -------------------------------
    origin = DynamicOrigin(host="origin", state=state, query_fn=search)
    replica = DynamicReplica(host=chosen.host, state=state, query_fn=search, clock=clock)
    transport = LoopbackTransport()
    transport.register(origin.endpoint, origin.rpc_server().handle_frame)
    transport.register(replica.endpoint, replica.rpc_server().handle_frame)
    rpc = RpcClient(transport)

    client = DynamicClient(
        rpc, replica.endpoint, replica.public_key,
        origin_endpoint=origin.endpoint, check_probability=0.25, seed=0,
    )

    # -- Honest phase ----------------------------------------------------
    for query in ("caching", "security", "naming"):
        answer = client.query(query).decode()
        print(f"  search({query!r:12}) -> {answer}")
    print(f"Double-checked {client.checks_performed} of {len(client.receipts)} "
          f"queries against the origin — all consistent")

    # -- The replica turns malicious --------------------------------------
    replica.cheat_on("caching", b"results: sponsored-malware.html")
    print("\nReplica now lies about 'caching' (and must still SIGN the lie)...")
    caught_at = None
    for i in range(40):
        try:
            client.query("caching")
        except AuthenticityError as exc:
            caught_at = i + 1
            print(f"  caught in-band by probabilistic double-check "
                  f"after {caught_at} lying answers: {exc}")
            break
    assert caught_at is not None

    # -- Offline audit: the receipts convict ------------------------------
    report = DynamicAuditor(state, search).audit(client.receipts)
    print(f"\nOffline audit of {report.audited} archived receipts:")
    print(f"  convictions: {len(report.convictions)} "
          f"(every signed lie is non-repudiable evidence)")
    first = report.convictions[0]
    print(f"  e.g. query {first.receipt.query!r}: replica signed "
          f"{first.receipt.answer!r}, truth is {first.truth!r}")
    print("\nStatic content: lies rejected immediately. Dynamic content: lies")
    print("detected probabilistically and punished by audit — as §6 predicts.")


if __name__ == "__main__":
    main()
