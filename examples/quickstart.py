#!/usr/bin/env python3
"""Quickstart: publish a secure Web document and browse it.

Walks the full GlobeDoc lifecycle on the paper's simulated four-host
testbed:

1. an owner creates a document (key pair → self-certifying OID),
2. signs and publishes it (replica + naming + location registration),
3. a client in Paris browses it through the secure proxy,
4. the proxy's timing decomposition (the paper's Fig. 4 metric) is shown,
5. a tampering replica is demonstrated to be detected.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro.attacks.malicious_server import MaliciousReplica, TamperBehavior
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.net.address import Endpoint


def main() -> None:
    # -- 1. The testbed: Table 1's four hosts on a simulated WAN --------
    testbed = Testbed()
    print("Testbed hosts:", ", ".join(testbed.network.host_names))

    # -- 2. Owner side: create, fill, publish ---------------------------
    owner = DocumentOwner("vu.nl/research/report", clock=testbed.clock)
    owner.put_element(
        PageElement(
            "index.html",
            b"<html><body><h1>Research Report</h1>"
            b'<img src="img/figure1.png"></body></html>',
        )
    )
    owner.put_element(PageElement("img/figure1.png", b"\x89PNG..." * 200))
    published = testbed.publish(owner, validity=3600)
    print(f"\nPublished {owner.name!r}")
    print(f"  self-certifying OID: {owner.oid.hex}")
    print(f"  integrity certificate: {published.document.integrity.wire_size} bytes, "
          f"{len(published.document.elements)} elements, version {published.document.version}")

    # -- 3. Client side: secure browsing from Paris ---------------------
    stack = testbed.client_stack("canardo.inria.fr")
    url = published.url("index.html")
    print(f"\nParis client requests {url}")
    response = stack.proxy.handle(url)
    assert response.ok
    print(f"  -> {response.status}, {len(response.content)} bytes, verified")

    # -- 4. The Fig. 4 decomposition ------------------------------------
    metrics = response.metrics
    print("\nAccess timing decomposition:")
    for phase, seconds in metrics.phases:
        print(f"  {phase:28s} {seconds*1000:8.3f} ms")
    print(f"  {'TOTAL':28s} {metrics.total*1000:8.3f} ms")
    print(f"  security overhead: {metrics.overhead_percent:.1f}%")

    # -- 5. Attack demo: a tampering replica is detected ----------------
    evil = MaliciousReplica(
        host="canardo.inria.fr",
        document=published.document,
        behavior=TamperBehavior("index.html", payload=b"<script>steal()</script>"),
    )
    testbed.network.register(
        Endpoint("canardo.inria.fr", "objectserver"), evil.rpc_server().handle_frame
    )
    testbed.location_service.tree.insert(
        owner.oid.hex, "root/europe/inria", evil.contact_address()
    )
    victim_stack = testbed.client_stack("canardo.inria.fr")
    attacked = victim_stack.proxy.handle(url)
    print(f"\nTampering replica deployed at the client's own site:")
    print(f"  -> HTTP {attacked.status}"
          + (f" ({attacked.security_failure})" if attacked.security_failure else ""))
    if attacked.ok:
        # Failover found the genuine Amsterdam replica.
        print("  -> failover served the GENUINE content "
              f"({len(attacked.content)} bytes match: {attacked.content == response.content})")
    print("\nDone — see examples/attack_detection.py for the full adversary matrix.")


if __name__ == "__main__":
    main()
