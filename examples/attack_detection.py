#!/usr/bin/env python3
"""The adversary matrix: every §3 attack against the security pipeline.

Deploys each malicious-replica behaviour (plus a lying location service
and a man-in-the-middle) against a published document and reports the
outcome per attack — the security-property table of DESIGN.md, executed.

Run: ``python examples/attack_detection.py``
"""

from __future__ import annotations

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_location import LyingLocationService
from repro.attacks.malicious_server import (
    ElementSwapBehavior,
    ElementSwapRenamedBehavior,
    ImpostorBehavior,
    MaliciousReplica,
    StaleReplayBehavior,
    TamperBehavior,
)
from repro.attacks.mitm import MitmTransport
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.harness.report import render_table
from repro.location.service import LocationClient
from repro.naming.service import SecureResolver
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.proxy.binding import Binder
from repro.proxy.checks import SecurityChecker
from repro.proxy.clientproxy import GlobeDocProxy

ATTACK_HOST = "canardo.inria.fr"
ATTACK_SITE = "root/europe/inria"


def fresh_world():
    """A testbed + published two-element document (v1 kept for replay)."""
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/news", clock=testbed.clock)
    owner.put_element(PageElement("index.html", b"<html>story v1</html>"))
    owner.put_element(PageElement("retraction.html", b"<html>retraction</html>"))
    v1 = owner.publish(validity=120.0)
    owner.put_element(PageElement("index.html", b"<html>story v2 corrected</html>"))
    published = testbed.publish(owner, validity=3600.0)
    return testbed, owner, v1, published


def deploy(testbed, published, behavior):
    replica = MaliciousReplica(
        host=ATTACK_HOST, document=published.document, behavior=behavior
    )
    testbed.network.register(
        Endpoint(ATTACK_HOST, "objectserver"), replica.rpc_server().handle_frame
    )
    testbed.location_service.tree.insert(
        published.owner.oid.hex, ATTACK_SITE, replica.contact_address()
    )
    return replica


def probe(testbed, published, element="index.html", genuine=None):
    stack = testbed.client_stack(ATTACK_HOST)
    return run_attack_probe(stack.proxy, published.url(element), genuine)


def main() -> None:
    rows = []
    genuine_v2 = b"<html>story v2 corrected</html>"

    # 1. Content tampering (authenticity).
    testbed, owner, v1, published = fresh_world()
    deploy(testbed, published, TamperBehavior("index.html", b"<script>evil</script>"))
    result = probe(testbed, published, genuine=genuine_v2)
    rows.append(["tampered element", "authenticity (hash)", result.outcome.value,
                 result.failure_type or "-"])

    # 2. Stale replay after expiry (freshness).
    testbed, owner, v1, published = fresh_world()
    deploy(testbed, published, StaleReplayBehavior(v1))
    testbed.clock.advance(121.0)
    result = probe(testbed, published, genuine=genuine_v2)
    rows.append(["stale version replay", "freshness (expiry)", result.outcome.value,
                 result.failure_type or "-"])

    # 3. Element swap (consistency, name check).
    testbed, owner, v1, published = fresh_world()
    deploy(testbed, published, ElementSwapBehavior("index.html", "retraction.html"))
    result = probe(testbed, published, genuine=genuine_v2)
    rows.append(["element swap", "consistency (name)", result.outcome.value,
                 result.failure_type or "-"])

    # 4. Renamed element swap (consistency defeated, hash catches it).
    testbed, owner, v1, published = fresh_world()
    deploy(testbed, published, ElementSwapRenamedBehavior("index.html", "retraction.html"))
    result = probe(testbed, published, genuine=genuine_v2)
    rows.append(["renamed element swap", "authenticity (hash)", result.outcome.value,
                 result.failure_type or "-"])

    # 5. Impostor object via lying location service (secure naming).
    testbed, owner, v1, published = fresh_world()
    impostor_owner = DocumentOwner("evil.example/fake", clock=testbed.clock)
    impostor_owner.put_element(PageElement("index.html", b"<html>masquerade</html>"))
    impostor = deploy(testbed, published, ImpostorBehavior(impostor_owner.publish(validity=3600)))
    liar = LyingLocationService(testbed.location_service.tree)
    liar.lie_about(owner.oid.hex, [impostor.contact_address()], suppress_truth=True)
    testbed.network.register(testbed.location_endpoint, liar.rpc_server().handle_frame)
    result = probe(testbed, published, genuine=genuine_v2)
    rows.append(["lying location service", "self-certifying OID", result.outcome.value,
                 result.failure_type or "(DoS only)"])

    # 6. Man-in-the-middle content injection.
    testbed, owner, v1, published = fresh_world()
    inner = testbed.network.transport_for(ATTACK_HOST)
    mitm = MitmTransport(inner, MitmTransport.content_injector(b"<!-- pwn -->"))
    rpc = RpcClient(mitm)
    resolver = SecureResolver(
        rpc, testbed.naming_endpoint, testbed.naming.root_key, clock=testbed.clock
    )
    location = LocationClient(
        rpc, testbed.location_endpoint, ATTACK_SITE, clock=testbed.clock
    )
    proxy = GlobeDocProxy(
        Binder(resolver, location, rpc), SecurityChecker(testbed.clock), rpc
    )
    result = run_attack_probe(proxy, published.url("index.html"), genuine_v2)
    rows.append(["man-in-the-middle", "authenticity (hash)", result.outcome.value,
                 result.failure_type or "-"])

    print("GlobeDoc adversary matrix (all replicas/infrastructure untrusted)\n")
    print(render_table(["Attack", "Defence (check)", "Outcome", "Error"], rows))

    succeeded = [r for r in rows if r[2] == AttackOutcome.SUCCEEDED.value]
    print(f"\nAttacks that slipped wrong bytes past the proxy: {len(succeeded)}")
    assert not succeeded, "an attack succeeded — the security pipeline is broken!"


if __name__ == "__main__":
    main()
