#!/usr/bin/env python3
"""Publishing a whole website as GlobeDoc objects.

A conventional multi-page site (pages + images + inter-page links)
is imported into GlobeDoc: one object per page, site-absolute links
rewritten to ``globe://`` hybrid URLs (possible only after the OIDs
exist), identity certificates from a CA the users trust, and the whole
site browsed — following links — from another continent.

Run: ``python examples/secure_publishing_workflow.py``
"""

from __future__ import annotations

from repro.crypto.identity import CertificateAuthority, TrustStore
from repro.globedoc.element import PageElement
from repro.globedoc.links import extract_links, rewrite_links
from repro.globedoc.urls import HybridUrl
from repro.harness.experiment import Testbed
from repro.workloads.generator import WebsiteSpec, make_website


def main() -> None:
    testbed = Testbed()

    # -- 1. Generate a conventional website ------------------------------
    spec = WebsiteSpec(
        site_name="vu.nl", pages=4, links_per_page=2, images_per_page=2, image_size=4096
    )
    owners = make_website(spec, seed=7, clock=testbed.clock)
    print(f"Generated site: {len(owners)} pages, "
          f"{sum(len(o.element_names()) for o in owners)} elements total")

    # -- 2. Rewrite site-absolute links to hybrid URLs --------------------
    # A link '/page2' refers to another *document*; once every page has
    # an owner (and thus an OID-bearing name), it becomes a globe:// URL.
    page_urls = {
        f"/page{i}": HybridUrl.for_name(owner.name, "index.html").raw
        for i, owner in enumerate(owners)
    }
    for owner in owners:
        html_element = owner._elements["index.html"]
        rewritten = rewrite_links(
            html_element.content.decode(), lambda target: page_urls.get(target)
        )
        owner.put_element(PageElement("index.html", rewritten.encode()))
    print("Rewrote inter-page links to globe:// hybrid URLs")

    # -- 3. Identity: a CA certifies every page object --------------------
    ca = CertificateAuthority("VU Campus CA")
    for owner in owners:
        owner.request_identity_certificate(ca)

    # -- 4. Publish all pages ---------------------------------------------
    published = [testbed.publish(owner, validity=24 * 3600) for owner in owners]
    print(f"Published {len(published)} GlobeDoc objects:")
    for pub in published:
        print(f"  {pub.name:18s} oid={pub.owner.oid.hex[:16]}… "
              f"{pub.document.total_size:6d} B")

    # -- 5. Browse from Ithaca, following links ---------------------------
    store = TrustStore()
    store.add_ca(ca)
    stack = testbed.client_stack("ensamble02.cornell.edu", trust_store=store)

    visited = set()
    frontier = [published[0].url("index.html")]
    while frontier:
        url = frontier.pop()
        if url in visited:
            continue
        visited.add(url)
        response = stack.proxy.handle(url)
        assert response.ok, f"{url}: {response.status}"
        tag = f"[certified as: {response.certified_as}]" if response.certified_as else ""
        print(f"  fetched {url[:60]:60s} {len(response.content):6d} B {tag}")
        if response.content_type == "text/html":
            page = HybridUrl.parse(url)
            for link in extract_links(response.content.decode()):
                if link.is_globedoc:
                    frontier.append(link.target)
                elif link.is_relative:  # sibling element (an image)
                    frontier.append(page.sibling(link.target).raw)

    print(f"\nCrawled {len(visited)} verified URLs across "
          f"{stack.proxy.session_count} secure object bindings.")


if __name__ == "__main__":
    main()
