"""Certificate authorities, identity certificates, and user trust stores.

Per §3.1.2, secure naming binds a self-certifying OID to a real-world
entity in two ways: (1) the OID *is* the hash of the object public key,
and (2) for sensitive applications the object can present an *identity
certificate* signed by a CA the user trusts. The user keeps the public
keys of her trusted CAs in a :class:`TrustStore` held by her proxy; the
proxy asks the object's security interface for a certificate matching
that list and displays the certified name ("Certified as:" window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import CertificateError
from repro.sim.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crypto.verifycache import VerificationCache

__all__ = ["CertificateAuthority", "IdentityCertificate", "TrustStore"]

IDENTITY_CERT_TYPE = "globedoc/identity"


@dataclass(frozen=True)
class IdentityCertificate:
    """A CA-signed binding: (subject name, subject public key, issuer).

    ``subject_key_der`` is the DER encoding of the *object's* public key,
    so the proxy can check the certificate speaks about the key it has
    already matched against the OID.
    """

    certificate: Certificate

    @classmethod
    def issue(
        cls,
        ca: "CertificateAuthority",
        subject_name: str,
        subject_key: PublicKey,
        not_before: Optional[float] = None,
        not_after: Optional[float] = None,
    ) -> "IdentityCertificate":
        body = {
            "subject_name": subject_name,
            "subject_key_der": subject_key.der,
            "issuer_name": ca.name,
            "issuer_key_der": ca.keys.public.der,
        }
        cert = Certificate.issue(
            ca.keys,
            IDENTITY_CERT_TYPE,
            body,
            not_before=not_before,
            not_after=not_after,
            suite=ca.suite,
        )
        return cls(certificate=cert)

    @property
    def subject_name(self) -> str:
        return str(self.certificate.body["subject_name"])

    @property
    def subject_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["subject_key_der"]))

    @property
    def issuer_name(self) -> str:
        return str(self.certificate.body["issuer_name"])

    @property
    def issuer_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["issuer_key_der"]))

    def verify(
        self,
        issuer_key: PublicKey,
        clock: Optional[Clock] = None,
        expected_subject_key: Optional[PublicKey] = None,
        cache: Optional["VerificationCache"] = None,
    ) -> str:
        """Validate against the *trusted* issuer key; return the subject name.

        ``issuer_key`` must come from the user's trust store, never from
        the certificate itself (the embedded issuer key is informational).
        """
        self.certificate.verify(
            issuer_key, clock=clock, expected_type=IDENTITY_CERT_TYPE, cache=cache
        )
        if expected_subject_key is not None and self.subject_key != expected_subject_key:
            raise CertificateError(
                "identity certificate subject key does not match the object key"
            )
        return self.subject_name

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IdentityCertificate":
        cert = Certificate.from_dict(data)
        if cert.cert_type != IDENTITY_CERT_TYPE:
            raise CertificateError(
                f"not an identity certificate: type={cert.cert_type!r}"
            )
        return cls(certificate=cert)


class CertificateAuthority:
    """A trusted third party that certifies object-key ↔ name bindings."""

    def __init__(self, name: str, keys: Optional[KeyPair] = None, suite: HashSuite = SHA1) -> None:
        self.name = name
        self.keys = keys if keys is not None else KeyPair.generate()
        self.suite = suite
        self._issued: List[IdentityCertificate] = []

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    def certify(
        self,
        subject_name: str,
        subject_key: PublicKey,
        not_before: Optional[float] = None,
        not_after: Optional[float] = None,
    ) -> IdentityCertificate:
        """Issue an identity certificate for *subject_name* / *subject_key*."""
        cert = IdentityCertificate.issue(
            self, subject_name, subject_key, not_before=not_before, not_after=not_after
        )
        self._issued.append(cert)
        return cert

    @property
    def issued_count(self) -> int:
        return len(self._issued)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CertificateAuthority(name={self.name!r})"


@dataclass
class TrustStore:
    """The user-side list of trusted CA public keys (§3.1.2, SDSI-style).

    The user, not the infrastructure, decides which CAs to trust; the
    proxy consults this store when evaluating object identity proofs.
    """

    _cas: Dict[str, PublicKey] = field(default_factory=dict)

    def add(self, ca_name: str, key: PublicKey) -> None:
        """Trust *ca_name* with public key *key* (overwrites existing)."""
        self._cas[ca_name] = key

    def add_ca(self, ca: CertificateAuthority) -> None:
        """Convenience: trust a locally constructed CA."""
        self.add(ca.name, ca.public_key)

    def remove(self, ca_name: str) -> None:
        self._cas.pop(ca_name, None)

    def trusted_key(self, ca_name: str) -> Optional[PublicKey]:
        return self._cas.get(ca_name)

    def trusts(self, ca_name: str) -> bool:
        return ca_name in self._cas

    def __len__(self) -> int:
        return len(self._cas)

    def names(self) -> List[str]:
        return sorted(self._cas)

    def first_match(
        self,
        certificates: Iterable[IdentityCertificate],
        clock: Optional[Clock] = None,
        expected_subject_key: Optional[PublicKey] = None,
        cache: Optional["VerificationCache"] = None,
    ) -> Optional[IdentityCertificate]:
        """Return the first certificate issued by a trusted CA that verifies.

        Mirrors §3.1.2: "For the first match found, the proxy displays
        the naming information in the certificate." Certificates from
        unknown CAs or failing verification are skipped, not fatal. With
        a *cache*, repeated matching of the same certificate skips the
        RSA operation (the validity window is still checked each time).
        """
        for cert in certificates:
            key = self._cas.get(cert.issuer_name)
            if key is None:
                continue
            try:
                cert.verify(
                    key,
                    clock=clock,
                    expected_subject_key=expected_subject_key,
                    cache=cache,
                )
            except CertificateError:
                continue
            return cert
        return None
