"""Merkle hash trees.

This is the substrate for the r-OSFS baseline (§5, ref [6]): hash every
leaf, combine pairwise up to a root, sign only the root. A client can
verify any single leaf with an O(log n) *proof* instead of a per-leaf
signature — but freshness can only be asserted for the whole tree at
once, which is exactly the limitation the GlobeDoc integrity certificate
removes (per-element validity intervals). The cert-scheme ablation bench
quantifies this trade.

Interior nodes are domain-separated from leaves (0x00/0x01 prefixes) so
a leaf value can never be replayed as an interior node (second-preimage
defence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashes import HashSuite, SHA1
from repro.errors import CryptoError

__all__ = ["MerkleTree", "MerkleProof"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path for one leaf: (sibling_hash, sibling_is_left)."""

    leaf_index: int
    leaf_count: int
    path: Tuple[Tuple[bytes, bool], ...]

    @property
    def length(self) -> int:
        return len(self.path)

    @property
    def wire_size(self) -> int:
        """Bytes needed to ship this proof (hashes + direction bits)."""
        return sum(len(h) + 1 for h, _ in self.path) + 8


class MerkleTree:
    """A Merkle tree over a sequence of byte-string leaves.

    The tree is built eagerly and is immutable; rebuilding after an
    update is O(n), which is the r-OSFS update-cost story the ablation
    measures against GlobeDoc's O(1)-per-element certificate row update.
    """

    def __init__(self, leaves: Sequence[bytes], suite: HashSuite = SHA1) -> None:
        if len(leaves) == 0:
            raise CryptoError("Merkle tree requires at least one leaf")
        self.suite = suite
        self._leaf_data = [bytes(leaf) for leaf in leaves]
        # levels[0] = leaf hashes, levels[-1] = [root]
        self._levels: List[List[bytes]] = [
            [self._hash_leaf(leaf) for leaf in self._leaf_data]
        ]
        while len(self._levels[-1]) > 1:
            self._levels.append(self._combine_level(self._levels[-1]))

    def _hash_leaf(self, leaf: bytes) -> bytes:
        return self.suite.digest(_LEAF_PREFIX, leaf)

    def _hash_node(self, left: bytes, right: bytes) -> bytes:
        return self.suite.digest(_NODE_PREFIX, left, right)

    def _combine_level(self, level: List[bytes]) -> List[bytes]:
        out: List[bytes] = []
        for i in range(0, len(level), 2):
            left = level[i]
            # Odd node promotes by pairing with itself (Bitcoin-style would
            # duplicate; we promote unchanged to avoid the CVE-2012-2459
            # duplication ambiguity).
            if i + 1 < len(level):
                out.append(self._hash_node(left, level[i + 1]))
            else:
                out.append(left)
        return out

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_data)

    @property
    def root(self) -> bytes:
        """The root hash — the only thing the owner signs in r-OSFS."""
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        return len(self._levels) - 1

    def leaf_hash(self, index: int) -> bytes:
        return self._levels[0][index]

    def proof(self, index: int) -> MerkleProof:
        """Authentication path proving leaf *index* is under :attr:`root`."""
        if not 0 <= index < self.leaf_count:
            raise CryptoError(
                f"leaf index {index} out of range [0, {self.leaf_count})"
            )
        path: List[Tuple[bytes, bool]] = []
        pos = index
        for level in self._levels[:-1]:
            sibling = pos ^ 1
            if sibling < len(level):
                path.append((level[sibling], sibling < pos))
            # else: odd node promoted unchanged, no sibling at this level
            pos //= 2
        return MerkleProof(
            leaf_index=index, leaf_count=self.leaf_count, path=tuple(path)
        )

    def verify(self, leaf: bytes, proof: MerkleProof, root: bytes) -> bool:
        """Check that *leaf* authenticates to *root* via *proof*."""
        current = self._hash_leaf(bytes(leaf))
        for sibling, sibling_is_left in proof.path:
            if sibling_is_left:
                current = self._hash_node(sibling, current)
            else:
                current = self._hash_node(current, sibling)
        return current == root

    @classmethod
    def verify_detached(
        cls,
        leaf: bytes,
        proof: MerkleProof,
        root: bytes,
        suite: HashSuite = SHA1,
    ) -> bool:
        """Verify without holding the tree (the client-side operation)."""
        current = suite.digest(_LEAF_PREFIX, bytes(leaf))
        for sibling, sibling_is_left in proof.path:
            if sibling_is_left:
                current = suite.digest(_NODE_PREFIX, sibling, current)
            else:
                current = suite.digest(_NODE_PREFIX, current, sibling)
        return current == root
