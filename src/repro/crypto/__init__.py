"""Cryptographic substrate for GlobeDoc.

Real cryptography throughout: RSA key pairs and PKCS#1 v1.5 signatures
via the ``cryptography`` package (OpenSSL), SHA-1/SHA-256 digests via
``hashlib``. The paper's constructions — self-certifying OIDs, the
integrity certificate, CA-signed identity certificates — are built on
these primitives in :mod:`repro.globedoc` and :mod:`repro.crypto.identity`.
"""

from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.hashes import HashSuite, SHA1, SHA256, digest, hexdigest
from repro.crypto.signing import sign_payload, verify_payload, SignedEnvelope
from repro.crypto.certificates import Certificate
from repro.crypto.identity import (
    CertificateAuthority,
    IdentityCertificate,
    TrustStore,
)
from repro.crypto.merkle import MerkleTree, MerkleProof
from repro.crypto.verifycache import VerificationCache, VerifyCacheStats
from repro.crypto.batch import BatchItem, verify_batch

__all__ = [
    "KeyPair",
    "PublicKey",
    "HashSuite",
    "SHA1",
    "SHA256",
    "digest",
    "hexdigest",
    "sign_payload",
    "verify_payload",
    "SignedEnvelope",
    "Certificate",
    "CertificateAuthority",
    "IdentityCertificate",
    "TrustStore",
    "MerkleTree",
    "MerkleProof",
    "VerificationCache",
    "VerifyCacheStats",
    "BatchItem",
    "verify_batch",
]
