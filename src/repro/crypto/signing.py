"""Signing of structured payloads.

Certificates and resource records are dict-like structures; they are
signed over their *canonical encoding* (:mod:`repro.util.encoding`), so a
signature made by owner tooling on one host verifies bit-exactly on any
other. :class:`SignedEnvelope` bundles a payload with its signature for
transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.crypto.hashes import HashSuite, SHA1, suite_by_name
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import SignatureError
from repro.util.encoding import canonical_bytes

__all__ = ["sign_payload", "verify_payload", "SignedEnvelope"]


def sign_payload(signer: KeyPair, payload: Any, suite: HashSuite = SHA1) -> bytes:
    """Sign the canonical encoding of *payload*."""
    return signer.sign(canonical_bytes(payload), suite=suite)


def verify_payload(
    key: PublicKey, signature: bytes, payload: Any, suite: HashSuite = SHA1
) -> None:
    """Verify *signature* over the canonical encoding of *payload*.

    Raises :class:`~repro.errors.SignatureError` on failure.
    """
    key.verify(signature, canonical_bytes(payload), suite=suite)


@dataclass(frozen=True)
class SignedEnvelope:
    """A payload plus detached signature, self-describing its hash suite.

    This is the unit stored on untrusted object servers: the server can
    forward it but cannot alter the payload without breaking the
    signature.
    """

    payload: Mapping[str, Any]
    signature: bytes
    suite_name: str = SHA1.name

    @classmethod
    def create(
        cls, signer: KeyPair, payload: Mapping[str, Any], suite: HashSuite = SHA1
    ) -> "SignedEnvelope":
        """Sign *payload* and wrap it."""
        return cls(
            payload=dict(payload),
            signature=sign_payload(signer, payload, suite=suite),
            suite_name=suite.name,
        )

    @property
    def suite(self) -> HashSuite:
        return suite_by_name(self.suite_name)

    def verify(self, key: PublicKey) -> Mapping[str, Any]:
        """Verify the signature; return the payload on success."""
        verify_payload(key, self.signature, self.payload, suite=self.suite)
        return self.payload

    def to_dict(self) -> dict:
        """Wire representation (canonically encodable)."""
        return {
            "payload": dict(self.payload),
            "signature": self.signature,
            "suite": self.suite_name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SignedEnvelope":
        """Inverse of :meth:`to_dict`; validates structure."""
        try:
            payload = data["payload"]
            signature = data["signature"]
            suite_name = data["suite"]
        except (KeyError, TypeError) as exc:
            raise SignatureError(f"malformed signed envelope: {exc}") from exc
        if not isinstance(payload, Mapping) or not isinstance(signature, bytes):
            raise SignatureError("malformed signed envelope fields")
        return cls(payload=dict(payload), signature=signature, suite_name=str(suite_name))

    @property
    def wire_size(self) -> int:
        """Approximate serialized size in bytes (for transfer accounting)."""
        return len(canonical_bytes(self.to_dict()))
