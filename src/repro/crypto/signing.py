"""Signing of structured payloads.

Certificates and resource records are dict-like structures; they are
signed over their *canonical encoding* (:mod:`repro.util.encoding`), so a
signature made by owner tooling on one host verifies bit-exactly on any
other. :class:`SignedEnvelope` bundles a payload with its signature for
transport.

Fast path: an envelope's payload is immutable once signed, so its
canonical encoding (and the envelope's serialized size) are computed at
most once per instance and memoized — ``wire_size`` in transfer
accounting loops and repeated verifications stop re-serializing the same
bytes. Verification can additionally consult a
:class:`~repro.crypto.verifycache.VerificationCache` to replay a
previously successful RSA check without re-running the RSA operation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.crypto.hashes import HashSuite, SHA1, suite_by_name
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import SignatureError
from repro.util.encoding import ENCODE_COUNTERS, canonical_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crypto.verifycache import VerificationCache

__all__ = ["sign_payload", "verify_payload", "SignedEnvelope"]

#: Bound on the parsed-envelope intern pool (LRU).
_INTERN_MAX = 1024

#: Parsed-envelope intern pool: (signature, suite_name) -> envelope.
#: Hits are guarded by full payload equality in ``from_dict``.
_intern_pool: "OrderedDict[tuple, SignedEnvelope]" = OrderedDict()


def sign_payload(signer: KeyPair, payload: Any, suite: HashSuite = SHA1) -> bytes:
    """Sign the canonical encoding of *payload*."""
    return signer.sign(canonical_bytes(payload), suite=suite)


def verify_payload(
    key: PublicKey,
    signature: bytes,
    payload: Any,
    suite: HashSuite = SHA1,
    cache: Optional["VerificationCache"] = None,
    now: Optional[float] = None,
    expires_at: Optional[float] = None,
) -> None:
    """Verify *signature* over the canonical encoding of *payload*.

    With a *cache*, a previously successful verification of the same
    (key, suite, payload, signature) tuple is replayed without the RSA
    operation; see :mod:`repro.crypto.verifycache` for why that is safe.
    Raises :class:`~repro.errors.SignatureError` on failure.
    """
    verify_bytes(
        key, signature, canonical_bytes(payload), suite,
        cache=cache, now=now, expires_at=expires_at,
    )


def verify_bytes(
    key: PublicKey,
    signature: bytes,
    data: bytes,
    suite: HashSuite,
    cache: Optional["VerificationCache"] = None,
    now: Optional[float] = None,
    expires_at: Optional[float] = None,
) -> None:
    """Verify over pre-encoded canonical bytes (cache-aware core)."""
    if cache is None:
        key.verify(signature, data, suite=suite)
    else:
        cache.verify(key, signature, data, suite, now=now, expires_at=expires_at)


@dataclass(frozen=True)
class SignedEnvelope:
    """A payload plus detached signature, self-describing its hash suite.

    This is the unit stored on untrusted object servers: the server can
    forward it but cannot alter the payload without breaking the
    signature. The payload must be treated as immutable after
    construction — the canonical encoding is memoized on first use.
    """

    payload: Mapping[str, Any]
    signature: bytes
    suite_name: str = SHA1.name

    @classmethod
    def create(
        cls, signer: KeyPair, payload: Mapping[str, Any], suite: HashSuite = SHA1
    ) -> "SignedEnvelope":
        """Sign *payload* and wrap it."""
        frozen = dict(payload)
        data = canonical_bytes(frozen)
        envelope = cls(
            payload=frozen,
            signature=signer.sign(data, suite=suite),
            suite_name=suite.name,
        )
        # The bytes just signed are the bytes any verifier will encode;
        # seed the memo so owner-side code never re-serializes either.
        envelope.__dict__["_signed_bytes"] = data
        return envelope

    @property
    def suite(self) -> HashSuite:
        return suite_by_name(self.suite_name)

    @property
    def signed_bytes(self) -> bytes:
        """The canonical encoding of the payload (memoized)."""
        cached = self.__dict__.get("_signed_bytes")
        if cached is not None:
            ENCODE_COUNTERS.hit()
            return cached
        ENCODE_COUNTERS.miss()
        data = canonical_bytes(self.payload)
        self.__dict__["_signed_bytes"] = data
        return data

    def payload_digest(self, suite: HashSuite) -> bytes:
        """Digest of :attr:`signed_bytes` under *suite* (memoized per
        suite) — the payload component of verification-cache keys."""
        cache = self.__dict__.setdefault("_payload_digests", {})
        digest = cache.get(suite.name)
        if digest is None:
            digest = suite.digest(self.signed_bytes)
            cache[suite.name] = digest
        return digest

    def verify(
        self,
        key: PublicKey,
        cache: Optional["VerificationCache"] = None,
        now: Optional[float] = None,
        expires_at: Optional[float] = None,
    ) -> Mapping[str, Any]:
        """Verify the signature; return the payload on success."""
        if cache is None:
            key.verify(self.signature, self.signed_bytes, suite=self.suite)
        else:
            cache.verify(
                key,
                self.signature,
                self.signed_bytes,
                self.suite,
                now=now,
                expires_at=expires_at,
                payload_digest=self.payload_digest(cache.digest_suite),
            )
        return self.payload

    def to_dict(self) -> dict:
        """Wire representation (canonically encodable)."""
        return {
            "payload": dict(self.payload),
            "signature": self.signature,
            "suite": self.suite_name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SignedEnvelope":
        """Inverse of :meth:`to_dict`; validates structure.

        Parsed envelopes are *interned*: re-parsing the same signed
        structure (same signature, suite, and byte-for-byte equal
        payload) returns the previously built instance, so its memoized
        canonical encoding, payload digests, and wire size survive
        round trips through the wire format. The full payload equality
        guard means a tampered payload can never alias a cached one —
        it simply constructs a fresh (and soon to fail) envelope.
        """
        try:
            payload = data["payload"]
            signature = data["signature"]
            suite_name = data["suite"]
        except (KeyError, TypeError) as exc:
            raise SignatureError(f"malformed signed envelope: {exc}") from exc
        if not isinstance(payload, Mapping) or not isinstance(signature, bytes):
            raise SignatureError("malformed signed envelope fields")
        suite_name = str(suite_name)
        intern_key = (signature, suite_name)
        cached = _intern_pool.get(intern_key)
        if cached is not None and cached.payload == payload:
            _intern_pool.move_to_end(intern_key)
            return cached
        envelope = cls(payload=dict(payload), signature=signature, suite_name=suite_name)
        _intern_pool[intern_key] = envelope
        while len(_intern_pool) > _INTERN_MAX:
            _intern_pool.popitem(last=False)
        return envelope

    @staticmethod
    def clear_intern_pool() -> None:
        """Drop all interned envelopes (test isolation, cold benchmarks)."""
        _intern_pool.clear()

    @property
    def wire_size(self) -> int:
        """Approximate serialized size in bytes (for transfer accounting).

        Memoized: transfer-accounting loops call this repeatedly, and the
        envelope never changes after construction.
        """
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            ENCODE_COUNTERS.hit()
            return cached
        ENCODE_COUNTERS.miss()
        size = len(canonical_bytes(self.to_dict()))
        self.__dict__["_wire_size"] = size
        return size
