"""Generic certificate machinery.

A *certificate* here is a signed statement with a validity window and a
declared type tag. GlobeDoc's integrity certificate
(:mod:`repro.globedoc.integrity`) and CA identity certificates
(:mod:`repro.crypto.identity`) are both built on this base, which keeps
signature handling, expiry checks, and wire encoding in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import SignedEnvelope
from repro.errors import CertificateError
from repro.sim.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crypto.verifycache import VerificationCache

__all__ = ["Certificate"]


@dataclass(frozen=True)
class Certificate:
    """A typed, signed statement with optional validity window.

    ``body`` carries type-specific fields; ``cert_type`` disambiguates so
    a signature over one certificate type can never be replayed as
    another (type is part of the signed payload).
    """

    cert_type: str
    body: Mapping[str, Any]
    not_before: Optional[float]
    not_after: Optional[float]
    envelope: SignedEnvelope

    @staticmethod
    def _payload(
        cert_type: str,
        body: Mapping[str, Any],
        not_before: Optional[float],
        not_after: Optional[float],
    ) -> dict:
        return {
            "type": cert_type,
            "body": dict(body),
            "not_before": not_before,
            "not_after": not_after,
        }

    @classmethod
    def issue(
        cls,
        signer: KeyPair,
        cert_type: str,
        body: Mapping[str, Any],
        not_before: Optional[float] = None,
        not_after: Optional[float] = None,
        suite: HashSuite = SHA1,
    ) -> "Certificate":
        """Create and sign a certificate."""
        if not_before is not None and not_after is not None and not_after < not_before:
            raise CertificateError(
                f"validity window is empty: not_after {not_after} < not_before {not_before}"
            )
        payload = cls._payload(cert_type, body, not_before, not_after)
        envelope = SignedEnvelope.create(signer, payload, suite=suite)
        return cls(
            cert_type=cert_type,
            body=dict(body),
            not_before=not_before,
            not_after=not_after,
            envelope=envelope,
        )

    def verify(
        self,
        key: PublicKey,
        clock: Optional[Clock] = None,
        expected_type: Optional[str] = None,
        cache: Optional["VerificationCache"] = None,
    ) -> Mapping[str, Any]:
        """Check signature, type, and validity window; return the body.

        With a *cache*, the RSA verification is memoized (cache entries
        expire with the certificate's ``not_after``); every other check
        — type, field/envelope match, validity window — always runs.
        Raises :class:`~repro.errors.CertificateError` on any failure.
        """
        if expected_type is not None and self.cert_type != expected_type:
            raise CertificateError(
                f"certificate type {self.cert_type!r} != expected {expected_type!r}"
            )
        try:
            payload = self.envelope.verify(
                key,
                cache=cache,
                now=clock.now() if clock is not None else None,
                expires_at=self.not_after,
            )
        except Exception as exc:
            raise CertificateError(f"certificate signature invalid: {exc}") from exc
        # Defend against field/envelope mismatch: the authoritative values
        # are the ones inside the signed payload.
        if (
            payload.get("type") != self.cert_type
            or payload.get("not_before") != self.not_before
            or payload.get("not_after") != self.not_after
            or payload.get("body") != dict(self.body)
        ):
            raise CertificateError("certificate fields do not match signed payload")
        if clock is not None:
            now = clock.now()
            if self.not_before is not None and now < self.not_before:
                raise CertificateError(
                    f"certificate not yet valid (now={now}, not_before={self.not_before})"
                )
            if self.not_after is not None and now > self.not_after:
                raise CertificateError(
                    f"certificate expired (now={now}, not_after={self.not_after})"
                )
        return self.body

    def to_dict(self) -> dict:
        """Wire representation."""
        return {
            "cert_type": self.cert_type,
            "body": dict(self.body),
            "not_before": self.not_before,
            "not_after": self.not_after,
            "envelope": self.envelope.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Certificate":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                cert_type=str(data["cert_type"]),
                body=dict(data["body"]),
                not_before=data["not_before"],
                not_after=data["not_after"],
                envelope=SignedEnvelope.from_dict(data["envelope"]),
            )
        except (KeyError, TypeError) as exc:
            raise CertificateError(f"malformed certificate: {exc}") from exc

    @property
    def wire_size(self) -> int:
        """Approximate serialized size (bytes), for transfer accounting.

        Memoized: the certificate is frozen, so the encoding cannot
        change after construction.
        """
        from repro.util.encoding import ENCODE_COUNTERS, canonical_bytes

        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            ENCODE_COUNTERS.hit()
            return cached
        ENCODE_COUNTERS.miss()
        size = len(canonical_bytes(self.to_dict()))
        self.__dict__["_wire_size"] = size
        return size
