"""Memoization of successful RSA signature verifications.

The paper's evaluation (§4, Figs. 5–7) shows that client-side security
checks — above all the RSA verification of the integrity certificate —
dominate GlobeDoc access latency, and argues the cost must be
*amortized* across requests for the model to be practical. This module
is that amortization, made explicit and bounded.

Safety argument
---------------
A signature is a pure function of ``(public key, hash suite, payload
bytes, signature bytes)``: for a fixed tuple the verdict can never
change. The cache therefore keys entries on exactly that tuple —
``(key fingerprint, suite name, payload digest, signature)`` — and
stores **only successful** verifications. Any change to the payload
changes its digest, any change to the signature or key changes the key
tuple, so a tampered input can never produce a hit; it falls through to
the real RSA operation, which fails closed. Failed verifications are
never cached (a retry must re-pay the RSA cost), and the cache skips
*only* the RSA operation — certificate validity windows, type checks,
OID matches, element hashes and freshness checks always run.

Entries carry an optional expiry (the certificate's ``not_after``):
a hit past expiry is refused and the entry evicted, so a long-lived
proxy does not replay verdicts for certificates it should re-examine.
Both an entry count and a byte budget bound the cache (LRU eviction).

The cache is thread-safe: table reads and writes are serialized by an
internal lock (the concurrent TCP pipeline shares one cache across
request threads), but the RSA operation itself runs *outside* the lock
— concurrent misses may both pay the RSA cost, never corrupt the table.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.hashes import HashSuite, SHA256
from repro.crypto.keys import PublicKey

__all__ = ["VerificationCache", "VerifyCacheStats"]

#: Rough per-entry bookkeeping overhead (key tuple, OrderedDict node).
_ENTRY_OVERHEAD = 96


@dataclass
class VerifyCacheStats:
    """Running counters of one :class:`VerificationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Real seconds of RSA work skipped by hits (each entry remembers
    #: what its original miss cost; a hit re-credits that amount).
    saved_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    @property
    def saved_us(self) -> float:
        """Microseconds of RSA compute avoided (for metrics surfaces)."""
        return self.saved_seconds * 1e6

    def snapshot(self) -> Tuple[int, int, float]:
        return (self.hits, self.misses, self.saved_seconds)


@dataclass(frozen=True)
class _Entry:
    nbytes: int
    cost_seconds: float
    expires_at: Optional[float]


class VerificationCache:
    """LRU memo of successful signature verifications.

    ``max_entries`` and ``max_bytes`` both bound the cache; whichever is
    hit first triggers LRU eviction. ``digest_suite`` is the hash used
    to key payloads and key fingerprints *inside the cache* — it is
    independent of the signature's own suite (which is part of the key
    tuple, so the same payload under SHA-1 and SHA-256 signatures
    occupies two distinct entries).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        max_bytes: int = 4 * 1024 * 1024,
        digest_suite: HashSuite = SHA256,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.digest_suite = digest_suite
        self.stats = VerifyCacheStats()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Key construction
    # ------------------------------------------------------------------

    def _key(
        self,
        key: PublicKey,
        signature: bytes,
        payload: bytes,
        suite: HashSuite,
        payload_digest: Optional[bytes] = None,
    ) -> tuple:
        if payload_digest is None:
            payload_digest = self.digest_suite.digest(payload)
        return (
            key.fingerprint(self.digest_suite),
            suite.name,
            payload_digest,
            bytes(signature),
        )

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def lookup(
        self,
        key: PublicKey,
        signature: bytes,
        payload: bytes,
        suite: HashSuite,
        now: Optional[float] = None,
        payload_digest: Optional[bytes] = None,
    ) -> bool:
        """True iff this exact verification already succeeded (and the
        entry has not passed its certificate expiry).

        ``payload_digest`` lets callers that already hold the payload's
        ``digest_suite`` digest (e.g. a memoizing envelope) skip the
        re-hash; it MUST be the digest of *payload* under
        :attr:`digest_suite` or tamper evidence is lost.
        """
        cache_key = self._key(key, signature, payload, suite, payload_digest)
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is None:
                self.stats.misses += 1
                return False
            if (
                entry.expires_at is not None
                and now is not None
                and now > entry.expires_at
            ):
                self._evict(cache_key)
                self.stats.invalidations += 1
                self.stats.misses += 1
                return False
            self._entries.move_to_end(cache_key)
            self.stats.hits += 1
            self.stats.saved_seconds += entry.cost_seconds
            return True

    def record(
        self,
        key: PublicKey,
        signature: bytes,
        payload: bytes,
        suite: HashSuite,
        cost_seconds: float = 0.0,
        expires_at: Optional[float] = None,
        payload_digest: Optional[bytes] = None,
    ) -> None:
        """Remember a verification that just *succeeded*.

        Callers must only invoke this after the real RSA operation
        passed — the cache itself never verifies anything on record.
        """
        cache_key = self._key(key, signature, payload, suite, payload_digest)
        nbytes = (
            sum(len(part) for part in cache_key[:1] + cache_key[2:])
            + len(suite.name)
            + _ENTRY_OVERHEAD
        )
        if nbytes > self.max_bytes:
            return
        with self._lock:
            self._evict(cache_key)
            while self._entries and (
                len(self._entries) >= self.max_entries
                or self._bytes + nbytes > self.max_bytes
            ):
                self._evict(next(iter(self._entries)))
                self.stats.evictions += 1
            self._entries[cache_key] = _Entry(
                nbytes=nbytes,
                cost_seconds=max(cost_seconds, 0.0),
                expires_at=expires_at,
            )
            self._bytes += nbytes

    def verify(
        self,
        key: PublicKey,
        signature: bytes,
        payload: bytes,
        suite: HashSuite,
        now: Optional[float] = None,
        expires_at: Optional[float] = None,
        payload_digest: Optional[bytes] = None,
    ) -> bool:
        """The fast path: replay a memoized verdict or run the real RSA.

        Returns True on a cache hit, False when the real operation ran
        (and succeeded). Raises :class:`~repro.errors.SignatureError`
        exactly as :meth:`PublicKey.verify` would on a bad signature —
        in which case nothing is recorded.
        """
        if self.lookup(key, signature, payload, suite, now=now, payload_digest=payload_digest):
            return True
        start = time.perf_counter()
        key.verify(signature, payload, suite=suite)
        cost = time.perf_counter() - start
        self.record(
            key,
            signature,
            payload,
            suite,
            cost_seconds=cost,
            expires_at=expires_at,
            payload_digest=payload_digest,
        )
        return False

    # ------------------------------------------------------------------
    # Invalidation and bookkeeping
    # ------------------------------------------------------------------

    def invalidate_key(self, key: PublicKey) -> int:
        """Drop every memoized verdict made under *key*.

        The revocation path: a cached success for a now-revoked key is a
        replayable verdict the cache must forget *before* the next
        lookup, or a warm proxy would keep accepting signatures the
        issuer can no longer be trusted for. Returns entries removed.
        """
        fingerprint = key.fingerprint(self.digest_suite)
        with self._lock:
            doomed = [
                cache_key for cache_key in self._entries if cache_key[0] == fingerprint
            ]
            for cache_key in doomed:
                self._evict(cache_key)
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def invalidate_expired(self, now: float) -> int:
        """Drop every entry whose certificate expiry has passed."""
        with self._lock:
            doomed = [
                cache_key
                for cache_key, entry in self._entries.items()
                if entry.expires_at is not None and now > entry.expires_at
            ]
            for cache_key in doomed:
                self._evict(cache_key)
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def _evict(self, cache_key: tuple) -> None:
        entry = self._entries.pop(cache_key, None)
        if entry is not None:
            self._bytes -= entry.nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VerificationCache({len(self._entries)} entries, "
            f"{self._bytes}B, hit_rate={self.stats.hit_rate:.2f})"
        )
