"""Hash suites.

The paper uses SHA-1 everywhere (element digests, self-certifying OIDs);
SHA-1 is retained as the *paper-faithful default* but the suite is a
first-class parameter so the whole stack runs on SHA-256 as well — the
property tests exercise both. A suite pins the digest used for OIDs and
element hashes *and* the hash underlying RSA signatures, so a GlobeDoc
object is internally consistent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Union

from cryptography.hazmat.primitives import hashes as _crypto_hashes

from repro.errors import CryptoError

__all__ = ["HashSuite", "SHA1", "SHA256", "digest", "hexdigest", "suite_by_name"]

_BytesLike = Union[bytes, bytearray, memoryview]


@dataclass(frozen=True)
class HashSuite:
    """A named hash algorithm with its digest size and signature variant."""

    name: str
    digest_size: int

    def new(self):
        """Fresh streaming hash object (``hashlib`` interface)."""
        return hashlib.new(self.name)

    def digest(self, *chunks: _BytesLike) -> bytes:
        """Digest of the concatenation of *chunks*."""
        h = self.new()
        for chunk in chunks:
            h.update(bytes(chunk))
        return h.digest()

    def hexdigest(self, *chunks: _BytesLike) -> str:
        return self.digest(*chunks).hex()

    def digest_stream(self, chunks: Iterable[_BytesLike]) -> bytes:
        """Digest of an iterable of chunks (for large elements)."""
        h = self.new()
        for chunk in chunks:
            h.update(bytes(chunk))
        return h.digest()

    def signature_hash(self) -> _crypto_hashes.HashAlgorithm:
        """The ``cryptography`` hash object used inside RSA signatures."""
        if self.name == "sha1":
            return _crypto_hashes.SHA1()
        if self.name == "sha256":
            return _crypto_hashes.SHA256()
        raise CryptoError(f"no signature hash registered for suite {self.name!r}")


#: Paper-faithful suite: 160-bit SHA-1 (OIDs are "160-bit numbers", §2).
SHA1 = HashSuite(name="sha1", digest_size=20)

#: Modern suite; drop-in replacement everywhere.
SHA256 = HashSuite(name="sha256", digest_size=32)

_SUITES = {s.name: s for s in (SHA1, SHA256)}


def suite_by_name(name: str) -> HashSuite:
    """Look up a registered suite (``"sha1"`` or ``"sha256"``)."""
    try:
        return _SUITES[name.lower()]
    except KeyError:
        raise CryptoError(f"unknown hash suite {name!r}") from None


def digest(data: _BytesLike, suite: HashSuite = SHA1) -> bytes:
    """One-shot digest with the given *suite* (default SHA-1)."""
    return suite.digest(data)


def hexdigest(data: _BytesLike, suite: HashSuite = SHA1) -> str:
    """One-shot hex digest with the given *suite* (default SHA-1)."""
    return suite.hexdigest(data)
