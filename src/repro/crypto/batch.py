"""Batched RSA signature verification.

The per-element security check re-verifies the same integrity
certificate under the same replica key for every element of one
document: N elements means N identical (key, suite, payload, signature)
tuples. :func:`verify_batch` amortizes that — it canonical-encodes and
digests each distinct envelope once, groups items by verification tuple,
runs *one* RSA operation per distinct tuple, and replays the verdict to
every member of the group. With a :class:`~repro.crypto.verifycache
.VerificationCache` attached, a group whose tuple is already memoized
costs zero RSA operations and a fresh success is recorded for the
sequential path to reuse.

Verdicts are per-item and never raised: a batch with one tampered
envelope still verifies its genuine siblings, and the caller decides
what each failure means. The failure an item receives is exactly the
:class:`~repro.errors.SignatureError` the sequential
:meth:`SignedEnvelope.verify` would have raised for it — batching
changes the amortization, never the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import PublicKey
from repro.crypto.signing import SignedEnvelope
from repro.crypto.verifycache import VerificationCache

__all__ = ["BatchItem", "verify_batch"]


@dataclass(frozen=True)
class BatchItem:
    """One (key, envelope) verification request in a batch.

    ``expires_at`` bounds a cached verdict's lifetime exactly as in the
    sequential path (the integrity certificate's ``not_after``).
    """

    key: PublicKey
    envelope: SignedEnvelope
    expires_at: Optional[float] = None


def verify_batch(
    items: Sequence[BatchItem],
    cache: Optional[VerificationCache] = None,
    now: Optional[float] = None,
) -> List[Optional[Exception]]:
    """Verify every item, one RSA operation per *distinct* tuple.

    Returns a verdict list aligned with *items*: ``None`` for a valid
    signature, the would-be-raised exception otherwise. Items deduplicate
    on the full verification tuple — key fingerprint, suite, payload
    digest, signature — so only byte-identical verifications share a
    verdict; a tampered duplicate lands in its own group and fails alone.
    """
    items = list(items)
    verdicts: List[Optional[Exception]] = [None] * len(items)
    digest_suite = cache.digest_suite if cache is not None else None
    groups: Dict[tuple, List[int]] = {}
    keys: Dict[tuple, Tuple[PublicKey, SignedEnvelope]] = {}
    for index, item in enumerate(items):
        envelope = item.envelope
        try:
            fingerprint = (
                item.key.fingerprint(digest_suite)
                if digest_suite is not None
                else item.key.der
            )
            tuple_key = (
                fingerprint,
                envelope.suite_name,
                envelope.payload_digest(
                    digest_suite if digest_suite is not None else envelope.suite
                ),
                bytes(envelope.signature),
            )
        except Exception as exc:
            # Malformed key/envelope: the sequential path would raise on
            # this item alone; keep the failure item-local.
            verdicts[index] = exc
            continue
        groups.setdefault(tuple_key, []).append(index)
        keys.setdefault(tuple_key, (item.key, envelope))
    for tuple_key, members in groups.items():
        key, envelope = keys[tuple_key]
        # The tightest expiry in the group governs the cached verdict —
        # a shared entry must not outlive any member's certificate.
        expiries = [
            items[i].expires_at for i in members if items[i].expires_at is not None
        ]
        expires_at = min(expiries) if expiries else None
        verdict = _verify_one(key, envelope, cache, now, expires_at)
        for index in members:
            verdicts[index] = verdict
    return verdicts


def _verify_one(
    key: PublicKey,
    envelope: SignedEnvelope,
    cache: Optional[VerificationCache],
    now: Optional[float],
    expires_at: Optional[float],
) -> Optional[Exception]:
    try:
        envelope.verify(key, cache=cache, now=now, expires_at=expires_at)
    except Exception as exc:
        return exc
    return None
