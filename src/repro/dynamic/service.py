"""Dynamic-content services: trusted origin and untrusted replicas.

The owner ships a *query function* — deterministic code over the
document state (think: search over the elements, a templated page per
query string). The origin runs it on trusted hardware; replicas run the
same function on untrusted hardware and must **sign** every response,
binding (query, answer, time, replica key) into a receipt the client
archives for auditing.

Determinism matters: the audit compares a replica's signed answer with
the origin's answer *for the same query*, so the function must be a
pure function of (state, query). The owner is responsible for that
property (e.g. no wall-clock reads inside the function).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional

from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import SignedEnvelope
from repro.errors import ReproError
from repro.globedoc.document import DocumentState
from repro.net.address import Endpoint
from repro.net.rpc import RpcServer, rpc_method
from repro.sim.clock import Clock, RealClock

__all__ = ["QueryFunction", "DynamicOrigin", "DynamicReplica"]

#: The owner's dynamic logic: (document state, query) -> response bytes.
QueryFunction = Callable[[DocumentState, str], bytes]


class DynamicOrigin:
    """The owner's trusted evaluation point for dynamic queries.

    Serves plain (unsigned) answers — clients contacting the origin
    already trust it; its role in the security design is to be the
    ground truth double-checks and audits compare against.
    """

    def __init__(
        self,
        host: str,
        state: DocumentState,
        query_fn: QueryFunction,
        service: str = "dynamic-origin",
    ) -> None:
        self.host = host
        self.service = service
        self.state = state
        self.query_fn = query_fn
        self.query_count = 0

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    def evaluate(self, query: str) -> bytes:
        self.query_count += 1
        return bytes(self.query_fn(self.state, str(query)))

    @rpc_method("dynamic.origin_query")
    def rpc_query(self, query: str) -> bytes:
        return self.evaluate(query)

    def update_state(self, state: DocumentState) -> None:
        """New document version: subsequent answers reflect it."""
        self.state = state

    def rpc_server(self) -> RpcServer:
        server = RpcServer(name=f"dynamic-origin@{self.host}")
        server.register_object(self)
        return server


class DynamicReplica:
    """An untrusted host evaluating the owner's query function.

    Every answer is wrapped in a :class:`SignedEnvelope` under the
    replica's own key — the non-repudiable receipt. ``cheat_on`` turns
    the replica malicious for matching queries: it serves (and signs!)
    attacker-chosen bytes, which is what the audit later convicts.
    """

    def __init__(
        self,
        host: str,
        state: DocumentState,
        query_fn: QueryFunction,
        keys: Optional[KeyPair] = None,
        clock: Optional[Clock] = None,
        service: str = "dynamic",
        suite: HashSuite = SHA1,
    ) -> None:
        self.host = host
        self.service = service
        self.state = state
        self.query_fn = query_fn
        self.keys = keys if keys is not None else KeyPair.generate()
        self.clock = clock if clock is not None else RealClock()
        self.suite = suite
        self._cheats: Dict[str, bytes] = {}
        self.query_count = 0

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    def cheat_on(self, query: str, bogus: bytes) -> None:
        """Become malicious for *query*: serve *bogus* instead."""
        self._cheats[str(query)] = bytes(bogus)

    @rpc_method("dynamic.query")
    def rpc_query(self, query: str) -> dict:
        query = str(query)
        self.query_count += 1
        if query in self._cheats:
            answer = self._cheats[query]
        else:
            answer = bytes(self.query_fn(self.state, query))
        payload = {
            "query": query,
            "answer": answer,
            "served_at": self.clock.now(),
            "replica_key_der": self.keys.public.der,
        }
        envelope = SignedEnvelope.create(self.keys, payload, suite=self.suite)
        return {"envelope": envelope.to_dict()}

    def rpc_server(self) -> RpcServer:
        server = RpcServer(name=f"dynamic@{self.host}")
        server.register_object(self)
        return server
