"""Client side of dynamic content: receipts + probabilistic double-check.

The client cannot verify a dynamic answer against an owner signature
(none exists per query), so it:

1. verifies the *replica's* signature (non-repudiation — the receipt
   will convict a cheater);
2. with probability ``check_probability``, re-issues the query to the
   owner's trusted origin and compares byte-for-byte — a mismatch is an
   immediate, in-band detection;
3. archives every receipt for the offline auditor.

With cheat rate *c* and check probability *p*, a cheater survives *n*
queries undetected with probability ``(1 - c·p)^n`` — driven to zero by
either knob; the dynamic-content test suite checks this bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional

import numpy as np

from repro.crypto.keys import PublicKey
from repro.crypto.signing import SignedEnvelope
from repro.errors import AuthenticityError, ReproError, SignatureError
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient
from repro.sim.random import make_rng

__all__ = ["DynamicReceipt", "Mismatch", "DynamicClient"]


@dataclass(frozen=True)
class DynamicReceipt:
    """A replica-signed (query, answer) pair the client archives."""

    envelope: SignedEnvelope
    replica_key_der: bytes

    @property
    def query(self) -> str:
        return str(self.envelope.payload["query"])

    @property
    def answer(self) -> bytes:
        return bytes(self.envelope.payload["answer"])

    @property
    def served_at(self) -> float:
        return float(self.envelope.payload["served_at"])


@dataclass(frozen=True)
class Mismatch:
    """A detected divergence between replica answer and origin truth."""

    receipt: DynamicReceipt
    origin_answer: bytes


class DynamicClient:
    """Queries a dynamic replica with probabilistic origin double-checks."""

    def __init__(
        self,
        rpc: RpcClient,
        replica_endpoint: Endpoint,
        replica_key: PublicKey,
        origin_endpoint: Optional[Endpoint] = None,
        check_probability: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= check_probability <= 1.0:
            raise ReproError(
                f"check probability must be in [0, 1], got {check_probability}"
            )
        self.rpc = rpc
        self.replica_endpoint = replica_endpoint
        self.replica_key = replica_key
        self.origin_endpoint = origin_endpoint
        self.check_probability = check_probability
        self._rng = make_rng(seed)
        self.receipts: List[DynamicReceipt] = []
        self.mismatches: List[Mismatch] = []
        self.checks_performed = 0

    def query(self, query: str) -> bytes:
        """Ask the replica; maybe double-check against the origin.

        Raises :class:`~repro.errors.AuthenticityError` when a check
        catches the replica lying (the answer is NOT returned), or when
        the receipt's signature is invalid.
        """
        raw = self.rpc.call(self.replica_endpoint, "dynamic.query", query=query)
        receipt = self._verify_receipt(raw)
        self.receipts.append(receipt)
        if (
            self.origin_endpoint is not None
            and self.check_probability > 0
            and self._rng.random() < self.check_probability
        ):
            self._double_check(receipt)
        return receipt.answer

    def _verify_receipt(self, raw: Mapping[str, Any]) -> DynamicReceipt:
        try:
            envelope = SignedEnvelope.from_dict(raw["envelope"])
        except (KeyError, TypeError) as exc:
            raise AuthenticityError(f"malformed dynamic response: {exc}") from exc
        key_der = bytes(envelope.payload.get("replica_key_der", b""))
        if key_der != self.replica_key.der:
            raise AuthenticityError("dynamic response signed by an unexpected key")
        try:
            envelope.verify(self.replica_key)
        except SignatureError as exc:
            raise AuthenticityError(f"dynamic response signature invalid: {exc}") from exc
        return DynamicReceipt(envelope=envelope, replica_key_der=key_der)

    def _double_check(self, receipt: DynamicReceipt) -> None:
        self.checks_performed += 1
        truth = bytes(
            self.rpc.call(
                self.origin_endpoint, "dynamic.origin_query", query=receipt.query
            )
        )
        if truth != receipt.answer:
            self.mismatches.append(Mismatch(receipt=receipt, origin_answer=truth))
            raise AuthenticityError(
                f"dynamic content mismatch for query {receipt.query!r}: "
                "replica answer diverges from the origin (receipt archived)"
            )

    @property
    def caught_cheating(self) -> bool:
        return bool(self.mismatches)
