"""Offline auditing of dynamic-content receipts (§6, following [12]).

The auditor holds the owner's trusted query function/state and replays
archived receipts: any replica-signed answer that diverges from the
recomputed truth convicts that replica ("caught red-handed"). Receipts
whose signatures do not verify are inadmissible — nobody can frame a
replica with forged receipts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.crypto.keys import PublicKey
from repro.dynamic.client import DynamicReceipt
from repro.dynamic.service import QueryFunction
from repro.errors import SignatureError
from repro.globedoc.document import DocumentState

__all__ = ["DynamicAuditor", "Conviction", "AuditReport"]


@dataclass(frozen=True)
class Conviction:
    """One proven lie: the receipt plus the recomputed truth."""

    receipt: DynamicReceipt
    truth: bytes

    @property
    def replica_key_der(self) -> bytes:
        return self.receipt.replica_key_der


@dataclass
class AuditReport:
    """Aggregate audit outcome."""

    audited: int = 0
    inadmissible: int = 0
    convictions: List[Conviction] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.convictions

    def convicted_keys(self) -> List[bytes]:
        return sorted({c.replica_key_der for c in self.convictions})


class DynamicAuditor:
    """Replays receipts against the owner's ground truth."""

    def __init__(self, state: DocumentState, query_fn: QueryFunction) -> None:
        self.state = state
        self.query_fn = query_fn

    def truth_for(self, query: str) -> bytes:
        return bytes(self.query_fn(self.state, str(query)))

    def audit(
        self,
        receipts: Iterable[DynamicReceipt],
        replica_keys: Optional[Dict[bytes, PublicKey]] = None,
    ) -> AuditReport:
        """Audit *receipts*; *replica_keys* maps key DER → PublicKey for
        signature re-verification (receipts for unknown keys, or with
        bad signatures, are counted inadmissible, never convicted)."""
        report = AuditReport()
        for receipt in receipts:
            report.audited += 1
            key = None
            if replica_keys is not None:
                key = replica_keys.get(receipt.replica_key_der)
            else:
                key = PublicKey(der=receipt.replica_key_der)
            if key is None:
                report.inadmissible += 1
                continue
            try:
                receipt.envelope.verify(key)
            except SignatureError:
                report.inadmissible += 1
                continue
            truth = self.truth_for(receipt.query)
            if truth != receipt.answer:
                report.convictions.append(Conviction(receipt=receipt, truth=truth))
        return report
