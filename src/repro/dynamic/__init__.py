"""Dynamic Web content on untrusted replicas (§6 future work).

Static content is secured by signing it once — "this does not work in
the case of dynamic data: it would require the object owner to sign the
results for every possible client query, which is clearly not
feasible. In such a setting, a solution based on auditing the untrusted
servers … combined with a probabilistic double-checking of the dynamic
Web content these untrusted servers generate is likely to be more
effective."

This package implements exactly that design:

* :class:`~repro.dynamic.service.DynamicReplica` — an untrusted server
  evaluating the owner's query function, *signing every response* with
  its own replica key (so cheating leaves evidence);
* :class:`~repro.dynamic.client.DynamicClient` — queries replicas, keeps
  signed receipts, and with probability *p* re-issues the query to the
  owner's trusted origin and compares;
* :class:`~repro.dynamic.audit.DynamicAuditor` — offline receipt audit
  that convicts replicas whose signed answers disagree with the origin.

Detection is therefore *probabilistic and eventual* for dynamic data —
in contrast to the static pipeline's immediate rejection — matching the
paper's analysis of why the static technique cannot carry over.
"""

from repro.dynamic.service import DynamicReplica, DynamicOrigin, QueryFunction
from repro.dynamic.client import DynamicClient, DynamicReceipt, Mismatch
from repro.dynamic.audit import DynamicAuditor

__all__ = [
    "DynamicReplica",
    "DynamicOrigin",
    "QueryFunction",
    "DynamicClient",
    "DynamicReceipt",
    "Mismatch",
    "DynamicAuditor",
]
