"""Real TCP transport.

The same wire frames as the simulator, length-prefixed over real
sockets. Integration tests run a full GlobeDoc object server and client
proxy across localhost TCP to prove the stack is not simulator-bound;
the examples can do the same across real machines.

Frame format: 4-byte big-endian length, then the canonical-encoded
message bytes. Connections are persistent: the server answers frames on
one connection until the peer closes it, and the client keeps a small
pool of sockets per address (replacing the HTTP/1.0-era
socket-per-request model), so a pipelined batch reuses warm connections
instead of paying a TCP handshake per call.

Every socket read and connect carries a configurable timeout surfacing
as :class:`~repro.errors.TransportError` — a stalled peer degrades into
the retry/failover path instead of hanging the client forever.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.transport import TransferStats

__all__ = ["TcpEndpointServer", "TcpTransport"]

FrameHandler = Callable[[bytes], bytes]

_LEN = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool = False
) -> Optional[bytes]:
    """Read exactly *count* bytes or raise TransportError.

    With ``allow_eof=True`` a connection closed cleanly *before any
    byte* returns None (the peer is done) — EOF mid-read still raises.
    A socket timeout raises TransportError so the retry layer engages.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 65536))
        except socket.timeout as exc:
            raise TransportError(
                f"receive timed out after {sock.gettimeout()}s"
            ) from exc
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, frame: bytes) -> None:
    if len(frame) > _MAX_FRAME:
        raise TransportError(f"frame too large: {len(frame)} bytes")
    try:
        sock.sendall(_LEN.pack(len(frame)) + frame)
    except socket.timeout as exc:
        raise TransportError(f"send timed out after {sock.gettimeout()}s") from exc


def _recv_frame(sock: socket.socket, allow_eof: bool = False) -> Optional[bytes]:
    header = _recv_exact(sock, _LEN.size, allow_eof=allow_eof)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"peer announced oversized frame: {length} bytes")
    return _recv_exact(sock, length)


class TcpEndpointServer:
    """Hosts one or more frame handlers behind a real TCP listener.

    Endpoints multiplex on the ``service`` name: the client prepends the
    service string to each frame so one port can serve an object server,
    a naming service, and a location service — like a Globe object
    server's single contact point. Connections are persistent: a handler
    thread answers frames until the client closes the connection or goes
    quiet past ``idle_timeout``.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, idle_timeout: float = 30.0
    ) -> None:
        self._handlers: Dict[str, FrameHandler] = {}
        self._lock = threading.Lock()
        self.idle_timeout = idle_timeout
        outer = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # pragma: no cover - exercised via client
                self.request.settimeout(outer.idle_timeout)
                while True:
                    try:
                        raw = _recv_frame(self.request, allow_eof=True)
                    except TransportError:
                        return  # stalled or torn mid-frame: drop the line
                    if raw is None:
                        return  # clean close between frames
                    service, _, frame = raw.partition(b"\x00")
                    with outer._lock:
                        handler = outer._handlers.get(
                            service.decode("utf-8", "replace")
                        )
                    try:
                        if handler is None:
                            _send_frame(self.request, b"")
                        else:
                            _send_frame(self.request, handler(frame))
                    except (TransportError, OSError):
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._server.server_address[:2]

    def register(self, service: str, handler: FrameHandler) -> None:
        with self._lock:
            self._handlers[service] = handler

    def start(self) -> "TcpEndpointServer":
        """Start serving in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise TransportError("server already started")
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TcpEndpointServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class TcpTransport:
    """Client transport resolving Endpoint hosts via a directory.

    ``directory`` maps the abstract host name used in :class:`Endpoint`
    to a concrete ``(ip, port)`` — the analogue of DNS A-records, kept
    out of band because GlobeDoc's *secure* naming never trusts it.

    Connections are pooled per address (at most ``pool_size`` idle
    sockets each). A pooled socket the server has since closed costs one
    transparent reconnect; ``timeout`` bounds connects and reads,
    surfacing as :class:`~repro.errors.TransportError`.
    """

    directory: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    timeout: float = 10.0
    pool_size: int = 4
    stats: TransferStats = field(default_factory=TransferStats)
    _pools: Dict[Tuple[str, int], List[socket.socket]] = field(
        default_factory=dict, repr=False
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_host(self, name: str, ip: str, port: int) -> None:
        self.directory[name] = (ip, port)

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------

    def _checkout(self, address: Tuple[str, int]) -> Optional[socket.socket]:
        with self._lock:
            pool = self._pools.get(address)
            if pool:
                return pool.pop()
        return None

    def _checkin(self, address: Tuple[str, int], sock: socket.socket) -> None:
        with self._lock:
            pool = self._pools.setdefault(address, [])
            if len(pool) < self.pool_size:
                pool.append(sock)
                return
        _close_quietly(sock)

    def _connect(self, address: Tuple[str, int]) -> socket.socket:
        sock = socket.create_connection(address, timeout=self.timeout)
        sock.settimeout(self.timeout)
        return sock

    def close(self) -> None:
        """Drop every pooled connection (tests, shutdown)."""
        with self._lock:
            pools, self._pools = self._pools, {}
        for pool in pools.values():
            for sock in pool:
                _close_quietly(sock)

    @property
    def pooled_connections(self) -> int:
        with self._lock:
            return sum(len(pool) for pool in self._pools.values())

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def request(self, endpoint: Endpoint, frame: bytes) -> bytes:
        address = self.directory.get(endpoint.host)
        if address is None:
            raise TransportError(f"no TCP address known for host {endpoint.host!r}")
        payload = endpoint.service.encode("utf-8") + b"\x00" + frame
        sock = self._checkout(address)
        reused = sock is not None
        try:
            if sock is None:
                sock = self._connect(address)
            response = self._exchange(sock, payload)
        except (TransportError, OSError) as exc:
            _close_quietly(sock)
            if not reused:
                raise TransportError(
                    f"TCP request to {endpoint} failed: {exc}"
                ) from exc
            # The pooled socket had gone stale (server closed or timed it
            # out between requests): retry exactly once on a fresh one.
            sock = None
            try:
                sock = self._connect(address)
                response = self._exchange(sock, payload)
            except (TransportError, OSError) as retry_exc:
                _close_quietly(sock)
                raise TransportError(
                    f"TCP request to {endpoint} failed: {retry_exc}"
                ) from retry_exc
        self._checkin(address, sock)
        if response == b"":
            raise TransportError(f"no service {endpoint.service!r} at {endpoint.host!r}")
        with self._lock:
            self.stats.record(sent=len(payload), received=len(response))
        return response

    def request_many(
        self, batch: Sequence[Tuple[Endpoint, bytes]]
    ) -> List[Union[bytes, Exception]]:
        """Issue a batch concurrently over pooled connections.

        One worker thread per request (batches are already windowed by
        the RPC layer); slots align with *batch* and hold the response
        bytes or the per-request exception.
        """
        batch = list(batch)
        if len(batch) <= 1:
            return [self._request_slot(ep, frame) for ep, frame in batch]
        results: List[Union[bytes, Exception]] = [None] * len(batch)  # type: ignore[list-item]

        def work(index: int, endpoint: Endpoint, frame: bytes) -> None:
            results[index] = self._request_slot(endpoint, frame)

        threads = [
            threading.Thread(target=work, args=(i, ep, frame), daemon=True)
            for i, (ep, frame) in enumerate(batch)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    def _request_slot(
        self, endpoint: Endpoint, frame: bytes
    ) -> Union[bytes, Exception]:
        try:
            return self.request(endpoint, frame)
        except Exception as exc:
            return exc

    def _exchange(self, sock: socket.socket, payload: bytes) -> bytes:
        _send_frame(sock, payload)
        response = _recv_frame(sock)
        assert response is not None  # allow_eof=False: None is impossible
        return response


def _close_quietly(sock: Optional[socket.socket]) -> None:
    if sock is None:
        return
    try:
        sock.close()
    except OSError:  # pragma: no cover - close best-effort
        pass
