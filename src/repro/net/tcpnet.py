"""Real TCP transport.

The same wire frames as the simulator, length-prefixed over real
sockets. Integration tests run a full GlobeDoc object server and client
proxy across localhost TCP to prove the stack is not simulator-bound;
the examples can do the same across real machines.

Frame format: 4-byte big-endian length, then the canonical-encoded
message bytes. One request/response per connection by default (matching
the HTTP/1.0-era model of the paper), with an optional persistent mode.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.transport import TransferStats

__all__ = ["TcpEndpointServer", "TcpTransport"]

FrameHandler = Callable[[bytes], bytes]

_LEN = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly *count* bytes or raise TransportError."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, frame: bytes) -> None:
    if len(frame) > _MAX_FRAME:
        raise TransportError(f"frame too large: {len(frame)} bytes")
    sock.sendall(_LEN.pack(len(frame)) + frame)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > _MAX_FRAME:
        raise TransportError(f"peer announced oversized frame: {length} bytes")
    return _recv_exact(sock, length)


class TcpEndpointServer:
    """Hosts one or more frame handlers behind a real TCP listener.

    Endpoints multiplex on the ``service`` name: the client prepends the
    service string to each frame so one port can serve an object server,
    a naming service, and a location service — like a Globe object
    server's single contact point.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._handlers: Dict[str, FrameHandler] = {}
        self._lock = threading.Lock()
        outer = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # pragma: no cover - exercised via client
                try:
                    raw = _recv_frame(self.request)
                    service, _, frame = raw.partition(b"\x00")
                    handler = outer._handlers.get(service.decode("utf-8", "replace"))
                    if handler is None:
                        _send_frame(self.request, b"")
                        return
                    _send_frame(self.request, handler(frame))
                except TransportError:
                    pass

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._server.server_address[:2]

    def register(self, service: str, handler: FrameHandler) -> None:
        with self._lock:
            self._handlers[service] = handler

    def start(self) -> "TcpEndpointServer":
        """Start serving in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise TransportError("server already started")
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TcpEndpointServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class TcpTransport:
    """Client transport resolving Endpoint hosts via a directory.

    ``directory`` maps the abstract host name used in :class:`Endpoint`
    to a concrete ``(ip, port)`` — the analogue of DNS A-records, kept
    out of band because GlobeDoc's *secure* naming never trusts it.
    """

    directory: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    timeout: float = 10.0
    stats: TransferStats = field(default_factory=TransferStats)

    def add_host(self, name: str, ip: str, port: int) -> None:
        self.directory[name] = (ip, port)

    def request(self, endpoint: Endpoint, frame: bytes) -> bytes:
        address = self.directory.get(endpoint.host)
        if address is None:
            raise TransportError(f"no TCP address known for host {endpoint.host!r}")
        payload = endpoint.service.encode("utf-8") + b"\x00" + frame
        try:
            with socket.create_connection(address, timeout=self.timeout) as sock:
                _send_frame(sock, payload)
                response = _recv_frame(sock)
        except OSError as exc:
            raise TransportError(f"TCP request to {endpoint} failed: {exc}") from exc
        if response == b"":
            raise TransportError(f"no service {endpoint.service!r} at {endpoint.host!r}")
        self.stats.record(sent=len(payload), received=len(response))
        return response
