"""RPC layer: method registration and remote invocation.

An :class:`RpcServer` exposes a set of named operations as a frame
handler that any transport can host. :class:`RpcClient` encodes calls
and decodes results. Exceptions raised by handlers travel back with
their class name; client-side, security exceptions re-raise as the
proper :mod:`repro.errors` types so attack detection survives the wire.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Dict, Optional

import repro.errors as _errors
from repro.errors import RpcError, TransportError
from repro.net.address import ContactAddress, Endpoint
from repro.net.message import Request, Response
from repro.net.transport import Transport
from repro.obs import NOOP_METRICS, NOOP_TRACER

__all__ = ["RpcServer", "RpcClient", "rpc_method"]

logger = logging.getLogger(__name__)

Handler = Callable[..., Any]

_RPC_ATTR = "_rpc_op_name"


def rpc_method(op: str) -> Callable[[Handler], Handler]:
    """Decorator marking a method as the handler for operation *op*.

    Classes passing an instance to :meth:`RpcServer.register_object` get
    all marked methods exposed.
    """

    def mark(fn: Handler) -> Handler:
        setattr(fn, _RPC_ATTR, op)
        return fn

    return mark


class RpcServer:
    """Dispatches decoded requests to registered operation handlers.

    ``tracer`` (optional) records one ``server.handle`` span per
    incoming frame — the server half of the access-pipeline trace.
    """

    def __init__(self, name: str = "rpc", tracer=None, metrics=None) -> None:
        self.name = name
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Server-side request accounting: one ``server_requests_total``
        #: increment per frame, labeled by server, operation, outcome.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_requests = self.metrics.counter(
            "server_requests_total",
            "RPC frames handled, by server, operation, and outcome.",
            labelnames=("server", "op", "outcome"),
        )
        self._ops: Dict[str, Handler] = {}

    def register(self, op: str, handler: Handler) -> None:
        if op in self._ops:
            raise RpcError(f"operation {op!r} already registered on {self.name}")
        self._ops[op] = handler

    def register_object(self, obj: Any) -> None:
        """Register every ``@rpc_method``-marked method of *obj*."""
        for attr_name in dir(obj):
            attr = getattr(obj, attr_name)
            op = getattr(attr, _RPC_ATTR, None)
            if op is not None and callable(attr):
                self.register(op, attr)

    @property
    def operations(self) -> list:
        return sorted(self._ops)

    def handle_frame(self, frame: bytes) -> bytes:
        """The transport-facing entry point: bytes in, bytes out.

        Handler exceptions become error responses; nothing escapes to
        the transport (a malformed request must not kill a server). The
        ``server.handle`` span is still marked with the error, so traces
        show server-side failures that the wire reports as mere failure
        responses.
        """
        with self.tracer.span("server.handle", server=self.name) as span:
            try:
                request = Request.from_bytes(frame)
            except Exception as exc:
                span.mark_error(exc)
                self._m_requests.labels(
                    server=self.name, op="<malformed>", outcome="error"
                ).inc()
                return Response.failure(
                    TransportError(f"bad request frame: {exc}")
                ).to_bytes()
            span.set_attribute("op", request.op)
            handler = self._ops.get(request.op)
            if handler is None:
                unknown = RpcError(f"unknown operation {request.op!r}")
                span.mark_error(unknown)
                self._m_requests.labels(
                    server=self.name, op=request.op, outcome="error"
                ).inc()
                return Response.failure(unknown).to_bytes()
            try:
                value = handler(**dict(request.args))
            except Exception as exc:
                logger.debug("handler %s failed: %s", request.op, exc)
                span.mark_error(exc)
                self._m_requests.labels(
                    server=self.name, op=request.op, outcome="error"
                ).inc()
                return Response.failure(exc).to_bytes()
            self._m_requests.labels(
                server=self.name, op=request.op, outcome="ok"
            ).inc()
            return Response.success(value).to_bytes()


# Error classes that are re-raised with their original type client-side.
_REHYDRATABLE = {
    name: getattr(_errors, name)
    for name in _errors.__all__
    if isinstance(getattr(_errors, name), type)
}


class RpcClient:
    """Client-side call helper over any :class:`Transport`.

    ``tracer`` (optional) records one ``rpc.call`` span per invocation
    with the operation, target, and transferred byte counts; a failed
    call (transport fault or re-raised remote error) closes the span
    with error status and the exception's class name.
    """

    def __init__(self, transport: Transport, tracer=None, metrics=None) -> None:
        self.transport = transport
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Client-side call accounting: per-operation totals and a
        #: latency histogram in (simulated) seconds. Latency is only
        #: measured when a real registry is installed — the disabled
        #: path performs no clock reads.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_calls = self.metrics.counter(
            "rpc_client_calls_total",
            "RPC invocations issued, by operation and outcome.",
            labelnames=("op", "outcome"),
        )
        self._m_latency = self.metrics.histogram(
            "rpc_client_call_seconds",
            "Per-call wire latency (clock-charged seconds), by operation.",
            labelnames=("op",),
        )

    def call(self, target, op: str, **args: Any) -> Any:
        """Invoke *op* at *target* (an Endpoint or ContactAddress)."""
        endpoint = target.endpoint if isinstance(target, ContactAddress) else target
        if not isinstance(endpoint, Endpoint):
            raise RpcError(f"invalid RPC target: {target!r}")
        request = Request(op=op, args=args)
        with self.tracer.span("rpc.call", op=op, target=str(endpoint)) as span:
            started = self.metrics.clock.now() if self.metrics.enabled else 0.0
            try:
                wire = request.to_bytes()
                span.set_attribute("sent_bytes", len(wire))
                frame = self.transport.request(endpoint, wire)
            except Exception:
                self._m_calls.labels(op=op, outcome="error").inc()
                raise
            if self.metrics.enabled:
                self._m_latency.labels(op=op).observe(
                    self.metrics.clock.now() - started
                )
            span.set_attribute("received_bytes", len(frame))
            response = Response.from_bytes(frame)
            if response.ok:
                self._m_calls.labels(op=op, outcome="ok").inc()
                return response.value
            self._m_calls.labels(op=op, outcome="error").inc()
            exc_cls = _REHYDRATABLE.get(response.error_type)
            if exc_cls is not None:
                raise exc_cls(response.error)
            raise RpcError(f"{response.error_type or 'RemoteError'}: {response.error}")
