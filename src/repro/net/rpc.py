"""RPC layer: method registration and remote invocation.

An :class:`RpcServer` exposes a set of named operations as a frame
handler that any transport can host. :class:`RpcClient` encodes calls
and decodes results. Exceptions raised by handlers travel back with
their class name; client-side, security exceptions re-raise as the
proper :mod:`repro.errors` types so attack detection survives the wire.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import repro.errors as _errors
from repro.errors import RpcError, TransportError
from repro.net.address import ContactAddress, Endpoint
from repro.net.message import Request, Response
from repro.net.transport import Transport
from repro.obs import NOOP_METRICS, NOOP_TRACER

__all__ = [
    "RpcServer",
    "RpcClient",
    "BatchCall",
    "BatchOutcome",
    "rpc_method",
    "DEFAULT_WINDOW",
]

#: Default cap on RPCs a pipelined batch keeps in flight at once.
DEFAULT_WINDOW = 8

logger = logging.getLogger(__name__)

Handler = Callable[..., Any]

_RPC_ATTR = "_rpc_op_name"


def rpc_method(op: str) -> Callable[[Handler], Handler]:
    """Decorator marking a method as the handler for operation *op*.

    Classes passing an instance to :meth:`RpcServer.register_object` get
    all marked methods exposed.
    """

    def mark(fn: Handler) -> Handler:
        setattr(fn, _RPC_ATTR, op)
        return fn

    return mark


class RpcServer:
    """Dispatches decoded requests to registered operation handlers.

    ``tracer`` (optional) records one ``server.handle`` span per
    incoming frame — the server half of the access-pipeline trace.
    """

    def __init__(self, name: str = "rpc", tracer=None, metrics=None) -> None:
        self.name = name
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Server-side request accounting: one ``server_requests_total``
        #: increment per frame, labeled by server, operation, outcome.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_requests = self.metrics.counter(
            "server_requests_total",
            "RPC frames handled, by server, operation, and outcome.",
            labelnames=("server", "op", "outcome"),
        )
        self._ops: Dict[str, Handler] = {}

    def register(self, op: str, handler: Handler) -> None:
        if op in self._ops:
            raise RpcError(f"operation {op!r} already registered on {self.name}")
        self._ops[op] = handler

    def register_object(self, obj: Any) -> None:
        """Register every ``@rpc_method``-marked method of *obj*."""
        for attr_name in dir(obj):
            attr = getattr(obj, attr_name)
            op = getattr(attr, _RPC_ATTR, None)
            if op is not None and callable(attr):
                self.register(op, attr)

    @property
    def operations(self) -> list:
        return sorted(self._ops)

    def handle_frame(self, frame: bytes) -> bytes:
        """The transport-facing entry point: bytes in, bytes out.

        Handler exceptions become error responses; nothing escapes to
        the transport (a malformed request must not kill a server). The
        ``server.handle`` span is still marked with the error, so traces
        show server-side failures that the wire reports as mere failure
        responses.
        """
        try:
            request = Request.from_bytes(frame)
        except Exception as exc:
            # Parse happens outside the span (there is no trace context
            # to adopt from an undecodable frame); record the failure as
            # a plain error-marked span so traces still show it.
            with self.tracer.span("server.handle", server=self.name) as span:
                span.set_attribute("op", "<malformed>")
                span.mark_error(exc)
            self._m_requests.labels(
                server=self.name, op="<malformed>", outcome="error"
            ).inc()
            return Response.failure(
                TransportError(f"bad request frame: {exc}")
            ).to_bytes()
        with self.tracer.span_from(
            request.ctx, "server.handle", server=self.name
        ) as span:
            span.set_attribute("op", request.op)
            handler = self._ops.get(request.op)
            if handler is None:
                unknown = RpcError(f"unknown operation {request.op!r}")
                span.mark_error(unknown)
                self._m_requests.labels(
                    server=self.name, op=request.op, outcome="error"
                ).inc()
                return Response.failure(unknown).to_bytes()
            try:
                value = handler(**dict(request.args))
            except Exception as exc:
                logger.debug("handler %s failed: %s", request.op, exc)
                span.mark_error(exc)
                self._m_requests.labels(
                    server=self.name, op=request.op, outcome="error"
                ).inc()
                return Response.failure(exc).to_bytes()
            self._m_requests.labels(
                server=self.name, op=request.op, outcome="ok"
            ).inc()
            return Response.success(value).to_bytes()


@dataclass(frozen=True)
class BatchCall:
    """One invocation in a pipelined batch (target + op + args)."""

    target: Any  # Endpoint or ContactAddress
    op: str
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class BatchOutcome:
    """Result slot of one :class:`BatchCall`: a value or an exception.

    Batched calls never raise per-call — a failed call's outcome carries
    the rehydrated exception so the caller (retry layer, scheduler)
    decides what to do with each slot.
    """

    call: BatchCall
    value: Any = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        return self.error is None


# Error classes that are re-raised with their original type client-side.
_REHYDRATABLE = {
    name: getattr(_errors, name)
    for name in _errors.__all__
    if isinstance(getattr(_errors, name), type)
}


class RpcClient:
    """Client-side call helper over any :class:`Transport`.

    ``tracer`` (optional) records one ``rpc.call`` span per invocation
    with the operation, target, and transferred byte counts; a failed
    call (transport fault or re-raised remote error) closes the span
    with error status and the exception's class name.
    """

    def __init__(self, transport: Transport, tracer=None, metrics=None) -> None:
        self.transport = transport
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Client-side call accounting: per-operation totals and a
        #: latency histogram in (simulated) seconds. Latency is only
        #: measured when a real registry is installed — the disabled
        #: path performs no clock reads.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_calls = self.metrics.counter(
            "rpc_client_calls_total",
            "RPC invocations issued, by operation and outcome.",
            labelnames=("op", "outcome"),
        )
        self._m_latency = self.metrics.histogram(
            "rpc_client_call_seconds",
            "Per-call wire latency (clock-charged seconds), by operation.",
            labelnames=("op",),
        )
        self._m_inflight = self.metrics.gauge(
            "rpc_inflight",
            "RPC requests currently in flight in a pipelined batch.",
        )

    def call(self, target, op: str, **args: Any) -> Any:
        """Invoke *op* at *target* (an Endpoint or ContactAddress)."""
        endpoint = target.endpoint if isinstance(target, ContactAddress) else target
        if not isinstance(endpoint, Endpoint):
            raise RpcError(f"invalid RPC target: {target!r}")
        with self.tracer.span("rpc.call", op=op, target=str(endpoint)) as span:
            # Built inside the span so the envelope carries *this* span
            # as the remote parent of the server's ``server.handle``.
            request = Request(op=op, args=args, ctx=self.tracer.context())
            started = self.metrics.clock.now() if self.metrics.enabled else 0.0
            try:
                wire = request.to_bytes()
                span.set_attribute("sent_bytes", len(wire))
                frame = self.transport.request(endpoint, wire)
            except Exception:
                self._m_calls.labels(op=op, outcome="error").inc()
                raise
            if self.metrics.enabled:
                self._m_latency.labels(op=op).observe(
                    self.metrics.clock.now() - started
                )
            span.set_attribute("received_bytes", len(frame))
            response = Response.from_bytes(frame)
            if response.ok:
                self._m_calls.labels(op=op, outcome="ok").inc()
                return response.value
            self._m_calls.labels(op=op, outcome="error").inc()
            exc_cls = _REHYDRATABLE.get(response.error_type)
            if exc_cls is not None:
                raise exc_cls(response.error)
            raise RpcError(f"{response.error_type or 'RemoteError'}: {response.error}")

    # ------------------------------------------------------------------
    # Pipelined batches
    # ------------------------------------------------------------------

    def call_many(
        self, calls: Sequence[BatchCall], window: int = DEFAULT_WINDOW
    ) -> List[BatchOutcome]:
        """Issue a batch of calls, at most *window* in flight at once.

        When the transport supports concurrent requests (``request_many``
        — the simulated WAN charges max-of-parallel, the TCP transport
        fans out over pooled connections), each window of calls travels
        together under one ``rpc.call_many`` span. Wrapper transports
        without batch support (fault injection, MITM) degrade to
        sequential :meth:`call` — same outcomes, serial cost.

        Outcomes align with *calls*; per-call failures are captured in
        the outcome's ``error`` (rehydrated to the proper
        :mod:`repro.errors` type), never raised.
        """
        calls = list(calls)
        if window < 1:
            raise RpcError(f"pipeline window must be >= 1, got {window}")
        request_many = getattr(self.transport, "request_many", None)
        if request_many is None:
            return [self._call_outcome(call) for call in calls]
        outcomes: List[BatchOutcome] = []
        for start in range(0, len(calls), window):
            chunk = calls[start : start + window]
            with self.tracer.span("rpc.call_many", calls=len(chunk)) as span:
                # Every request in the window shares the call_many span
                # as its remote parent — the window *is* the causal unit.
                ctx = self.tracer.context()
                prepared = []
                for call in chunk:
                    endpoint = (
                        call.target.endpoint
                        if isinstance(call.target, ContactAddress)
                        else call.target
                    )
                    if not isinstance(endpoint, Endpoint):
                        raise RpcError(f"invalid RPC target: {call.target!r}")
                    wire = Request(op=call.op, args=dict(call.args), ctx=ctx).to_bytes()
                    prepared.append((call, endpoint, wire))
                self._m_inflight.set(len(prepared))
                try:
                    raw = request_many([(ep, wire) for _, ep, wire in prepared])
                finally:
                    self._m_inflight.set(0)
                errors = 0
                for (call, _, _), frame in zip(prepared, raw):
                    outcome = self._decode_outcome(call, frame)
                    if not outcome.ok:
                        errors += 1
                    outcomes.append(outcome)
                span.set_attribute("errors", errors)
        return outcomes

    def _call_outcome(self, call: BatchCall) -> BatchOutcome:
        """Sequential fallback: one :meth:`call`, exception captured."""
        try:
            value = self.call(call.target, call.op, **dict(call.args))
        except Exception as exc:
            return BatchOutcome(call=call, error=exc)
        return BatchOutcome(call=call, value=value)

    def _decode_outcome(self, call: BatchCall, frame) -> BatchOutcome:
        """Turn one raw transport slot into a :class:`BatchOutcome`."""
        if isinstance(frame, Exception):
            self._m_calls.labels(op=call.op, outcome="error").inc()
            return BatchOutcome(call=call, error=frame)
        try:
            response = Response.from_bytes(frame)
        except Exception as exc:
            self._m_calls.labels(op=call.op, outcome="error").inc()
            return BatchOutcome(
                call=call, error=TransportError(f"bad response frame: {exc}")
            )
        if response.ok:
            self._m_calls.labels(op=call.op, outcome="ok").inc()
            return BatchOutcome(call=call, value=response.value)
        self._m_calls.labels(op=call.op, outcome="error").inc()
        exc_cls = _REHYDRATABLE.get(response.error_type)
        if exc_cls is not None:
            return BatchOutcome(call=call, error=exc_cls(response.error))
        return BatchOutcome(
            call=call,
            error=RpcError(f"{response.error_type or 'RemoteError'}: {response.error}"),
        )
