"""Per-replica health tracking: failure counts and circuit breaking.

One :class:`ReplicaHealthTracker` is shared by every component that
talks to replicas on behalf of one client (retrying RPC client, binder,
auditor). It keeps, per contact-address string, the consecutive-failure
count and a quarantine window implementing the classic circuit-breaker
states:

* **closed** — the replica looks fine; use it normally.
* **open** — ``failure_threshold`` consecutive failures tripped the
  breaker; the address is *quarantined* until a timestamp and the
  binder orders it after every healthy alternative.
* **half-open** — the quarantine expired; the next call is a probe.
  Success closes the breaker, failure re-opens it for a full window.

The tracker never *blocks* a call: when the quarantined address is the
only replica left, using it beats failing — the paper's bound is
"at most denial of service", not "guaranteed denial". Quarantine only
demotes the address in the binder's ordering and marks it for the
auditor's eviction sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.obs import NOOP_METRICS
from repro.sim.clock import Clock, RealClock

__all__ = [
    "CircuitState",
    "HealthRecord",
    "ReplicaHealthTracker",
    "CIRCUIT_STATE_VALUES",
]

#: Numeric rendering of circuit states for the ``replica_circuit_state``
#: gauge (monotone in severity, so ``max()`` aggregation is meaningful).
CIRCUIT_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitState(str, Enum):
    """Circuit-breaker state of one contact address."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class HealthRecord:
    """Observed health of one contact address."""

    consecutive_failures: int = 0
    total_failures: int = 0
    total_successes: int = 0
    quarantined_until: float = 0.0
    state: CircuitState = CircuitState.CLOSED


class ReplicaHealthTracker:
    """Shared failure accounting + circuit breaker, keyed by address."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        failure_threshold: int = 3,
        quarantine_seconds: float = 30.0,
        metrics=None,
        metrics_client: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if quarantine_seconds <= 0:
            raise ValueError(
                f"quarantine_seconds must be positive, got {quarantine_seconds}"
            )
        self.clock = clock if clock is not None else RealClock()
        self.failure_threshold = failure_threshold
        self.quarantine_seconds = quarantine_seconds
        self._records: Dict[str, HealthRecord] = {}
        #: Total number of transitions into the OPEN state.
        self.quarantines = 0
        #: Circuit-state gauges per tracked address (``metrics_client``
        #: disambiguates trackers when several stacks share a registry).
        #: The gauge is refreshed by a scrape-time collector — breaker
        #: state changes lazily (quarantine expiry happens on read), so
        #: push-on-transition alone would miss open→half-open.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.metrics_client = metrics_client
        self._m_state = self.metrics.gauge(
            "replica_circuit_state",
            "Circuit-breaker state per contact address "
            "(0=closed, 1=half-open, 2=open).",
            labelnames=("client", "address"),
        )
        self._m_quarantines = self.metrics.counter(
            "replica_quarantines_total",
            "Transitions into the open (quarantined) state.",
        )
        self.metrics.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def record_failure(self, address: str) -> None:
        record = self._records.setdefault(str(address), HealthRecord())
        record.consecutive_failures += 1
        record.total_failures += 1
        now = self.clock.now()
        if record.state is CircuitState.OPEN:
            # Still failing while quarantined: keep the window sliding,
            # but do not double-count the quarantine.
            record.quarantined_until = now + self.quarantine_seconds
        elif (
            record.state is CircuitState.HALF_OPEN
            or record.consecutive_failures >= self.failure_threshold
        ):
            record.state = CircuitState.OPEN
            record.quarantined_until = now + self.quarantine_seconds
            self.quarantines += 1
            self._m_quarantines.inc()

    def record_success(self, address: str) -> None:
        record = self._records.setdefault(str(address), HealthRecord())
        record.consecutive_failures = 0
        record.total_successes += 1
        record.state = CircuitState.CLOSED
        record.quarantined_until = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def record(self, address: str) -> HealthRecord:
        """The (possibly fresh) record for *address*."""
        return self._records.setdefault(str(address), HealthRecord())

    def state_of(self, address: str) -> CircuitState:
        """Current breaker state, applying quarantine expiry."""
        record = self._records.get(str(address))
        if record is None:
            return CircuitState.CLOSED
        if (
            record.state is CircuitState.OPEN
            and self.clock.now() >= record.quarantined_until
        ):
            record.state = CircuitState.HALF_OPEN  # next call is a probe
        return record.state

    def is_quarantined(self, address: str) -> bool:
        """True while the breaker is open and the window has not expired."""
        return self.state_of(address) is CircuitState.OPEN

    def order(self, addresses: Sequence) -> List:
        """Stable re-ordering of contact addresses, healthiest first.

        Non-quarantined addresses keep their (proximity-sorted) order and
        come first, sorted by consecutive failures; quarantined ones sink
        to the back. Half-open addresses count as available — they must
        receive probe traffic to ever close again.
        """
        return sorted(
            addresses,
            key=lambda a: (
                self.is_quarantined(str(a)),
                self.record(str(a)).consecutive_failures,
            ),
        )

    def quarantined_addresses(self) -> List[str]:
        """Every address key currently inside a quarantine window."""
        return [key for key in self._records if self.is_quarantined(key)]

    def reset(self) -> None:
        self._records.clear()
        self.quarantines = 0

    def _collect_metrics(self) -> None:
        for key in self._records:
            self._m_state.labels(
                client=self.metrics_client, address=key
            ).set(float(CIRCUIT_STATE_VALUES[self.state_of(key).value]))

    def __len__(self) -> int:
        return len(self._records)
