"""The simulated WAN.

This module stands in for the paper's four-host Internet testbed
(Table 1). The model has exactly the two ingredients the paper's
measurements decompose into:

* **transfer time** — per-link propagation latency plus serialisation of
  the *actual encoded bytes* at the link bandwidth, plus a per-request
  service time at the destination host (connection handling, the
  Java-server cost the paper discusses);
* **compute time** — real CPU time of real crypto operations executed
  inside a :meth:`SimHost.compute` block, scaled by the host's CPU
  factor (era scaling: a 2026 core is ~20× a 1 GHz Pentium III at
  crypto) and memory-pressure factor (the 256 MB hosts swapped).

Both advance the shared :class:`~repro.sim.clock.SimClock`, so a clock
delta around any operation sequence is directly comparable to the
paper's timer placements.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.transport import TransferStats
from repro.sim.clock import SimClock

__all__ = ["HostProfile", "LinkSpec", "SimHost", "SimNetwork", "SimTransport"]

FrameHandler = Callable[[bytes], bytes]


@dataclass(frozen=True)
class HostProfile:
    """Static description of a simulated host (one row of Table 1).

    ``cpu_factor`` multiplies *measured* modern compute time to model the
    host's era/architecture; ``memory_pressure`` multiplies it again to
    model swapping on RAM-starved hosts (the paper's explanation for
    GlobeDoc losing to Apache/SSL on the 256 MB machines).
    ``service_time`` is the fixed per-request cost of the server software
    stack at this host, in simulated seconds.
    """

    name: str
    site: str
    arch: str = ""
    ram_mb: int = 2048
    os: str = ""
    cpu_factor: float = 1.0
    memory_pressure: float = 1.0
    service_time: float = 0.002

    @property
    def compute_scale(self) -> float:
        return self.cpu_factor * self.memory_pressure


@dataclass(frozen=True)
class LinkSpec:
    """One-way link characteristics between two sites."""

    latency: float  # seconds, one way
    bandwidth: float  # bytes per second

    def transfer_time(self, nbytes: int) -> float:
        """One-way delivery time for *nbytes*."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self.latency + nbytes / self.bandwidth


class SimHost:
    """A host attached to a :class:`SimNetwork`."""

    def __init__(self, profile: HostProfile, network: "SimNetwork") -> None:
        self.profile = profile
        self.network = network

    @property
    def name(self) -> str:
        return self.profile.name

    @contextmanager
    def compute(self) -> Iterator[None]:
        """Run real computation; charge its scaled cost to the sim clock.

        The full scale (CPU factor × memory pressure) applies: this is
        the context for the paper's Java components (GlobeDoc proxy and
        object server), whose swap behaviour the pressure factor models.

        Usage::

            with host.compute():
                key.verify(signature, payload)
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.network.clock.advance(elapsed * self.profile.compute_scale)

    @contextmanager
    def compute_native(self) -> Iterator[None]:
        """Like :meth:`compute` but without the memory-pressure factor —
        for lean native code (wget/OpenSSL, Apache) that did not suffer
        the JVM's swapping on the 256 MB hosts."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.network.clock.advance(elapsed * self.profile.cpu_factor)

    def charge(self, seconds: float) -> None:
        """Charge a known compute cost directly (deterministic tests)."""
        self.network.clock.advance(seconds * self.profile.compute_scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimHost({self.profile.name!r} @ {self.profile.site!r})"


class SimNetwork:
    """Hosts + links + endpoint registry + the shared simulated clock."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._hosts: Dict[str, SimHost] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._handlers: Dict[Endpoint, FrameHandler] = {}
        self._default_link: Optional[LinkSpec] = None

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_host(self, profile: HostProfile) -> SimHost:
        if profile.name in self._hosts:
            raise TransportError(f"host {profile.name!r} already exists")
        host = SimHost(profile, self)
        self._hosts[profile.name] = host
        return host

    def host(self, name: str) -> SimHost:
        try:
            return self._hosts[name]
        except KeyError:
            raise TransportError(f"unknown host {name!r}") from None

    @property
    def host_names(self) -> list:
        return sorted(self._hosts)

    def add_link(self, a: str, b: str, spec: LinkSpec, symmetric: bool = True) -> None:
        """Connect hosts (or sites) *a* and *b*."""
        self._links[(a, b)] = spec
        if symmetric:
            self._links[(b, a)] = spec

    def set_default_link(self, spec: LinkSpec) -> None:
        """Fallback link used for host pairs without an explicit entry."""
        self._default_link = spec

    def link_between(self, src: str, dst: str) -> LinkSpec:
        """Resolve the link between two *hosts* (host pair, then site
        pair, then default). Same-host traffic is free of propagation."""
        if src == dst:
            return LinkSpec(latency=0.0, bandwidth=float("inf"))
        direct = self._links.get((src, dst))
        if direct is not None:
            return direct
        src_site = self._hosts[src].profile.site if src in self._hosts else src
        dst_site = self._hosts[dst].profile.site if dst in self._hosts else dst
        by_site = self._links.get((src_site, dst_site))
        if by_site is not None:
            return by_site
        if src_site == dst_site:
            # Same site without an explicit LAN entry: fast local link.
            return LinkSpec(latency=0.0002, bandwidth=12_500_000)
        if self._default_link is not None:
            return self._default_link
        raise TransportError(f"no link between {src!r} and {dst!r}")

    # ------------------------------------------------------------------
    # Endpoints and transports
    # ------------------------------------------------------------------

    def register(self, endpoint: Endpoint, handler: FrameHandler) -> None:
        """Expose a frame handler at *endpoint* (host must exist)."""
        self.host(endpoint.host)  # validates
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Endpoint) -> None:
        self._handlers.pop(endpoint, None)

    def handler_at(self, endpoint: Endpoint) -> FrameHandler:
        handler = self._handlers.get(endpoint)
        if handler is None:
            raise TransportError(f"no handler registered at {endpoint}")
        return handler

    def transport_for(self, host_name: str) -> "SimTransport":
        """A client-side transport originating at *host_name*."""
        return SimTransport(self, self.host(host_name))


@dataclass
class SimTransport:
    """Client transport bound to a source host on a :class:`SimNetwork`.

    A request charges: request serialisation + propagation to the server,
    the destination's per-request service time, the handler's own compute
    charges (crypto on the server side), and the response trip back.
    """

    network: SimNetwork
    src: SimHost
    stats: TransferStats = field(default_factory=TransferStats)

    def request(self, endpoint: Endpoint, frame: bytes) -> bytes:
        handler = self.network.handler_at(endpoint)
        dst = self.network.host(endpoint.host)
        link = self.network.link_between(self.src.name, dst.name)
        clock = self.network.clock

        clock.advance(link.transfer_time(len(frame)))
        clock.advance(dst.profile.service_time)
        response = handler(frame)
        clock.advance(link.transfer_time(len(response)))

        self.stats.record(sent=len(frame), received=len(response))
        return response

    def request_many(
        self, batch: Sequence[Tuple[Endpoint, bytes]]
    ) -> List[Union[bytes, Exception]]:
        """Issue a batch of requests concurrently (simulated).

        Each request runs in its own branch of a
        :meth:`~repro.sim.clock.SimClock.parallel` region, so the batch
        charges the *slowest* request's time instead of the sum — the
        cost model of a client keeping several RPCs in flight. Slots in
        the returned list align with *batch*; a failed request's slot
        holds the exception instead of raising, so one dead endpoint
        cannot sink its wave-mates.
        """
        results: List[Union[bytes, Exception]] = []
        with self.network.clock.parallel() as region:
            for endpoint, frame in batch:
                with region.branch():
                    try:
                        results.append(self.request(endpoint, frame))
                    except Exception as exc:
                        results.append(exc)
        return results
