"""Transport abstraction.

A transport moves encoded request bytes to a remote endpoint and returns
encoded response bytes. All timing/accounting lives in the transport so
servers and proxies are transport-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Protocol, runtime_checkable

from repro.errors import TransportError
from repro.net.address import Endpoint

__all__ = ["Transport", "LoopbackTransport", "TransferStats"]

#: A server-side frame handler: request bytes in, response bytes out.
FrameHandler = Callable[[bytes], bytes]


@dataclass
class TransferStats:
    """Cumulative transfer accounting a transport exposes for experiments."""

    requests: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def record(self, sent: int, received: int) -> None:
        self.requests += 1
        self.bytes_sent += sent
        self.bytes_received += received

    def reset(self) -> None:
        self.requests = 0
        self.bytes_sent = 0
        self.bytes_received = 0


@runtime_checkable
class Transport(Protocol):
    """Client-side transport interface."""

    stats: TransferStats

    def request(self, endpoint: Endpoint, frame: bytes) -> bytes:
        """Deliver *frame* to *endpoint*, return the response frame."""
        ...


class LoopbackTransport:
    """Zero-cost in-process transport (unit tests, single-host examples).

    Endpoints register frame handlers; requests call them directly. No
    latency, no clock interaction — but byte accounting still happens so
    tests can assert on message sizes.
    """

    def __init__(self) -> None:
        self._handlers: Dict[Endpoint, FrameHandler] = {}
        self.stats = TransferStats()

    def register(self, endpoint: Endpoint, handler: FrameHandler) -> None:
        """Expose *handler* at *endpoint* (overwrites silently — tests
        re-register fresh servers freely)."""
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Endpoint) -> None:
        self._handlers.pop(endpoint, None)

    def request(self, endpoint: Endpoint, frame: bytes) -> bytes:
        handler = self._handlers.get(endpoint)
        if handler is None:
            raise TransportError(f"no handler registered at {endpoint}")
        response = handler(frame)
        self.stats.record(sent=len(frame), received=len(response))
        return response
