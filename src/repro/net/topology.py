"""The paper's experimental testbed (Table 1) as a simulated topology.

Four hosts:

========================  ==========================  ======  =========
Host                      Architecture                RAM     Role
========================  ==========================  ======  =========
ginger.cs.vu.nl           Dual Pentium III 2×1 GHz    2 GB    Amsterdam primary (replica + services)
sporty.cs.vu.nl           Dual Pentium III 2×1 GHz    2 GB    Amsterdam secondary (LAN client)
canardo.inria.fr          Pentium III 1 GHz           256 MB  Paris client
ensamble02.cornell.edu    UltraSPARC-IIi 450 MHz      256 MB  Ithaca, NY client
========================  ==========================  ======  =========

Calibration (documented substitutions, see DESIGN.md §2):

* ``cpu_factor`` scales modern measured crypto time up to the 2004 host:
  ~20× for a 1 GHz Pentium III, ~45× for the 450 MHz UltraSPARC (which
  additionally ran crypto in interpreted Java without x86-optimised
  primitives).
* ``memory_pressure`` models the swapping the paper blames for the
  256 MB hosts' degraded JVM performance (×2.5).
* Link parameters are era-plausible WAN values: 100 Mbit/s switched LAN
  at the VU; ~8 Mbit/s with 10 ms one-way delay Amsterdam↔Paris;
  ~4 Mbit/s with 45 ms one-way delay Amsterdam↔Ithaca.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.simnet import HostProfile, LinkSpec, SimNetwork
from repro.sim.clock import SimClock

__all__ = [
    "AMSTERDAM_PRIMARY",
    "AMSTERDAM_SECONDARY",
    "PARIS",
    "ITHACA",
    "TABLE1_HOSTS",
    "WanTopology",
    "paper_testbed",
]

#: Era scaling: one modern core ≈ 20× a 1 GHz Pentium III on OpenSSL-style
#: crypto workloads (single-threaded integer/vector throughput).
ERA_SCALE_P3_1GHZ = 20.0

AMSTERDAM_PRIMARY = HostProfile(
    name="ginger.cs.vu.nl",
    site="VU",
    arch="Dual Pentium III 2x1GHz",
    ram_mb=2048,
    os="Linux 2.4.19",
    cpu_factor=ERA_SCALE_P3_1GHZ,
    memory_pressure=1.0,
    service_time=0.0015,
)

AMSTERDAM_SECONDARY = HostProfile(
    name="sporty.cs.vu.nl",
    site="VU",
    arch="Dual Pentium III 2x1GHz",
    ram_mb=2048,
    os="Linux 2.4.19",
    cpu_factor=ERA_SCALE_P3_1GHZ,
    memory_pressure=1.0,
    service_time=0.0015,
)

PARIS = HostProfile(
    name="canardo.inria.fr",
    site="INRIA",
    arch="Pentium III 1GHz",
    ram_mb=256,
    os="Linux 2.4.18",
    cpu_factor=ERA_SCALE_P3_1GHZ,
    memory_pressure=2.5,
    service_time=0.002,
)

ITHACA = HostProfile(
    name="ensamble02.cornell.edu",
    site="Cornell",
    arch="UltraSPARC-IIi 450MHz",
    ram_mb=256,
    os="SunOS 5.8",
    cpu_factor=45.0,
    memory_pressure=2.5,
    service_time=0.003,
)

TABLE1_HOSTS = (AMSTERDAM_PRIMARY, AMSTERDAM_SECONDARY, PARIS, ITHACA)

#: Link parameters between the three sites (one-way latency s, bytes/s).
_SITE_LINKS = {
    ("VU", "VU"): LinkSpec(latency=0.00015, bandwidth=12_500_000),
    ("VU", "INRIA"): LinkSpec(latency=0.010, bandwidth=1_000_000),
    ("VU", "Cornell"): LinkSpec(latency=0.045, bandwidth=500_000),
    ("INRIA", "Cornell"): LinkSpec(latency=0.050, bandwidth=500_000),
}


@dataclass
class WanTopology:
    """A constructed testbed: network plus the canonical host roles."""

    network: SimNetwork
    primary: HostProfile = AMSTERDAM_PRIMARY
    secondary: HostProfile = AMSTERDAM_SECONDARY
    paris: HostProfile = PARIS
    ithaca: HostProfile = ITHACA
    #: Fixed per-access client-side cost outside the security path: the
    #: browser/wget → proxy local HTTP hop and proxy bookkeeping.
    client_overhead: float = 0.005

    @property
    def clock(self) -> SimClock:
        return self.network.clock  # type: ignore[return-value]

    @property
    def clients(self) -> Dict[str, HostProfile]:
        """The paper's three client vantage points keyed by figure label."""
        return {
            "Amsterdam": self.secondary,
            "Paris": self.paris,
            "Ithaca": self.ithaca,
        }


def paper_testbed(clock: Optional[SimClock] = None) -> WanTopology:
    """Build the Table 1 testbed on a fresh simulated network."""
    network = SimNetwork(clock=clock)
    for profile in TABLE1_HOSTS:
        network.add_host(profile)
    for (a, b), spec in _SITE_LINKS.items():
        network.add_link(a, b, spec)
    return WanTopology(network=network)
