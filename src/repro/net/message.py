"""RPC wire messages.

Requests and responses serialise through the canonical encoder so the
bytes are identical on the loopback, simulated, and TCP transports —
which in turn makes simulated transfer sizes honest (the simulator
charges for the *actual* encoded bytes, including certificate and key
payloads, reproducing the paper's "about 2KB of extra information").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import EncodingError, RpcError, TransportError
from repro.util.encoding import from_wire, to_wire

__all__ = ["Request", "Response"]


@dataclass(frozen=True)
class Request:
    """An operation invocation on a remote endpoint.

    ``ctx`` is the caller's trace context (``{"trace": ..., "span": ...}``)
    — advisory observability metadata, never load-bearing. It is omitted
    from the wire entirely when absent (a NOOP-traced client produces
    byte-identical frames to an untraced build), and a malformed or
    unexpected value on decode is carried through verbatim for the
    server's tracer to ignore: trace context can never fail an RPC.
    """

    op: str
    args: Mapping[str, Any] = field(default_factory=dict)
    ctx: Optional[Mapping[str, Any]] = None

    def to_bytes(self) -> bytes:
        frame = {"kind": "request", "op": self.op, "args": dict(self.args)}
        if self.ctx:
            frame["ctx"] = dict(self.ctx)
        return to_wire(frame)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Request":
        try:
            decoded = from_wire(data)
        except EncodingError as exc:
            raise TransportError(f"undecodable request frame: {exc}") from exc
        if not isinstance(decoded, dict) or decoded.get("kind") != "request":
            raise TransportError("malformed request frame")
        ctx = decoded.get("ctx")
        return cls(
            op=str(decoded["op"]),
            args=dict(decoded.get("args", {})),
            ctx=ctx if isinstance(ctx, dict) else None,
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class Response:
    """Result of a request: a value on success, an error string otherwise.

    ``error_type`` carries the exception class name so the client side
    can re-raise security errors as security errors (a tampering
    detection must not degrade into a generic RPC failure).
    """

    ok: bool
    value: Any = None
    error: str = ""
    error_type: str = ""

    @classmethod
    def success(cls, value: Any) -> "Response":
        return cls(ok=True, value=value)

    @classmethod
    def failure(cls, exc: BaseException) -> "Response":
        return cls(ok=False, error=str(exc), error_type=type(exc).__name__)

    def to_bytes(self) -> bytes:
        return to_wire(
            {
                "kind": "response",
                "ok": self.ok,
                "value": self.value,
                "error": self.error,
                "error_type": self.error_type,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Response":
        try:
            decoded = from_wire(data)
        except EncodingError as exc:
            raise TransportError(f"undecodable response frame: {exc}") from exc
        if not isinstance(decoded, dict) or decoded.get("kind") != "response":
            raise TransportError("malformed response frame")
        return cls(
            ok=bool(decoded["ok"]),
            value=decoded.get("value"),
            error=str(decoded.get("error", "")),
            error_type=str(decoded.get("error_type", "")),
        )

    def unwrap(self) -> Any:
        """Return the value or raise the transported error."""
        if self.ok:
            return self.value
        raise RpcError(f"{self.error_type or 'RemoteError'}: {self.error}")

    @property
    def wire_size(self) -> int:
        return len(self.to_bytes())
