"""Retry with exponential backoff for operational RPC failures.

The paper's availability argument (§3.1.2: a broken or malicious
replica causes "at most denial of service") only holds if the client
stack actually degrades infrastructure failures into retries and
failovers instead of surfacing them. :class:`RetryingRpcClient` is the
first line of that defence: it re-issues *idempotent* calls that failed
*operationally* (:class:`~repro.errors.TransportError`,
:class:`~repro.errors.RpcError`), waiting an exponentially growing,
seeded-jitter delay between attempts.

Two failure classes are deliberately never retried here:

* **Security violations** (:class:`~repro.errors.SecurityError` and
  subclasses) fail closed immediately — retrying a replica that served
  tampered data cannot make the data genuine, and hammering it would
  only delay the session-level failover to a different replica.
* **Non-idempotent operations** (admin commands, location-tree writes,
  SSL channel setup): a retry could double-apply a mutation whose first
  attempt succeeded but whose response was lost.

Waits go through the injected clock: under a
:class:`~repro.sim.clock.SimClock` the backoff advances simulated time
(so experiments charge it), under a real clock it sleeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import RpcError, SecurityError, TransportError
from repro.net.rpc import BatchCall, BatchOutcome, DEFAULT_WINDOW
from repro.obs import NOOP_METRICS, NOOP_TRACER
from repro.sim.clock import Clock, RealClock
from repro.sim.random import make_rng

__all__ = [
    "RetryPolicy",
    "RetryCounters",
    "RetryingRpcClient",
    "is_idempotent",
    "IDEMPOTENT_PREFIXES",
]

#: Operations safe to re-issue: pure reads of replicated/signed state.
#: Everything else (``admin.*``, ``location.insert/delete/move``,
#: ``ssl.*`` channel setup, …) is conservatively treated as mutating.
IDEMPOTENT_PREFIXES = (
    "globedoc.",
    "naming.",
    "location.lookup",
    "http.get",
    "rosfs.",
    "gemini.get",
    "server.quote",
    "dynamic.query",
    "dynamic.origin_query",
)


def is_idempotent(op: str) -> bool:
    """True when *op* is a read-only operation safe to retry."""
    return op.startswith(IDEMPOTENT_PREFIXES)


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one RPC.

    ``max_attempts`` bounds total tries (1 = no retry). Delays grow as
    ``base_delay * multiplier**(attempt-1)``, capped at ``max_delay``
    and spread by ``jitter`` (a ±fraction drawn from the seeded RNG, so
    a fleet of clients retrying the same dead replica decorrelates
    deterministically). ``deadline`` caps the *total* time (clock time,
    including backoff) one logical call may consume across attempts;
    ``call_timeout`` is advisory per-attempt budget for transports that
    support interruption (the in-process transports are synchronous and
    cannot be interrupted mid-call).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    call_timeout: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        for name in ("deadline", "call_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    def delay_for(self, attempt: int, rng) -> float:
        """Backoff before retry number *attempt* (1-based failed tries)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0.0, delay)


@dataclass
class RetryCounters:
    """Cumulative resilience accounting one retrying client exposes."""

    retries: int = 0
    giveups: int = 0
    backoff_seconds: float = 0.0

    def reset(self) -> None:
        self.retries = 0
        self.giveups = 0
        self.backoff_seconds = 0.0


class RetryingRpcClient:
    """An :class:`~repro.net.rpc.RpcClient` drop-in that retries.

    Duck-types the plain client (``call`` + ``transport``), so binders,
    resolvers, location clients and LRs take it unchanged. An optional
    :class:`~repro.net.health.ReplicaHealthTracker` observes every
    attempt's outcome per target, feeding the binder's address ordering
    and the auditor's eviction sweep.
    """

    def __init__(
        self,
        inner,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        health=None,
        idempotent: Optional[Callable[[str], bool]] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else RealClock()
        self.health = health
        self._idempotent = idempotent if idempotent is not None else is_idempotent
        self._rng = make_rng(self.policy.seed)
        self.counters = RetryCounters()
        #: Records one ``rpc.attempt`` span per try; a failed-but-retried
        #: attempt carries the chosen ``backoff_s`` as an attribute, so a
        #: trace shows exactly where a flaky access's time went.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Registry twins of :attr:`counters`, so the monitor plane sees
        #: retry pressure without holding a reference to this client.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_retries = self.metrics.counter(
            "rpc_retries_total", "Re-issued RPC attempts after backoff."
        )
        self._m_giveups = self.metrics.counter(
            "rpc_giveups_total",
            "Calls abandoned after exhausting attempts or the deadline.",
        )
        self._m_backoff = self.metrics.counter(
            "rpc_backoff_seconds_total",
            "Clock time spent waiting between retry attempts.",
        )

    @property
    def transport(self):
        return self.inner.transport

    def call(self, target, op: str, **args: Any) -> Any:
        policy = self.policy
        retryable = self._idempotent(op)
        start = self.clock.now()
        attempt = 0
        while True:
            attempt += 1
            delay = 0.0
            with self.tracer.span(
                "rpc.attempt", op=op, target=str(target), attempt=attempt
            ) as span:
                try:
                    value = self.inner.call(target, op, **args)
                except SecurityError:
                    # Fail closed: a security violation is a property of
                    # the replica, not of the network — the session-level
                    # failover (different replica) is the only sound
                    # retry. (The span records the error on re-raise.)
                    self._note_failure(target)
                    raise
                except (TransportError, RpcError) as exc:
                    span.mark_error(exc)
                    self._note_failure(target)
                    if not retryable or attempt >= policy.max_attempts:
                        self.counters.giveups += 1
                        self._m_giveups.inc()
                        raise
                    delay = policy.delay_for(attempt, self._rng)
                    if (
                        policy.deadline is not None
                        and (self.clock.now() - start) + delay > policy.deadline
                    ):
                        self.counters.giveups += 1
                        self._m_giveups.inc()
                        raise
                    span.set_attribute("backoff_s", delay)
                else:
                    self._note_success(target)
                    return value
            # The backoff wait happens outside the failed attempt's span
            # (attempt spans measure the try, not the patience).
            self._wait(delay)
            self.counters.retries += 1
            self.counters.backoff_seconds += delay
            self._m_retries.inc()
            self._m_backoff.inc(delay)

    def call_many(
        self, calls: Sequence[BatchCall], window: int = DEFAULT_WINDOW
    ) -> List[BatchOutcome]:
        """Pipelined batch with round-based retries.

        Round 1 issues every call through the inner client's
        ``call_many``; failed slots that are retryable (idempotent op,
        operational error, attempts and deadline remaining) go into the
        next round after *one* shared backoff wait — the max of the
        per-call delays, since the waits would overlap in flight just
        like the calls do. Security errors fail closed per slot and are
        never re-issued; every slot's outcome feeds the health tracker
        exactly as single calls do.
        """
        policy = self.policy
        calls = list(calls)
        results: List[Optional[BatchOutcome]] = [None] * len(calls)
        pending = list(enumerate(calls))
        start = self.clock.now()
        attempt = 0
        while pending:
            attempt += 1
            with self.tracer.span(
                "rpc.attempt", op="<batch>", calls=len(pending), attempt=attempt
            ) as span:
                outcomes = self.inner.call_many(
                    [call for _, call in pending], window=window
                )
                next_pending = []
                round_delay = 0.0
                for (index, call), outcome in zip(pending, outcomes):
                    if outcome.ok:
                        self._note_success(call.target)
                        results[index] = outcome
                        continue
                    error = outcome.error
                    if isinstance(error, SecurityError):
                        # Fail closed, never retried (see call()).
                        self._note_failure(call.target)
                        results[index] = outcome
                        continue
                    if not isinstance(error, (TransportError, RpcError)):
                        results[index] = outcome
                        continue
                    self._note_failure(call.target)
                    retryable = (
                        self._idempotent(call.op) and attempt < policy.max_attempts
                    )
                    if retryable:
                        delay = policy.delay_for(attempt, self._rng)
                        if (
                            policy.deadline is not None
                            and (self.clock.now() - start) + delay > policy.deadline
                        ):
                            retryable = False
                        else:
                            next_pending.append((index, call))
                            round_delay = max(round_delay, delay)
                    if not retryable:
                        self.counters.giveups += 1
                        self._m_giveups.inc()
                        results[index] = outcome
                span.set_attribute("retrying", len(next_pending))
                if next_pending:
                    span.set_attribute("backoff_s", round_delay)
            pending = next_pending
            if pending:
                self._wait(round_delay)
                self.counters.retries += len(pending)
                self.counters.backoff_seconds += round_delay
                self._m_retries.inc(len(pending))
                self._m_backoff.inc(round_delay)
        return [outcome for outcome in results if outcome is not None]

    # ------------------------------------------------------------------

    def _wait(self, delay: float) -> None:
        if delay <= 0:
            return
        advance = getattr(self.clock, "advance", None)
        if advance is not None:
            advance(delay)  # SimClock: the experiment pays for the wait
        else:  # pragma: no cover - real-time path exercised by TCP runs
            time.sleep(delay)

    def _note_failure(self, target) -> None:
        if self.health is not None:
            self.health.record_failure(str(target))

    def _note_success(self, target) -> None:
        if self.health is not None:
            self.health.record_success(str(target))
