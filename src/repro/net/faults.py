"""Fault injection for transports.

Wraps any client transport and injects failures according to a seeded
schedule: dropped requests (raising
:class:`~repro.errors.TransportError`), corrupted response frames, or
both. Used by the resilience test-suite to show that infrastructure
flakiness degrades GlobeDoc accesses into clean errors and failovers —
never into accepted-but-wrong content — and available to downstream
users for their own chaos testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TransportError
from repro.net.address import Endpoint
from repro.net.transport import TransferStats, Transport
from repro.sim.random import make_rng

__all__ = ["FaultPlan", "FlakyTransport"]


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities of each fault per request (independent draws)."""

    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_probability", "corrupt_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class FlakyTransport:
    """A transport that sometimes drops or corrupts traffic."""

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = make_rng(plan.seed)
        self.stats = TransferStats()
        self.drops = 0
        self.corruptions = 0

    def request(self, endpoint: Endpoint, frame: bytes) -> bytes:
        if self.plan.drop_probability and self._rng.random() < self.plan.drop_probability:
            self.drops += 1
            # The attempt still went on the wire: account for it before
            # raising, or chaos runs undercount exactly when it matters.
            self.stats.record(sent=len(frame), received=0)
            raise TransportError(f"injected drop of request to {endpoint}")
        response = self.inner.request(endpoint, frame)
        if (
            self.plan.corrupt_probability
            and self._rng.random() < self.plan.corrupt_probability
            and response
        ):
            self.corruptions += 1
            # Flip a byte somewhere in the frame body.
            index = int(self._rng.integers(0, len(response)))
            corrupted = bytearray(response)
            corrupted[index] ^= 0xFF
            response = bytes(corrupted)
        self.stats.record(sent=len(frame), received=len(response))
        return response
