"""Network substrate: addresses, wire messages, RPC, and transports.

One RPC layer rides on three interchangeable transports:

* :class:`~repro.net.transport.LoopbackTransport` — direct in-process
  calls, zero cost; used by unit tests.
* :class:`~repro.net.simnet.SimNetwork` — the simulated WAN with
  per-link latency/bandwidth and per-host CPU factors; used by the
  experiment harness to replay the paper's four-host testbed.
* :class:`~repro.net.tcpnet.TcpTransport` — real sockets with the same
  wire format; used by integration tests and the live examples.
"""

from repro.net.address import ContactAddress, Endpoint
from repro.net.health import CircuitState, HealthRecord, ReplicaHealthTracker
from repro.net.message import Request, Response
from repro.net.retry import RetryCounters, RetryingRpcClient, RetryPolicy
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.net.transport import LoopbackTransport, Transport
from repro.net.simnet import HostProfile, LinkSpec, SimHost, SimNetwork, SimTransport
from repro.net.topology import TABLE1_HOSTS, WanTopology, paper_testbed

__all__ = [
    "ContactAddress",
    "Endpoint",
    "CircuitState",
    "HealthRecord",
    "ReplicaHealthTracker",
    "Request",
    "Response",
    "RetryCounters",
    "RetryingRpcClient",
    "RetryPolicy",
    "RpcClient",
    "RpcServer",
    "rpc_method",
    "LoopbackTransport",
    "Transport",
    "HostProfile",
    "LinkSpec",
    "SimHost",
    "SimNetwork",
    "SimTransport",
    "TABLE1_HOSTS",
    "WanTopology",
    "paper_testbed",
]
