"""Contact addresses (§2.1.2).

The Globe Location Service maps OIDs onto *contact addresses* — where
and how to contact a GlobeDoc replica. An address names a host, an
endpoint on that host (an object server may host many replicas), and the
protocol spoken there. Addresses carry **no security**: they come from
an untrusted service and are only ever used to fetch data that is then
verified against the self-certifying OID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ReproError

__all__ = ["ContactAddress", "Endpoint"]


@dataclass(frozen=True)
class Endpoint:
    """A named service endpoint on a host (e.g. ``"objectserver"``)."""

    host: str
    service: str

    def __post_init__(self) -> None:
        if not self.host or not self.service:
            raise ReproError("endpoint host and service must be non-empty")

    def __str__(self) -> str:
        return f"{self.host}/{self.service}"


@dataclass(frozen=True)
class ContactAddress:
    """Where and how to contact a GlobeDoc replica.

    ``protocol`` distinguishes a full replica (clients bind here) from
    other contact-point flavours the Globe model allows; the replication
    coordinator also registers proxy contact points.
    """

    endpoint: Endpoint
    protocol: str = "globedoc/replica"
    replica_id: str = ""

    @property
    def host(self) -> str:
        return self.endpoint.host

    def to_dict(self) -> dict:
        return {
            "host": self.endpoint.host,
            "service": self.endpoint.service,
            "protocol": self.protocol,
            "replica_id": self.replica_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ContactAddress":
        try:
            return cls(
                endpoint=Endpoint(host=str(data["host"]), service=str(data["service"])),
                protocol=str(data.get("protocol", "globedoc/replica")),
                replica_id=str(data.get("replica_id", "")),
            )
        except KeyError as exc:
            raise ReproError(f"malformed contact address: missing {exc}") from exc

    def __str__(self) -> str:
        suffix = f"#{self.replica_id}" if self.replica_id else ""
        return f"{self.protocol}://{self.endpoint}{suffix}"
