"""Figures 5–7: GlobeDoc vs Apache-HTTP vs Apache-SSL retrieval times.

Three 11-element objects (15 KB / 105 KB / 1005 KB) hosted on the
Amsterdam primary three ways: as a GlobeDoc replica, as static files
behind plain HTTP, and behind an SSL channel. Each client (Amsterdam:
Fig. 5, Paris: Fig. 6, Ithaca: Fig. 7) downloads all 11 elements with
each scheme; we report the mean wall-clock per whole-object retrieval.

Scheme fidelity notes:

* GlobeDoc: one secure binding (key + certificate exchange, verified),
  then 11 element fetches each hash-checked — the proxy's real code
  path;
* HTTP: 11 independent GETs (wget, HTTP/1.0 era);
* SSL: 11 GETs each on a fresh connection → a full 2-round-trip
  handshake with a real RSA key exchange per element, plus record
  encryption/decryption on both ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.plainhttp import PlainHttpClient
from repro.errors import ReproError
from repro.harness.experiment import Testbed
from repro.harness.fig4 import CLIENT_HOSTS
from repro.net.rpc import RpcClient
from repro.util.stats import summarize
from repro.workloads.generator import make_document_owner
from repro.workloads.sizes import ObjectSpec, fig567_objects

__all__ = ["Fig567Row", "run_fig567", "run_fig567_for_client", "SCHEMES"]

SCHEMES = ("globedoc", "http", "ssl")

#: Paper figure number per client label.
FIGURE_OF_CLIENT = {"Amsterdam": 5, "Paris": 6, "Ithaca": 7}


@dataclass(frozen=True)
class Fig567Row:
    """One bar of Figures 5–7."""

    client: str
    object_label: str
    total_bytes: int
    scheme: str
    seconds: float
    repeats: int

    @property
    def figure(self) -> int:
        return FIGURE_OF_CLIENT.get(self.client, 0)


def _retrieve_globedoc(testbed: Testbed, host: str, published, spec: ObjectSpec) -> float:
    stack = testbed.client_stack(host)
    start = testbed.clock.now()
    testbed.charge_client_overhead()
    for element_name in spec.element_names:
        response = stack.proxy.handle(published.url(element_name))
        if not response.ok:
            raise ReproError(
                f"globedoc retrieval failed for {element_name!r}: {response.status}"
            )
    return testbed.clock.now() - start


def _retrieve_http(testbed: Testbed, host: str, published, spec: ObjectSpec) -> float:
    client = PlainHttpClient(
        RpcClient(testbed.network.transport_for(host)), testbed.http_server.endpoint
    )
    start = testbed.clock.now()
    testbed.charge_client_overhead()
    for element_name in spec.element_names:
        client.get(f"{published.name}/{element_name}")
    return testbed.clock.now() - start


def _retrieve_ssl(testbed: Testbed, host: str, published, spec: ObjectSpec) -> float:
    client = testbed.ssl_client(host)
    start = testbed.clock.now()
    testbed.charge_client_overhead()
    for element_name in spec.element_names:
        client.get(f"{published.name}/{element_name}", new_connection=True)
    return testbed.clock.now() - start


_RETRIEVERS = {
    "globedoc": _retrieve_globedoc,
    "http": _retrieve_http,
    "ssl": _retrieve_ssl,
}


def run_fig567_for_client(
    client_label: str,
    repeats: int = 3,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 0,
    testbed: Optional[Testbed] = None,
    published_cache: Optional[Dict[str, object]] = None,
) -> List[Fig567Row]:
    """One figure's data: every object × scheme for one client."""
    host = CLIENT_HOSTS.get(client_label)
    if host is None:
        raise ReproError(f"unknown client label {client_label!r}")
    if testbed is None:
        testbed = Testbed()
    published_cache = published_cache if published_cache is not None else {}

    rows: List[Fig567Row] = []
    for spec in fig567_objects():
        published = published_cache.get(spec.name)
        if published is None:
            owner = make_document_owner(spec, seed=seed, clock=testbed.clock)
            published = testbed.publish(owner)
            published_cache[spec.name] = published
        for scheme in schemes:
            retrieve = _RETRIEVERS.get(scheme)
            if retrieve is None:
                raise ReproError(f"unknown scheme {scheme!r}")
            samples = [
                retrieve(testbed, host, published, spec) for _ in range(repeats)
            ]
            rows.append(
                Fig567Row(
                    client=client_label,
                    object_label=spec.label,
                    total_bytes=spec.total_size,
                    scheme=scheme,
                    seconds=summarize(samples).mean,
                    repeats=repeats,
                )
            )
    return rows


def run_fig567(
    repeats: int = 3,
    clients: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 0,
) -> List[Fig567Row]:
    """Regenerate Figures 5, 6 and 7 (all clients on one shared testbed)."""
    testbed = Testbed()
    published_cache: Dict[str, object] = {}
    rows: List[Fig567Row] = []
    for client_label in clients if clients is not None else FIGURE_OF_CLIENT:
        rows.extend(
            run_fig567_for_client(
                client_label,
                repeats=repeats,
                schemes=schemes,
                seed=seed,
                testbed=testbed,
                published_cache=published_cache,
            )
        )
    return rows
