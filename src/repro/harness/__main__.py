"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness table1
    python -m repro.harness fig4 [--repeats N]
    python -m repro.harness fig5|fig6|fig7 [--repeats N]
    python -m repro.harness bench-security [--quick] [--out PATH]
    python -m repro.harness chaos [--quick] [--out PATH]
    python -m repro.harness trace [--quick] [--out PATH]
    python -m repro.harness revocation [--quick] [--out PATH]
    python -m repro.harness recovery [--quick] [--out PATH]
    python -m repro.harness convergence [--quick] [--out PATH]
    python -m repro.harness monitor [--quick] [--out PATH]
    python -m repro.harness profile [--quick] [--out PATH]
    python -m repro.harness bench-report
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness.fig4 import run_fig4
from repro.harness.fig567 import FIGURE_OF_CLIENT, run_fig567_for_client
from repro.harness.report import render_fig4, render_fig567, render_table
from repro.harness.table1 import TABLE1_COLUMNS, table1_rows

_CLIENT_OF_FIGURE = {f"fig{num}": client for client, num in FIGURE_OF_CLIENT.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=[
            "table1", "fig4", "fig5", "fig6", "fig7", "loadtest",
            "bench-security", "chaos", "trace", "revocation", "recovery",
            "convergence", "monitor", "profile", "bench-report", "all",
        ],
        help="which artifact to regenerate",
    )
    parser.add_argument("--repeats", type=int, default=3, help="samples per point")
    parser.add_argument("--seed", type=int, default=0, help="content seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="bench-security/chaos/trace: fewer iterations (CI smoke mode)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="bench-security/chaos/trace: where to write the JSON report "
        "(default: BENCH_*.json in the repo root)",
    )
    args = parser.parse_args(argv)

    targets = (
        ["table1", "fig4", "fig5", "fig6", "fig7"] if args.target == "all" else [args.target]
    )
    for target in targets:
        if target == "table1":
            print("Table 1 — Experimental setting")
            print(render_table(TABLE1_COLUMNS, table1_rows()))
        elif target == "fig4":
            rows = run_fig4(repeats=args.repeats, seed=args.seed)
            print(render_fig4(rows))
        elif target == "loadtest":
            _run_loadtest(seed=args.seed)
        elif target == "bench-security":
            code = _run_bench_security(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "chaos":
            code = _run_chaos(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "trace":
            code = _run_trace(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "revocation":
            code = _run_revocation(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "recovery":
            code = _run_recovery(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "convergence":
            code = _run_convergence(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "monitor":
            code = _run_monitor(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "profile":
            code = _run_profile(quick=args.quick, seed=args.seed, out=args.out)
            if code:
                return code
        elif target == "bench-report":
            _run_bench_report()
        else:
            client = _CLIENT_OF_FIGURE[target]
            rows = run_fig567_for_client(client, repeats=args.repeats, seed=args.seed)
            print(render_fig567(rows, client))
        print()
    return 0


def _run_bench_security(quick: bool, seed: int, out=None) -> int:
    """Baseline-vs-fastpath + sequential-vs-pipelined security benchmark.

    Runs the access pipeline in both modes (concurrent scheduler enabled
    and disabled) and gates on the criteria: pipelined throughput at
    least the concurrency target over sequential, zero unverified bytes,
    and the adversarial conformance matrix green in both modes.
    """
    from repro.harness.security_bench import (
        REPORT_NAME,
        check_report,
        render_security_bench,
        run_security_bench,
        write_report,
    )

    report = run_security_bench(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_security_bench(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall security gates passed; report written to {out}")
    return 0


def _run_chaos(quick: bool, seed: int, out=None) -> int:
    """Resilience sweep: availability under faults, genuineness always."""
    from repro.harness.chaos import (
        REPORT_NAME,
        check_report,
        render_chaos,
        run_chaos,
        write_report,
    )

    report = run_chaos(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_chaos(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall resilience gates passed; report written to {out}")
    return 0


def _run_trace(quick: bool, seed: int, out=None) -> int:
    """Access-pipeline trace profile: span breakdown + rejection census."""
    from repro.harness.trace_profile import (
        REPORT_NAME,
        check_report,
        render_trace,
        run_trace,
        write_report,
    )

    report = run_trace(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_trace(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall trace gates passed; report written to {out}")
    return 0


def _run_revocation(quick: bool, seed: int, out=None) -> int:
    """Compromise-to-containment latency + steady-state feed overhead."""
    from repro.harness.revocation_bench import (
        REPORT_NAME,
        check_report,
        render_revocation,
        run_revocation,
        write_report,
    )

    report = run_revocation(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_revocation(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall revocation gates passed; report written to {out}")
    return 0


def _run_recovery(quick: bool, seed: int, out=None) -> int:
    """Crash recovery: kill/restart gates + fail-closed tamper gates."""
    from repro.harness.recovery import (
        REPORT_NAME,
        check_report,
        render_recovery,
        run_recovery,
        write_report,
    )

    report = run_recovery(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_recovery(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall recovery gates passed; report written to {out}")
    return 0


def _run_convergence(quick: bool, seed: int, out=None) -> int:
    """Multi-writer convergence: partition/heal, tamper matrix, recovery."""
    from repro.harness.convergence import (
        REPORT_NAME,
        check_report,
        render_convergence,
        run_convergence,
        write_report,
    )

    report = run_convergence(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_convergence(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall convergence gates passed; report written to {out}")
    return 0


def _run_monitor(quick: bool, seed: int, out=None) -> int:
    """Monitor plane: metrics scrape cadence + SLO alert lifecycle."""
    from repro.harness.monitor import (
        REPORT_NAME,
        check_report,
        render_monitor,
        run_monitor,
        write_report,
    )

    report = run_monitor(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_monitor(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall monitor gates passed; report written to {out}")
    return 0


def _run_profile(quick: bool, seed: int, out=None) -> int:
    """Causal observability plane: cross-process stitching, critical-path
    attribution, SLO burn-rate lifecycle."""
    from repro.harness.profile_bench import (
        REPORT_NAME,
        check_report,
        render_profile,
        run_profile,
        write_report,
    )

    report = run_profile(quick=quick, seed=seed)
    if out is None:
        out = pathlib.Path(__file__).resolve().parents[3] / REPORT_NAME
    write_report(report, out)
    print(render_profile(report))
    problems = check_report(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"\nall profile gates passed; report written to {out}")
    return 0


def _run_bench_report() -> None:
    """One summary over every BENCH_*.json present in the repo root."""
    from repro.harness.report import aggregate_bench_reports, render_bench_summary

    root = pathlib.Path(__file__).resolve().parents[3]
    print(render_bench_summary(aggregate_bench_reports(root)))


def _run_loadtest(seed: int = 0) -> None:
    """The §1 flash-crowd load study (see bench_flash_crowd.py)."""
    import importlib.util
    import pathlib

    bench_path = (
        pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "bench_flash_crowd.py"
    )
    if bench_path.exists():
        spec = importlib.util.spec_from_file_location("bench_flash_crowd", bench_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        from repro.replication.strategies import HotspotReplication, NoReplication

        static = module.run_crowd(NoReplication)
        dynamic = module.run_crowd(
            lambda: HotspotReplication(create_rate=1.0, destroy_rate=0.01, window=15.0)
        )
        site = module.CROWD_SITE
        print("Load study — flash crowd at Cornell (mean client latency)")
        rows = []
        for label, lo, hi in (("pre-crowd (0-30 s)", 0.0, 30.0), ("crowd peak (45-60 s)", 45.0, 60.0)):
            s = static.latency_summary(site=site, start=lo, end=hi)
            d = dynamic.latency_summary(site=site, start=lo, end=hi)
            rows.append([label, f"{s.mean*1e3:.1f} ms", f"{d.mean*1e3:.1f} ms"])
        print(render_table(["Phase", "single server", "hotspot replication"], rows))
    else:  # installed without the benchmarks tree
        print("loadtest requires the repository checkout (benchmarks/ present)")


if __name__ == "__main__":
    sys.exit(main())
