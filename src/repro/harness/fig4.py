"""Figure 4: security overhead (%) vs element size, per client site.

Methodology mirrors §4: single-element objects of 1 KB–1 MB, one
replica on the Amsterdam primary, accessed from the Amsterdam
secondary, Paris, and Ithaca; timers decompose each access into
security-specific operations (key fetch + OID check, certificate fetch
+ verify, element hash) and everything else (name resolution, location
lookup, element transfer, client processing). The paper averaged a 24 h
run at 6-minute intervals; we average ``repeats`` fresh accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.harness.experiment import Testbed
from repro.proxy.metrics import AccessTimer
from repro.util.sizes import format_size
from repro.util.stats import summarize
from repro.workloads.generator import make_document_owner
from repro.workloads.sizes import FIG4_ELEMENT_SIZES, fig4_objects

__all__ = ["Fig4Row", "run_fig4", "CLIENT_HOSTS"]

#: Figure label → Table-1 host, matching the paper's three series.
CLIENT_HOSTS = {
    "Amsterdam": "sporty.cs.vu.nl",
    "Paris": "canardo.inria.fr",
    "Ithaca": "ensamble02.cornell.edu",
}


@dataclass(frozen=True)
class Fig4Row:
    """One point of Figure 4."""

    client: str
    size_bytes: int
    overhead_percent: float
    security_seconds: float
    total_seconds: float
    repeats: int

    @property
    def size_label(self) -> str:
        return format_size(self.size_bytes)


def run_fig4(
    repeats: int = 5,
    sizes: Optional[Sequence[int]] = None,
    clients: Optional[Dict[str, str]] = None,
    seed: int = 0,
) -> List[Fig4Row]:
    """Regenerate Figure 4's data. Returns one row per (client, size)."""
    if repeats < 1:
        raise ReproError("repeats must be at least 1")
    testbed = Testbed()
    clients = dict(clients or CLIENT_HOSTS)
    wanted_sizes = set(sizes if sizes is not None else FIG4_ELEMENT_SIZES)

    specs = [s for s in fig4_objects() if s.elements[0][1] in wanted_sizes]
    published = {}
    for spec in specs:
        owner = make_document_owner(spec, seed=seed, clock=testbed.clock)
        published[spec.elements[0][1]] = testbed.publish(owner)

    rows: List[Fig4Row] = []
    for client_label, host_name in clients.items():
        for size in sorted(wanted_sizes):
            obj = published[size]
            overheads, totals, security = [], [], []
            for _ in range(repeats):
                # A fresh stack per access: the paper's wget runs were
                # independent accesses, each paying the full flow.
                stack = testbed.client_stack(host_name)
                timer = AccessTimer(testbed.clock)
                timer.charge("client_processing", testbed.charge_client_overhead())
                response = stack.proxy.handle(obj.url("image.png"), timer=timer)
                if not response.ok:
                    raise ReproError(
                        f"fig4 access failed: {response.status} "
                        f"{response.security_failure}"
                    )
                metrics = response.metrics
                assert metrics is not None
                overheads.append(metrics.overhead_percent)
                totals.append(metrics.total)
                security.append(metrics.security_time)
            rows.append(
                Fig4Row(
                    client=client_label,
                    size_bytes=size,
                    overhead_percent=summarize(overheads).mean,
                    security_seconds=summarize(security).mean,
                    total_seconds=summarize(totals).mean,
                    repeats=repeats,
                )
            )
    return rows


def rows_as_series(rows: List[Fig4Row]) -> Dict[str, List[Fig4Row]]:
    """Group rows by client, size-ascending — the figure's three curves."""
    series: Dict[str, List[Fig4Row]] = {}
    for row in rows:
        series.setdefault(row.client, []).append(row)
    for client_rows in series.values():
        client_rows.sort(key=lambda r: r.size_bytes)
    return series
