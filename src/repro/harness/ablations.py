"""Ablation experiments for the design choices DESIGN.md calls out.

Each function isolates one design decision and returns a small result
record; the corresponding ``benchmarks/bench_ablation_*.py`` runs it
under pytest-benchmark and prints the comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.hashes import SHA1
from repro.crypto.keys import KeyPair, rsa_encrypt
from repro.crypto.merkle import MerkleTree
from repro.crypto.signing import sign_payload, verify_payload
from repro.errors import ReproError
from repro.globedoc.integrity import IntegrityCertificate
from repro.harness.experiment import Testbed
from repro.harness.fig4 import CLIENT_HOSTS
from repro.location.tree import DomainTree
from repro.net.address import ContactAddress, Endpoint
from repro.workloads.generator import make_document_owner, make_element
from repro.workloads.sizes import fig567_objects

__all__ = [
    "CryptoOpCosts",
    "measure_crypto_ops",
    "CertSchemeCosts",
    "compare_cert_schemes",
    "LocationCosts",
    "compare_location_lookup",
    "CertCacheCosts",
    "compare_cert_caching",
    "StrategyCosts",
    "compare_replication_strategies",
    "FreshnessCosts",
    "compare_freshness_granularity",
]


# ----------------------------------------------------------------------
# Ablation: signature verify vs RSA decrypt (GlobeDoc vs SSL, §4)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CryptoOpCosts:
    """Mean seconds per operation, measured on real crypto."""

    sign: float
    verify: float
    rsa_encrypt: float
    rsa_decrypt: float
    iterations: int

    @property
    def decrypt_over_verify(self) -> float:
        """The paper's claim: this ratio is large (verify is much cheaper)."""
        return self.rsa_decrypt / self.verify if self.verify > 0 else float("inf")


def measure_crypto_ops(iterations: int = 50, key_bits: int = 2048) -> CryptoOpCosts:
    """Time the four RSA operations underpinning the GlobeDoc-vs-SSL
    cost argument, on real keys."""
    if iterations < 1:
        raise ReproError("iterations must be positive")
    keys = KeyPair.generate(key_bits)
    payload = {"msg": "x" * 256}
    signature = sign_payload(keys, payload)
    premaster = b"\x01" * 48
    ciphertext = rsa_encrypt(keys.public, premaster)

    def timed(fn) -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        return (time.perf_counter() - start) / iterations

    return CryptoOpCosts(
        sign=timed(lambda: sign_payload(keys, payload)),
        verify=timed(lambda: verify_payload(keys.public, signature, payload)),
        rsa_encrypt=timed(lambda: rsa_encrypt(keys.public, premaster)),
        rsa_decrypt=timed(lambda: keys.decrypt(ciphertext)),
        iterations=iterations,
    )


# ----------------------------------------------------------------------
# Ablation: flat integrity certificate vs r-OSFS Merkle tree
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CertSchemeCosts:
    """Owner/update/verify/freshness costs of the two schemes."""

    element_count: int
    globedoc_sign_seconds: float
    globedoc_update_one_seconds: float
    globedoc_cert_bytes: int
    merkle_build_sign_seconds: float
    merkle_update_one_seconds: float
    merkle_proof_bytes: int
    globedoc_per_element_freshness: bool = True
    merkle_per_element_freshness: bool = False


def compare_cert_schemes(
    element_count: int = 64, element_size: int = 4096, repeats: int = 3
) -> CertSchemeCosts:
    """Cost comparison between the GlobeDoc integrity certificate and an
    r-OSFS-style signed Merkle root, over the same elements."""
    keys = KeyPair.generate()
    elements = [
        make_element(f"e{i:03d}.bin", element_size) for i in range(element_count)
    ]
    oid_hex = "ab" * 20

    def timed(fn) -> float:
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    # GlobeDoc: hash all elements + sign one certificate.
    def sign_globedoc():
        return IntegrityCertificate.for_elements(
            keys, oid_hex, elements, expires_at=1e12
        )

    cert = sign_globedoc()

    # GlobeDoc update of one element: rehash one + re-sign the table.
    def update_globedoc():
        changed = elements[0].with_content(b"new")
        entries = dict(cert.entries)
        from repro.globedoc.integrity import ElementEntry

        entries[changed.name] = ElementEntry(
            name=changed.name,
            content_hash=changed.content_hash(SHA1),
            expires_at=1e12,
        )
        return IntegrityCertificate.build(
            keys, oid_hex, list(entries.values()), version=2
        )

    # Merkle: hash all leaves, build tree, sign root.
    leaves = [e.content for e in elements]

    def build_merkle():
        tree = MerkleTree(leaves)
        sign_payload(keys, {"root": tree.root})
        return tree

    tree = build_merkle()

    # Merkle update of one element: full rebuild + re-sign root.
    def update_merkle():
        new_leaves = [b"new"] + leaves[1:]
        new_tree = MerkleTree(new_leaves)
        sign_payload(keys, {"root": new_tree.root})

    return CertSchemeCosts(
        element_count=element_count,
        globedoc_sign_seconds=timed(sign_globedoc),
        globedoc_update_one_seconds=timed(update_globedoc),
        globedoc_cert_bytes=cert.wire_size,
        merkle_build_sign_seconds=timed(build_merkle),
        merkle_update_one_seconds=timed(update_merkle),
        merkle_proof_bytes=tree.proof(0).wire_size,
    )


# ----------------------------------------------------------------------
# Ablation: expanding-ring location lookup vs flat directory
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LocationCosts:
    """Search cost (nodes visited) under local vs remote replicas."""

    sites: int
    replicas: int
    ring_local_visits: float
    ring_remote_visits: float
    flat_visits: float
    tree_records: int
    flat_records: int


def compare_location_lookup(
    fanout: int = 4, depth: int = 3, replicas: int = 8
) -> LocationCosts:
    """Expanding-ring search in a domain tree vs a flat directory scan.

    Builds a ``fanout**depth``-site tree, registers *replicas* replicas
    of one object, and measures nodes visited when the querying site is
    (a) one of the replica sites — the common CDN case the design
    optimises — and (b) far from every replica.
    """
    tree = DomainTree()
    site_paths = []

    def build(path: str, level: int) -> None:
        if level == depth:
            site_paths.append(path)
            tree.add_site(path)
            return
        for i in range(fanout):
            build(f"{path}/d{level}{i}", level + 1)

    build("root", 0)

    address = ContactAddress(
        endpoint=Endpoint(host="h", service="objectserver"), replica_id="r"
    )
    oid_hex = "cd" * 20
    replica_sites = site_paths[:: max(1, len(site_paths) // replicas)][:replicas]
    for site in replica_sites:
        tree.insert(oid_hex, site, address)

    _, local_visits = tree.lookup(oid_hex, replica_sites[0])
    # A site maximally far from the replicas:
    far_site = site_paths[-1] if site_paths[-1] not in replica_sites else site_paths[-2]
    _, remote_visits = tree.lookup(oid_hex, far_site)

    # Flat directory: one central table; every lookup scans it (cost
    # modelled as one visit per registered object entry — here, the
    # replica list length — plus the single directory hop).
    flat_visits = 1 + len(replica_sites)

    return LocationCosts(
        sites=len(site_paths),
        replicas=len(replica_sites),
        ring_local_visits=float(local_visits),
        ring_remote_visits=float(remote_visits),
        flat_visits=float(flat_visits),
        tree_records=tree.total_records(),
        flat_records=len(replica_sites),
    )


# ----------------------------------------------------------------------
# Ablation: integrity-certificate caching in the proxy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CertCacheCosts:
    """Whole-object retrieval time with and without binding cache."""

    client: str
    object_label: str
    cached_seconds: float
    uncached_seconds: float

    @property
    def speedup(self) -> float:
        return self.uncached_seconds / self.cached_seconds if self.cached_seconds else 0.0


def compare_cert_caching(
    client_label: str = "Paris", object_index: int = 0, repeats: int = 3
) -> CertCacheCosts:
    """Measure the ~2 KB key+certificate exchange amortisation: fetch an
    11-element object with the secure binding cached vs re-established
    per element (Fig. 4's "initial security exchange" cost)."""
    host = CLIENT_HOSTS[client_label]
    testbed = Testbed()
    spec = fig567_objects()[object_index]
    owner = make_document_owner(spec, clock=testbed.clock)
    published = testbed.publish(owner)

    def retrieve(cache_binding: bool) -> float:
        stack = testbed.client_stack(host)
        proxy = stack.fresh_proxy(cache_binding=cache_binding)
        start = testbed.clock.now()
        for element_name in spec.element_names:
            response = proxy.handle(published.url(element_name))
            if not response.ok:
                raise ReproError(f"ablation retrieval failed: {response.status}")
        return testbed.clock.now() - start

    cached = sum(retrieve(True) for _ in range(repeats)) / repeats
    uncached = sum(retrieve(False) for _ in range(repeats)) / repeats
    return CertCacheCosts(
        client=client_label,
        object_label=spec.label,
        cached_seconds=cached,
        uncached_seconds=uncached,
    )


# ----------------------------------------------------------------------
# Ablation: per-document replication strategy vs one-size-fits-all
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StrategyCosts:
    """Outcome of replaying one request trace under one strategy."""

    strategy: str
    mean_latency: float
    total_latency: float
    replica_seconds: float
    placements: int


def _replay_strategy(trace, strategy_factory, home_site, site_latency, local_latency):
    """Replay *trace* against a strategy, charging WAN latency for
    requests served from the home site and *local_latency* for requests
    at sites holding a replica."""
    from repro.replication.policy import RequestObservation

    policy = strategy_factory()
    current = [home_site]
    replica_since: Dict[str, float] = {}
    total_latency = 0.0
    replica_seconds = 0.0
    placements = 0
    for event in trace:
        obs = RequestObservation(site=event.site, time=event.time)
        if event.site in current:
            total_latency += local_latency
        else:
            total_latency += site_latency.get(event.site, 0.05)
        for action in policy.on_request(obs, current):
            if action.kind.value == "create" and action.site not in current:
                current.append(action.site)
                replica_since[action.site] = event.time
                placements += 1
            elif action.kind.value == "destroy" and action.site in current[1:]:
                current.remove(action.site)
                replica_seconds += event.time - replica_since.pop(action.site, event.time)
    if trace:
        end = trace[-1].time
        for site, since in replica_since.items():
            replica_seconds += end - since
    return total_latency, replica_seconds, placements


def compare_replication_strategies(
    trace=None,
    home_site: str = "root/europe/vu",
    site_latency=None,
    local_latency: float = 0.005,
    seed: int = 0,
):
    """Replay one trace under every catalogue strategy (ref [13]'s
    per-document-beats-global claim). Returns a list of
    :class:`StrategyCosts`, one per strategy, plus the per-document best
    pick appended as ``"per-document"`` (oracle choice)."""
    from repro.replication.strategies import (
        HotspotReplication,
        NoReplication,
        StaticReplication,
    )
    from repro.workloads.trace import TraceConfig, generate_trace, inject_flash_crowd

    if site_latency is None:
        site_latency = {
            "root/europe/vu": 0.002,
            "root/europe/inria": 0.022,
            "root/us/cornell": 0.092,
        }
    if trace is None:
        config = TraceConfig(
            documents=("vu.nl/viral",),
            sites=tuple(site_latency),
            duration=600.0,
            rate=2.0,
            seed=seed,
        )
        trace = inject_flash_crowd(
            generate_trace(config),
            document="vu.nl/viral",
            site="root/us/cornell",
            start=200.0,
            duration=120.0,
            rate=20.0,
            seed=seed + 1,
        )

    factories = {
        "no-replication": NoReplication,
        "static-everywhere": lambda: StaticReplication(sites=list(site_latency)),
        "hotspot": lambda: HotspotReplication(
            create_rate=1.0, destroy_rate=0.05, window=30.0
        ),
    }
    results = []
    for name, factory in factories.items():
        total, replica_seconds, placements = _replay_strategy(
            trace, factory, home_site, site_latency, local_latency
        )
        results.append(
            StrategyCosts(
                strategy=name,
                mean_latency=total / len(trace) if trace else 0.0,
                total_latency=total,
                replica_seconds=replica_seconds,
                placements=placements,
            )
        )
    return results


# ----------------------------------------------------------------------
# Ablation: per-element freshness vs one global interval (vs r-OSFS, §5)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FreshnessCosts:
    """Freshness-maintenance workload under mixed element volatilities.

    A document has one *hot* element (meaningful validity =
    ``hot_interval``) and many *cold* ones (meaningful validity =
    ``cold_validity``). GlobeDoc's per-element expiration lets each
    element carry its own interval; r-OSFS has exactly one interval for
    the whole store, which must shrink to the hot element's — forcing
    clients to re-validate *everything* at the hot rate.
    """

    elements: int
    horizon: float
    #: how often a client must re-validate a cached COLD element
    globedoc_cold_revalidations: int
    rosfs_cold_revalidations: int
    #: owner signings over the horizon (same for both — one hot element)
    owner_signs: int
    #: client-side re-validation traffic over the horizon (bytes)
    globedoc_refresh_bytes: int
    rosfs_refresh_bytes: int

    @property
    def revalidation_ratio(self) -> float:
        """How many times more often r-OSFS clients must re-validate
        cold content (the paper's per-element-freshness advantage)."""
        return self.rosfs_cold_revalidations / max(1, self.globedoc_cold_revalidations)


def compare_freshness_granularity(
    elements: int = 20,
    hot_interval: float = 60.0,
    cold_validity: float = 3600.0,
    horizon: float = 3600.0,
) -> FreshnessCosts:
    """Quantify §5's claim that per-element expiration beats r-OSFS's
    single per-store interval when element volatilities differ.

    Model: a client keeps all elements cached and re-validates whenever
    an element's proof of freshness lapses. GlobeDoc: the cold elements'
    certificate rows last ``cold_validity``; only the hot element needs
    the short interval. r-OSFS: the single store interval must equal
    ``hot_interval`` (else the hot element could be replayed stale), so
    every cached element goes stale at the hot rate.
    """
    if hot_interval <= 0 or cold_validity < hot_interval:
        raise ReproError("need 0 < hot_interval <= cold_validity")
    hot_updates = int(horizon / hot_interval)
    cold_count = elements - 1

    cert_bytes = 120 * elements + 400  # entry rows + signature envelope
    root_bytes = 20 + 400
    proof_bytes = 21 * max(1, (max(2, elements) - 1).bit_length()) + 8

    globedoc_cold_revalidations = int(horizon / cold_validity)
    rosfs_cold_revalidations = hot_updates

    # GlobeDoc client: refetch the certificate when the hot element
    # needs re-validation (it carries all rows), but cold elements stay
    # provably fresh between cold_validity marks — no extra traffic.
    globedoc_refresh = hot_updates * cert_bytes
    # r-OSFS client: every interval the signed root changes; refetch the
    # root plus a fresh proof per cached element.
    rosfs_refresh = hot_updates * (root_bytes + proof_bytes * elements)

    return FreshnessCosts(
        elements=elements,
        horizon=horizon,
        globedoc_cold_revalidations=globedoc_cold_revalidations,
        rosfs_cold_revalidations=rosfs_cold_revalidations,
        owner_signs=hot_updates,
        globedoc_refresh_bytes=globedoc_refresh,
        rosfs_refresh_bytes=rosfs_refresh,
    )
