"""Plain-text rendering of experiment results (the bench/CLI output)."""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence

from repro.harness.fig4 import Fig4Row, rows_as_series
from repro.harness.fig567 import Fig567Row
from repro.util.sizes import format_size

__all__ = [
    "render_table",
    "render_fig4",
    "render_fig567",
    "aggregate_bench_reports",
    "render_bench_summary",
    "render_monitor_plane_section",
    "render_concurrency_section",
    "render_recovery_section",
    "render_convergence_section",
    "render_profile_section",
]


def render_table(columns: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A fixed-width text table."""
    widths = [len(str(c)) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_fig4(rows: List[Fig4Row]) -> str:
    """Figure 4 as a size × client table of overhead percentages."""
    series = rows_as_series(rows)
    clients = list(series)
    sizes = sorted({row.size_bytes for row in rows})
    table_rows = []
    for size in sizes:
        cells = [format_size(size)]
        for client in clients:
            match = next((r for r in series[client] if r.size_bytes == size), None)
            cells.append(f"{match.overhead_percent:.1f}%" if match else "-")
        table_rows.append(cells)
    title = "Figure 4 — Security overhead (percentage of total access time)"
    return title + "\n" + render_table(["Data size"] + clients, table_rows)


def render_fig567(rows: List[Fig567Row], client: str) -> str:
    """One of Figures 5–7 as an object × scheme table of seconds."""
    mine = [r for r in rows if r.client == client]
    objects = sorted({r.object_label for r in mine}, key=lambda label: next(
        r.total_bytes for r in mine if r.object_label == label
    ))
    schemes = sorted({r.scheme for r in mine})
    table_rows = []
    for obj in objects:
        cells = [obj]
        for scheme in schemes:
            match = next(
                (r for r in mine if r.object_label == obj and r.scheme == scheme), None
            )
            cells.append(f"{match.seconds*1000:.1f} ms" if match else "-")
        table_rows.append(cells)
    figure = mine[0].figure if mine else 0
    title = f"Figure {figure} — Performance comparison, {client} client"
    return title + "\n" + render_table(["Object"] + schemes, table_rows)


def aggregate_bench_reports(root: pathlib.Path) -> Dict[str, dict]:
    """Every ``BENCH_*.json`` under *root*, parsed, keyed by bench name.

    Discovery is by glob, not by a hard-coded list, so a new bench target
    that writes its ``BENCH_<name>.json`` shows up here (and in the
    ``bench-report`` CLI target) with no further wiring. Unparseable
    files surface as an ``{"error": ...}`` entry rather than vanishing —
    a corrupt report should fail loudly at aggregation time.
    """
    reports: Dict[str, dict] = {}
    # glob order is filesystem-dependent; sort by name so the aggregate
    # report (and anything diffing it) is stable across machines.
    for path in sorted(root.glob("BENCH_*.json"), key=lambda p: p.name):
        name = path.stem[len("BENCH_"):]
        try:
            reports[name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            reports[name] = {"error": f"{type(exc).__name__}: {exc}"}
    return reports


def render_bench_summary(reports: Dict[str, dict]) -> str:
    """One table over every collected bench report, plus a monitor-plane
    digest (alert timeline and worst observed staleness) when the
    ``monitor`` target has run."""
    if not reports:
        return "no BENCH_*.json reports found (run the bench targets first)"
    rows = []
    for name, report in sorted(reports.items()):
        if "error" in report:
            rows.append([name, "unreadable", report["error"]])
            continue
        top_level = ", ".join(
            k for k, v in report.items() if isinstance(v, (list, dict))
        )
        rows.append([name, "ok", top_level or "-"])
    summary = "Collected bench reports\n" + render_table(
        ["bench", "status", "sections"], rows
    )
    monitor = reports.get("monitor_plane")
    if monitor is not None and "error" not in monitor:
        summary += "\n\n" + render_monitor_plane_section(monitor)
    concurrency = render_concurrency_section(reports)
    if concurrency:
        summary += "\n\n" + concurrency
    recovery = render_recovery_section(reports)
    if recovery:
        summary += "\n\n" + recovery
    convergence = render_convergence_section(reports)
    if convergence:
        summary += "\n\n" + convergence
    profile = render_profile_section(reports)
    if profile:
        summary += "\n\n" + profile
    return summary


def render_convergence_section(reports: Dict[str, dict]) -> str:
    """Digest of the multi-writer convergence bench: writer/delta scale,
    merge latency, and the convergence + fail-closed verdicts.

    Returns an empty string when ``BENCH_convergence.json`` is absent
    (the target has not run), so callers can append conditionally.
    Tolerant of partial reports throughout.
    """
    report = reports.get("convergence")
    if not isinstance(report, dict) or "error" in report:
        return ""
    lines: List[str] = []
    part = report.get("partitioned_convergence") or {}
    if part:
        digests = set(part.get("server_digests", {}).values()) | set(
            part.get("reader_digests", {}).values()
        )
        verdict = (
            "byte-identical"
            if part.get("byte_identical")
            else f"DIVERGED ({len(digests)} distinct digests)"
        )
        lines.append(
            f"writers: {part.get('writers', 0)} over "
            f"{part.get('rounds', 0)} partitioned round(s), "
            f"{part.get('deltas', 0)} deltas "
            f"(gossip {part.get('gossip_pulled', 0)} pulled / "
            f"{part.get('gossip_pushed', 0)} pushed) — {verdict}"
        )
    merge = report.get("merge_cost") or {}
    if merge:
        lines.append(
            f"merge: p50 {merge.get('p50_us', 0.0):.0f} us, "
            f"p99 {merge.get('p99_us', 0.0):.0f} us over "
            f"{merge.get('deltas', 0)} deltas x {merge.get('samples', 0)} runs"
        )
    adversarial = report.get("adversarial") or []
    if adversarial:
        rejected = sum(1 for v in adversarial if v.get("ok"))
        lines.append(
            f"adversarial matrix: {rejected}/{len(adversarial)} scenarios "
            + ("rejected fail-closed" if rejected == len(adversarial) else "REJECTED")
        )
    recovery = report.get("recovery") or {}
    if recovery:
        lines.append(
            f"recovery: {recovery.get('recovered_deltas', 0)}/"
            f"{recovery.get('deltas_published', 0)} deltas re-verified, tamper "
            + (
                f"failed closed ({recovery.get('tamper_error', '?')})"
                if recovery.get("tamper_failed_closed")
                else "ACCEPTED TAMPERED BYTES"
            )
        )
    if not lines:
        return ""
    return "Multi-writer convergence\n" + "\n".join(f"  {line}" for line in lines)


def render_profile_section(reports: Dict[str, dict]) -> str:
    """Digest of the causal-profile bench: stitching health, critical-path
    category attribution, and the SLO verdicts.

    Returns an empty string when ``BENCH_profile.json`` is absent (the
    target has not run), so callers can append conditionally. Tolerant
    of partial reports throughout.
    """
    report = reports.get("profile")
    if not isinstance(report, dict) or "error" in report:
        return ""
    lines: List[str] = []
    stitching = report.get("stitching") or {}
    if stitching:
        lines.append(
            f"stitching: rate {stitching.get('stitch_rate', 0.0):.3f} over "
            f"{stitching.get('traces', 0)} traces, "
            f"{stitching.get('cross_process_spans', 0)} cross-process spans, "
            f"{stitching.get('orphan_spans', 0)} orphans"
        )
    profile = report.get("profile") or {}
    critical = profile.get("critical_path_s") or {}
    if critical:
        lines.append(
            f"critical path: p50 {critical.get('p50', 0.0) * 1e3:.1f} ms, "
            f"p99 {critical.get('p99', 0.0) * 1e3:.1f} ms over "
            f"{profile.get('traces_profiled', 0)} traces"
        )
    categories = profile.get("categories") or {}
    if categories:
        top = sorted(
            categories.items(), key=lambda kv: -kv[1].get("critical_s", 0.0)
        )[:3]
        lines.append(
            "top categories: "
            + ", ".join(
                f"{name} {entry.get('fraction', 0.0):.1%}" for name, entry in top
            )
        )
    slo = report.get("slo") or {}
    for verdict in slo.get("objectives", []):
        lines.append(
            f"SLO {verdict.get('objective', '?')}: compliance "
            f"{verdict.get('compliance', 0.0):.4f} vs target "
            f"{verdict.get('target', 0.0):.2f} "
            + ("(met)" if verdict.get("met") else "(missed)")
        )
    if not lines:
        return ""
    return "Causal profile\n" + "\n".join(f"  {line}" for line in lines)


def render_recovery_section(reports: Dict[str, dict]) -> str:
    """Digest of the crash-recovery bench: what a kill/restart cost and
    whether the fail-closed gates held.

    Returns an empty string when ``BENCH_recovery.json`` is absent (the
    target has not run), so callers can append conditionally. Tolerant
    of partial reports throughout.
    """
    report = reports.get("recovery")
    if not isinstance(report, dict) or "error" in report:
        return ""
    lines: List[str] = []
    replica = report.get("replica_recovery") or {}
    if replica:
        lines.append(
            f"replicas: {replica.get('recovered_replicas', 0)} recovered, "
            f"{replica.get('reverified_replicas', 0)} re-verified, over "
            f"{replica.get('restart_cycles', 0)} restart cycle(s) "
            f"({replica.get('recovery_wall_seconds', 0.0) * 1e3:.1f} ms last)"
        )
    revocation = report.get("revocation_resume") or {}
    if revocation:
        window = (
            "zero fail-open window"
            if revocation.get("revoked_rejected_from_disk")
            and revocation.get("refreshes_at_rejection") == 0
            else "FAIL-OPEN WINDOW OBSERVED"
        )
        lines.append(
            f"revocation cursor: {revocation.get('cursor_statements_recovered', 0)} "
            f"statement(s) recovered, head "
            f"{revocation.get('feed_head_before', 0)} -> "
            f"{revocation.get('feed_head_after', 0)} across restart — {window}"
        )
    torn = report.get("torn_tail") or {}
    if torn:
        lines.append(
            f"torn tail: {torn.get('torn_bytes_dropped', 0)} B dropped, "
            f"{torn.get('recovered_replicas', 0)}/{torn.get('expected_replicas', 0)} "
            "replicas kept"
        )
    tamper = report.get("tamper_fail_closed") or {}
    if tamper:
        lines.append(
            "tamper: "
            + (
                f"failed closed ({tamper.get('error_type', '?')})"
                if tamper.get("failed_closed")
                else "ACCEPTED TAMPERED BYTES"
            )
        )
    if not lines:
        return ""
    return "Crash recovery\n" + "\n".join(f"  {line}" for line in lines)


def render_concurrency_section(reports: Dict[str, dict]) -> str:
    """Digest of the concurrent access pipeline across bench reports:
    the security bench's throughput multiple and coalesce ratio, and the
    trace profile's in-handle ``rpc.attempt`` share per mode.

    Returns an empty string when neither report carries pipeline data
    (older reports, or the targets have not run), so callers can append
    conditionally. Tolerant of partial reports throughout.
    """
    lines: List[str] = []
    security = reports.get("security_pipeline") or {}
    concurrency = security.get("concurrency")
    if isinstance(concurrency, dict):
        pipelined = concurrency.get("pipelined") or {}
        sequential = concurrency.get("sequential") or {}
        multiple = concurrency.get("throughput_multiple")
        if multiple is not None:
            lines.append(
                f"throughput multiple: {multiple:.2f}x "
                f"({sequential.get('accesses_per_s', 0.0):.1f} -> "
                f"{pipelined.get('accesses_per_s', 0.0):.1f} accesses/s)"
            )
        ratio = pipelined.get("coalesce_ratio")
        if ratio is not None:
            counters = pipelined.get("counters") or {}
            lines.append(
                f"coalesce ratio: {ratio:.2f} "
                f"({counters.get('coalesced_calls', 0)} calls + "
                f"{counters.get('coalesced_responses', 0)} responses over "
                f"{pipelined.get('accesses', 0)} accesses)"
            )
        unverified = concurrency.get("unverified_responses")
        if unverified is not None:
            lines.append(f"unverified responses: {unverified}")
    trace = reports.get("trace_profile") or {}
    comparison = trace.get("pipeline_comparison")
    if isinstance(comparison, dict):
        sequential = comparison.get("sequential") or {}
        pipelined = comparison.get("pipelined") or {}
        seq_share = sequential.get("rpc_attempt_share")
        pipe_share = pipelined.get("rpc_attempt_share")
        if seq_share is not None and pipe_share is not None:
            lines.append(
                f"rpc.attempt in-handle share: {seq_share:.3f} sequential -> "
                f"{pipe_share:.3f} pipelined"
            )
        speedup = comparison.get("speedup")
        if speedup is not None:
            lines.append(f"trace-workload speedup: {speedup:.2f}x")
    if not lines:
        return ""
    return "Concurrent access pipeline\n" + "\n".join(f"  {line}" for line in lines)


def render_monitor_plane_section(report: dict) -> str:
    """The operator's at-a-glance view of the last monitor run: the SLO
    alert timeline in firing order, then the staleness high-water mark.

    Tolerant of partial reports (hand-edited or from an older run):
    missing keys render as absent rows rather than raising.
    """
    lines = ["Monitor plane — alert timeline"]
    timeline = report.get("timeline") or []
    if timeline:
        rows = [
            [
                f"{event.get('at', 0.0):10.2f}",
                str(event.get("rule", "?")),
                str(event.get("state", "?")),
                str(event.get("severity", "-")),
            ]
            for event in timeline
        ]
        lines.append(render_table(["t (s)", "rule", "state", "severity"], rows))
    else:
        lines.append("  (no alert transitions recorded)")
    latencies = report.get("alert_latencies") or {}
    fired = {k: v for k, v in latencies.items() if v is not None}
    if fired:
        lines.append(
            "alert latencies: "
            + ", ".join(f"{k}={v:.1f}s" for k, v in sorted(fired.items()))
        )
    worst = report.get("worst_staleness_seconds")
    if worst is not None:
        lines.append(f"worst revocation-view staleness: {worst:.1f} s")
    lag = report.get("worst_serial_lag")
    if lag is not None:
        lines.append(f"worst feed serial lag: {lag:.0f}")
    return "\n".join(lines)
