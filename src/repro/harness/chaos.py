"""Chaos harness: availability under faults, genuineness always.

Drives the full client stack (proxy → binder → session → RPC) through a
:class:`~repro.net.faults.FlakyTransport` at swept drop/corrupt rates,
against three genuine replicas — and, halfway through each run, crashes
the primary replica outright. Two stacks run the identical request
schedule:

* **resilient** — retry/backoff RPC (:class:`RetryingRpcClient`), a
  shared :class:`ReplicaHealthTracker`, and session failover enabled;
* **baseline** — the pre-resilience stack: single-shot RPC, no
  failover (``max_rebinds=0``).

Two claims are checked, mirroring §3.1.2's "at most denial of service"
bound:

1. **Genuineness invariant**: every byte served OK by either stack is
   exactly the owner-published content — faults may cost availability,
   never integrity.
2. **Resilience earns availability**: the resilient stack stays near
   100 % while genuine replicas exist; the baseline measurably degrades.

Run with ``python -m repro.harness chaos [--quick]``; writes
``BENCH_chaos_resilience.json`` for the CI gate.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import KeyPair
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import SERVICES_HOST, Testbed
from repro.net.address import ContactAddress, Endpoint
from repro.net.faults import FaultPlan, FlakyTransport
from repro.net.health import ReplicaHealthTracker
from repro.net.retry import RetryPolicy
from repro.net.rpc import RpcClient
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.sim.random import derive_seed

__all__ = ["ChaosPoint", "ChaosReport", "run_chaos", "render_chaos", "write_report", "REPORT_NAME"]

REPORT_NAME = "BENCH_chaos_resilience.json"

#: The three-replica deployment: primary plus two remote sites.
REPLICA_SITES = {
    "root/europe/vu": SERVICES_HOST,  # created by Testbed.publish
    "root/europe/inria": "canardo.inria.fr",
    "root/us/cornell": "ensamble02.cornell.edu",
}

CLIENT_HOST = "sporty.cs.vu.nl"

DROP_RATES = (0.0, 0.1, 0.2, 0.3)
CORRUPT_RATE = 0.02

ELEMENTS = {
    "index.html": b"<html><body>the one true chaos page</body></html>",
    "style.css": b"body { color: #222; } /* genuine bytes */",
}

#: Cold-bind cadence: drop all proxy sessions every this many requests
#: so the run exercises the full binding pipeline, not just warm
#: element fetches.
SESSION_DROP_EVERY = 8


@dataclass
class ChaosPoint:
    """Outcome of one (drop rate, stack flavour) sweep point."""

    drop_probability: float
    corrupt_probability: float
    requests: int
    ok: int
    failed: int
    unverified_bytes: int
    retries: int
    failovers: int
    quarantines: int
    backoff_seconds: float
    transport_requests: int
    drops_injected: int
    corruptions_injected: int

    @property
    def availability(self) -> float:
        return self.ok / self.requests if self.requests else 0.0


@dataclass
class ChaosReport:
    """The full sweep: resilient vs baseline at every rate."""

    seed: int
    replicas: int
    resilient: List[ChaosPoint] = field(default_factory=list)
    baseline: List[ChaosPoint] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "replicas": self.replicas,
            "resilient": [
                dict(asdict(p), availability=p.availability) for p in self.resilient
            ],
            "baseline": [
                dict(asdict(p), availability=p.availability) for p in self.baseline
            ],
        }


def _build_world(seed: int) -> Tuple[Testbed, object]:
    """A testbed with the document replicated at all three sites."""
    testbed = Testbed()
    owner = DocumentOwner(
        "vu.nl/chaos",
        keys=KeyPair.generate(1024),
        clock=testbed.clock,
    )
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    published = testbed.publish(owner, validity=7 * 24 * 3600.0)

    admin_rpc = RpcClient(testbed.network.transport_for(CLIENT_HOST))
    for site, host in REPLICA_SITES.items():
        if host == SERVICES_HOST:
            continue  # the primary replica already exists
        server = ObjectServer(host=host, site=site, clock=testbed.clock)
        server.keystore.authorize(owner.name, owner.public_key)
        testbed.network.register(
            Endpoint(host, "objectserver"), server.rpc_server().handle_frame
        )
        admin = AdminClient(
            admin_rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock
        )
        result = admin.create_replica(published.document)
        address = ContactAddress.from_dict(result["address"])
        testbed.location_service.tree.insert(owner.oid.hex, site, address)
    return testbed, published


def _run_point(
    drop: float,
    corrupt: float,
    requests: int,
    seed: int,
    resilient: bool,
) -> ChaosPoint:
    """One sweep point: fresh world, fresh stack, fixed request schedule.

    Halfway through, the primary replica's endpoint is torn down — the
    crash every resilient claim must survive while two genuine replicas
    remain.
    """
    testbed, published = _build_world(seed)
    plan = FaultPlan(
        drop_probability=drop,
        corrupt_probability=corrupt,
        seed=derive_seed(seed, "faults", int(drop * 1000), int(resilient)),
    )
    flaky = FlakyTransport(testbed.network.transport_for(CLIENT_HOST), plan)
    if resilient:
        health = ReplicaHealthTracker(
            clock=testbed.clock, failure_threshold=3, quarantine_seconds=600.0
        )
        policy = RetryPolicy(
            max_attempts=5,
            base_delay=0.02,
            multiplier=2.0,
            max_delay=0.5,
            jitter=0.1,
            seed=derive_seed(seed, "retry", int(drop * 1000)),
        )
        stack = testbed.client_stack(
            CLIENT_HOST, transport=flaky, retry_policy=policy, health=health
        )
    else:
        health = None
        stack = testbed.client_stack(CLIENT_HOST, transport=flaky, max_rebinds=0)
    proxy = stack.proxy

    ok = failed = unverified = 0
    retries = failovers = quarantines = 0
    backoff = 0.0
    names = list(ELEMENTS)
    for i in range(requests):
        if i == requests // 2:
            # Crash the primary: its address stays registered (the
            # location service is not told), so only client-side
            # resilience can keep the document reachable.
            testbed.network.unregister(Endpoint(SERVICES_HOST, "objectserver"))
        if i % SESSION_DROP_EVERY == 0:
            proxy.drop_all_sessions()
        name = names[i % len(names)]
        response = proxy.handle(published.url(name))
        if response.ok:
            if response.content == ELEMENTS[name]:
                ok += 1
            else:
                unverified += len(response.content)
        else:
            failed += 1
        stats = response.metrics.resilience if response.metrics else None
        if stats is not None:
            retries += stats.retries
            failovers += stats.failovers
            quarantines += stats.quarantines
            backoff += stats.backoff_seconds
    return ChaosPoint(
        drop_probability=drop,
        corrupt_probability=corrupt,
        requests=requests,
        ok=ok,
        failed=failed,
        unverified_bytes=unverified,
        retries=retries,
        failovers=failovers,
        quarantines=quarantines,
        backoff_seconds=backoff,
        transport_requests=flaky.stats.requests,
        drops_injected=flaky.drops,
        corruptions_injected=flaky.corruptions,
    )


def run_chaos(
    quick: bool = False,
    seed: int = 0,
    drop_rates: Optional[Sequence[float]] = None,
    corrupt_rate: float = CORRUPT_RATE,
) -> ChaosReport:
    """The full sweep: each rate once resilient, once baseline."""
    rates = tuple(drop_rates) if drop_rates is not None else DROP_RATES
    requests = 40 if quick else 120
    report = ChaosReport(seed=seed, replicas=len(REPLICA_SITES))
    for drop in rates:
        report.resilient.append(
            _run_point(drop, corrupt_rate, requests, seed, resilient=True)
        )
        report.baseline.append(
            _run_point(drop, corrupt_rate, requests, seed, resilient=False)
        )
    return report


def render_chaos(report: ChaosReport) -> str:
    """Human-readable sweep table."""
    from repro.harness.report import render_table

    rows = []
    for res, base in zip(report.resilient, report.baseline):
        rows.append(
            [
                f"{res.drop_probability:.2f}",
                f"{100 * res.availability:.1f}%",
                f"{100 * base.availability:.1f}%",
                str(res.retries),
                str(res.failovers),
                str(res.quarantines),
                f"{res.backoff_seconds:.2f} s",
                str(res.unverified_bytes + base.unverified_bytes),
            ]
        )
    table = render_table(
        [
            "drop rate",
            "resilient",
            "baseline",
            "retries",
            "failovers",
            "quarantines",
            "backoff",
            "unverified bytes",
        ],
        rows,
    )
    header = (
        f"Chaos sweep — {report.replicas} replicas, primary crashed mid-run, "
        f"corrupt rate {report.resilient[0].corrupt_probability:.2f}"
        if report.resilient
        else "Chaos sweep"
    )
    return f"{header}\n{table}"


def write_report(report: ChaosReport, path: pathlib.Path) -> None:
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")


def check_report(report: ChaosReport) -> List[str]:
    """CI-gate violations (empty = pass).

    * zero unverified bytes anywhere (the invariant);
    * resilient availability ≥ 99 % at drop ≤ 0.2;
    * resilient beats baseline in aggregate (the layer does the work).
    """
    problems: List[str] = []
    for point in report.resilient + report.baseline:
        if point.unverified_bytes:
            problems.append(
                f"unverified bytes served at drop={point.drop_probability}"
            )
    for point in report.resilient:
        if point.drop_probability <= 0.2 and point.availability < 0.99:
            problems.append(
                f"resilient availability {point.availability:.3f} < 0.99 "
                f"at drop={point.drop_probability}"
            )
    total_res = sum(p.ok for p in report.resilient)
    total_base = sum(p.ok for p in report.baseline)
    if total_res <= total_base:
        problems.append(
            f"resilience layer earned nothing: {total_res} ok vs baseline {total_base}"
        )
    return problems
