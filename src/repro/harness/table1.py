"""Table 1: the experimental setting.

The paper's table lists each host's architecture, RAM, OS and Java
version; our reproduction adds the two calibration columns the
simulation substitutes for real hardware (CPU factor and memory
pressure — see DESIGN.md §2).
"""

from __future__ import annotations

from typing import List

from repro.net.topology import TABLE1_HOSTS

__all__ = ["table1_rows", "TABLE1_COLUMNS"]

TABLE1_COLUMNS = (
    "Host",
    "Location",
    "Architecture",
    "RAM",
    "OS",
    "CPU factor",
    "Mem pressure",
)


def table1_rows() -> List[List[str]]:
    """Table 1 as printable rows."""
    location_of = {
        "VU": "VU, Amsterdam",
        "INRIA": "Inria, Paris",
        "Cornell": "Cornell, Ithaca NY",
    }
    rows = []
    for profile in TABLE1_HOSTS:
        rows.append(
            [
                profile.name,
                location_of.get(profile.site, profile.site),
                profile.arch,
                f"{profile.ram_mb} MB" if profile.ram_mb < 1024 else f"{profile.ram_mb // 1024} GB",
                profile.os,
                f"{profile.cpu_factor:g}x",
                f"{profile.memory_pressure:g}x",
            ]
        )
    return rows
