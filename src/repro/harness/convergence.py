"""Convergence bench: N partitioned writers, one byte-identical document.

The multi-writer gate for CI (``python -m repro.harness convergence
[--quick]``), in four scenarios:

* **Partitioned convergence** — N granted writers update the same
  object against two object servers that cannot see each other; after
  the partition heals (one anti-entropy round), both servers and an
  independent verified reader must hold *byte-identical* merged
  documents, proven by comparing state digests.
* **Merge cost** — wall-clock latency of the deterministic merge over
  the full delta set, p50/p99 across repeated runs.
* **Adversarial matrix** — every multi-writer tamper mode (forged
  delta, unauthorized writer, revoked writer, withheld branch, replayed
  delta) rejected with its exact ``SecurityError`` subclass, zero
  attacker bytes served or cached (reuses
  :mod:`repro.attacks.scenarios`).
* **Crash recovery** — an object server killed mid-stream recovers its
  delta DAG from the durable journal with every signature re-verified;
  a CRC-valid rewrite of a stored delta aborts recovery with
  :class:`~repro.errors.RecoveryIntegrityError` (fail closed).

Writes ``BENCH_convergence.json``; ``check_report`` returns the gate
violations (empty = pass).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import shutil
import tempfile
import time
import zlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.crypto.keys import KeyPair
from repro.errors import RecoveryIntegrityError
from repro.globedoc.oid import ObjectId
from repro.net.rpc import RpcClient
from repro.net.transport import LoopbackTransport
from repro.proxy.checks import SecurityChecker
from repro.server.objectserver import ObjectServer
from repro.sim.clock import SimClock
from repro.storage.wal import FRAME_HEADER
from repro.util.encoding import canonical_bytes, from_canonical_bytes
from repro.util.stats import percentile
from repro.versioning import (
    DeltaDag,
    DocumentWriter,
    SignedDelta,
    WriterGrant,
    merge_deltas,
)
from repro.versioning.client import VersionedReader

__all__ = [
    "PartitionedConvergence",
    "MergeCost",
    "RecoveryGate",
    "ConvergenceReport",
    "run_convergence",
    "render_convergence",
    "write_report",
    "check_report",
    "REPORT_NAME",
]

REPORT_NAME = "BENCH_convergence.json"

SERVER_HOSTS = ("ginger.cs.vu.nl", "canardo.inria.fr")


@dataclass
class PartitionedConvergence:
    """Partition, write, heal, compare digests everywhere."""

    writers: int = 0
    rounds: int = 0
    deltas: int = 0
    gossip_pulled: int = 0
    gossip_pushed: int = 0
    server_digests: Dict[str, str] = field(default_factory=dict)
    reader_digests: Dict[str, str] = field(default_factory=dict)
    byte_identical: bool = False
    elements: int = 0


@dataclass
class MergeCost:
    """Deterministic merge latency over the full delta set."""

    deltas: int = 0
    samples: int = 0
    p50_us: float = 0.0
    p99_us: float = 0.0


@dataclass
class RecoveryGate:
    """Durable delta DAG across a crash; tampered bytes never serve."""

    deltas_published: int = 0
    recovered_deltas: int = 0
    reverified_deltas: int = 0
    recovered_grants: int = 0
    digest_intact: bool = False
    frontier_cert_recovered: bool = False
    tamper_failed_closed: bool = False
    tamper_error: str = ""


@dataclass
class ConvergenceReport:
    """Everything the CI gate and the bench-report digest consume."""

    seed: int
    quick: bool
    partitioned: PartitionedConvergence = field(
        default_factory=PartitionedConvergence
    )
    merge: MergeCost = field(default_factory=MergeCost)
    adversarial: List[dict] = field(default_factory=list)
    recovery: RecoveryGate = field(default_factory=RecoveryGate)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "partitioned_convergence": asdict(self.partitioned),
            "merge_cost": asdict(self.merge),
            "adversarial": list(self.adversarial),
            "recovery": asdict(self.recovery),
        }


# ----------------------------------------------------------------------
# World construction
# ----------------------------------------------------------------------


def _keys() -> KeyPair:
    # RSA-1024 keeps the bench fast; the gates exercise logic, not RSA.
    return KeyPair.generate(1024)


class _Universe:
    """Two object servers on one loopback wire, plus the owner."""

    def __init__(self, data_dirs=(None, None), clock=None):
        self.clock = clock if clock is not None else SimClock()
        if self.clock.now() == 0.0:
            self.clock.advance(100.0)
        self.transport = LoopbackTransport()
        self.rpc = RpcClient(self.transport)
        self.servers = []
        for host, data_dir in zip(SERVER_HOSTS, data_dirs):
            server = ObjectServer(
                host=host,
                site="root/site/" + host.split(".")[0],
                clock=self.clock,
                data_dir=data_dir,
                storage_sync=False,
            )
            self.transport.register(server.endpoint, server.rpc_server().handle_frame)
            self.servers.append(server)
        self.owner_keys = _keys()
        self.oid = ObjectId.from_public_key(self.owner_keys.public)

    def grant_writers(self, count: int):
        """Register the object and grant *count* writers on every server."""
        writers = {}
        for index in range(count):
            writer_id = f"writer{index:02d}"
            keys = _keys()
            grant = WriterGrant.issue(
                self.owner_keys, self.oid, writer_id, keys.public,
                granted_at=self.clock.now(),
            )
            for server in self.servers:
                server.versioning.register_object(self.owner_keys.public)
                server.versioning.put_grant(self.oid.hex, grant)
            writers[writer_id] = DocumentWriter(keys, writer_id, self.oid, self.clock)
        return writers

    def reader(self) -> VersionedReader:
        checker = SecurityChecker(self.clock)
        return VersionedReader(self.rpc, checker)

    def close(self) -> None:
        for server in self.servers:
            server.close()


# ----------------------------------------------------------------------
# Scenario 1 + 2: partitioned convergence and merge cost
# ----------------------------------------------------------------------


def _run_partitioned(quick: bool, seed: int):
    writer_count = 3 if quick else 5
    rounds = 2 if quick else 4
    rng = random.Random(seed)
    universe = _Universe()
    writers = universe.grant_writers(writer_count)

    # Partition: each writer publishes only to its home server and sees
    # only that server's branch; the two halves diverge causally.
    views = {}
    homes = {}
    for index, (writer_id, writer) in enumerate(sorted(writers.items())):
        homes[writer_id] = universe.servers[index % len(universe.servers)]
        views[writer_id] = DeltaDag()
    deltas = 0
    for round_index in range(rounds):
        for writer_id, writer in sorted(writers.items()):
            home = homes[writer_id]
            # Sync the writer's view with its home server's branch.
            bundle = home.versioning.fetch(
                universe.oid.hex, have_ids=views[writer_id].delta_ids
            )
            views[writer_id].add_all(
                SignedDelta.from_dict(d) for d in bundle["deltas"]
            )
            content = bytes(
                f"round {round_index} by {writer_id}: {rng.random():.12f}",
                "ascii",
            )
            delta = writer.put(
                views[writer_id], f"element-{rng.randrange(writer_count)}", content
            )
            home.versioning.put_delta(universe.oid.hex, delta)
            deltas += 1
            universe.clock.advance(0.25)

    # Heal: one pull+push anti-entropy round equalises the two DAGs.
    gossip = universe.servers[0].gossip_versioned(
        universe.rpc, universe.servers[1].endpoint, universe.oid.hex
    )

    result = PartitionedConvergence(
        writers=writer_count, rounds=rounds, deltas=deltas,
        gossip_pulled=gossip["pulled"], gossip_pushed=gossip["pushed"],
    )
    all_deltas = None
    for server in universe.servers:
        served = [
            SignedDelta.from_dict(d)
            for d in server.versioning.fetch(universe.oid.hex)["deltas"]
        ]
        merged = merge_deltas(served, oid_hex=universe.oid.hex)
        result.server_digests[server.host] = merged.digest_hex
        result.elements = len(merged.elements)
        all_deltas = served
    for server in universe.servers:
        # Independent verified readers, one per replica: the digest each
        # one *proves* must match, not just the servers' own claims.
        access = universe.reader().read(server.endpoint, universe.oid)
        result.reader_digests[server.host] = access.merged.digest_hex
    digests = set(result.server_digests.values()) | set(result.reader_digests.values())
    result.byte_identical = len(digests) == 1
    universe.close()
    return result, all_deltas


def _run_merge_cost(quick: bool, deltas: List[SignedDelta]) -> MergeCost:
    samples = 20 if quick else 100
    times = []
    for _ in range(samples):
        start = time.perf_counter()
        merge_deltas(deltas)
        times.append((time.perf_counter() - start) * 1e6)
    return MergeCost(
        deltas=len(deltas),
        samples=samples,
        p50_us=percentile(times, 50.0),
        p99_us=percentile(times, 99.0),
    )


# ----------------------------------------------------------------------
# Scenario 4: crash recovery + tamper fail-closed
# ----------------------------------------------------------------------


def _deface_delta_records(wal_path: str) -> int:
    """CRC-valid rewrite of stored delta content (the attacker's edit)."""
    with open(wal_path, "rb") as fh:
        data = fh.read()
    out = bytearray()
    offset = 0
    defaced = 0

    def deface(obj):
        nonlocal defaced
        if isinstance(obj, dict):
            for key, value in obj.items():
                if key == "content" and isinstance(value, (bytes, bytearray)) and value:
                    obj[key] = b"\x00defaced\x00" + bytes(value)[10:]
                    defaced += 1
                else:
                    deface(value)
        elif isinstance(obj, list):
            for value in obj:
                deface(value)

    while offset < len(data):
        length, _ = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        record = from_canonical_bytes(data[start:start + length])
        inner = record.get("__record__") if isinstance(record, dict) else None
        if isinstance(inner, dict) and inner.get("op") == "delta":
            deface(inner)
        payload = canonical_bytes(record)
        out += FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        out += payload
        offset = start + length
    with open(wal_path, "wb") as fh:
        fh.write(bytes(out))
    return defaced


def _run_recovery_gate(quick: bool, seed: int, scratch: str) -> RecoveryGate:
    result = RecoveryGate()
    data_dir = os.path.join(scratch, "primary")
    clock = SimClock()
    clock.advance(100.0)
    universe = _Universe(data_dirs=(data_dir, None), clock=clock)
    writers = universe.grant_writers(3 if quick else 5)
    view = DeltaDag()
    durable = universe.servers[0]
    for index, (writer_id, writer) in enumerate(sorted(writers.items())):
        delta = writer.put(view, "body", bytes(f"write {index}", "ascii"))
        durable.versioning.put_delta(universe.oid.hex, delta)
        result.deltas_published += 1
    merged = merge_deltas(view.deltas, oid_hex=universe.oid.hex)
    first_writer = writers[sorted(writers)[0]]
    durable.versioning.put_frontier_cert(
        universe.oid.hex, first_writer.certify_frontier(merged)
    )
    expected_digest = merged.digest_hex
    universe.close()

    # Crash/restart over the same directory: the DAG must come back with
    # every delta signature re-verified, and merge to the same bytes.
    revived = ObjectServer(
        host=SERVER_HOSTS[0], site="root/site/ginger", clock=clock,
        data_dir=data_dir, storage_sync=False,
    )
    result.recovered_deltas = revived.versioning.recovered_deltas
    result.reverified_deltas = revived.versioning.reverified_deltas
    result.recovered_grants = revived.versioning.recovered_grants
    bundle = revived.versioning.fetch(universe.oid.hex)
    recovered_merge = merge_deltas(
        [SignedDelta.from_dict(d) for d in bundle["deltas"]],
        oid_hex=universe.oid.hex,
    )
    result.digest_intact = recovered_merge.digest_hex == expected_digest
    result.frontier_cert_recovered = bundle["frontier_cert"] is not None
    revived.close()

    # Tamper at rest (CRC recomputed, so checksums cannot see it): the
    # next recovery must abort, never serve.
    defaced = _deface_delta_records(
        os.path.join(data_dir, "versioning", "wal.log")
    )
    if defaced:
        try:
            tampered = ObjectServer(
                host=SERVER_HOSTS[0], site="root/site/ginger", clock=clock,
                data_dir=data_dir, storage_sync=False,
            )
            tampered.close()  # recovery was (wrongly) accepted
        except RecoveryIntegrityError as exc:
            result.tamper_failed_closed = True
            result.tamper_error = type(exc).__name__
    return result


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def run_convergence(quick: bool = False, seed: int = 0) -> ConvergenceReport:
    from repro.attacks.scenarios import run_versioning_matrix

    report = ConvergenceReport(seed=seed, quick=quick)
    scratch = tempfile.mkdtemp(prefix="repro-convergence-")
    try:
        report.partitioned, all_deltas = _run_partitioned(quick, seed)
        report.merge = _run_merge_cost(quick, all_deltas or [])
        report.adversarial = run_versioning_matrix(key_factory=_keys)
        report.recovery = _run_recovery_gate(quick, seed, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return report


def render_convergence(report: ConvergenceReport) -> str:
    from repro.harness.report import render_table

    part = report.partitioned
    merge = report.merge
    recovery = report.recovery
    adversarial_ok = bool(report.adversarial) and all(
        verdict["ok"] for verdict in report.adversarial
    )
    rejected = ", ".join(
        f"{verdict['scenario']}:{verdict['failure_type'] or 'MISSED'}"
        for verdict in report.adversarial
    )
    rows = [
        [
            "partitioned convergence",
            f"{part.writers} writers x {part.rounds} rounds = {part.deltas} deltas, "
            f"gossip {part.gossip_pulled}p/{part.gossip_pushed}q, "
            f"{part.elements} elements, "
            + ("byte-identical" if part.byte_identical else "DIVERGED"),
            "PASS" if part.byte_identical else "FAIL",
        ],
        [
            "merge cost",
            f"{merge.deltas} deltas: p50 {merge.p50_us:.0f} us, "
            f"p99 {merge.p99_us:.0f} us over {merge.samples} runs",
            "PASS" if merge.samples > 0 else "FAIL",
        ],
        [
            "adversarial matrix",
            rejected or "no verdicts",
            "PASS" if adversarial_ok else "FAIL",
        ],
        [
            "crash recovery",
            f"{recovery.recovered_deltas}/{recovery.deltas_published} deltas "
            f"({recovery.reverified_deltas} re-verified), "
            f"tamper: {recovery.tamper_error or 'NOT REJECTED'}",
            "PASS"
            if recovery.digest_intact and recovery.tamper_failed_closed
            else "FAIL",
        ],
    ]
    lines = [
        f"Convergence bench — seed {report.seed}"
        + (" (quick)" if report.quick else ""),
        render_table(["scenario", "outcome", "gate"], rows),
    ]
    return "\n".join(lines)


def write_report(report: ConvergenceReport, path: pathlib.Path) -> None:
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")


def check_report(report: ConvergenceReport) -> List[str]:
    """CI-gate violations (empty = pass)."""
    problems: List[str] = []
    part = report.partitioned
    if not part.byte_identical:
        problems.append(
            "replicas/readers diverged after healing: "
            f"servers {part.server_digests}, readers {part.reader_digests}"
        )
    if part.deltas < part.writers:
        problems.append("fewer deltas published than writers — bench under-ran")
    if part.gossip_pulled + part.gossip_pushed == 0:
        problems.append("partition never exchanged deltas — gossip did not run")

    if report.merge.samples <= 0:
        problems.append("merge cost was never sampled")

    if not report.adversarial:
        problems.append("adversarial matrix did not run")
    for verdict in report.adversarial:
        if verdict.get("unverified_bytes_leaked"):
            problems.append(
                f"scenario {verdict['scenario']}: attacker bytes reached the "
                "caller or the cache"
            )
        if not verdict.get("ok"):
            problems.append(
                f"scenario {verdict['scenario']}: expected "
                f"{verdict['expected_error']}, got "
                f"{verdict['failure_type'] or 'no rejection'}"
            )

    recovery = report.recovery
    if recovery.recovered_deltas != recovery.deltas_published:
        problems.append(
            f"recovery lost deltas: {recovery.recovered_deltas}/"
            f"{recovery.deltas_published}"
        )
    if recovery.reverified_deltas != recovery.recovered_deltas:
        problems.append("recovered deltas were not all re-verified")
    if not recovery.digest_intact:
        problems.append("recovered DAG merges to different bytes than before crash")
    if not recovery.frontier_cert_recovered:
        problems.append("frontier certificate did not survive the restart")
    if not recovery.tamper_failed_closed:
        problems.append(
            "tampered (CRC-valid) delta store was accepted — recovery served "
            "unproven bytes"
        )
    return problems
