"""Benchmarked security pipeline: baseline vs verification fast path.

Two layers of measurement, both in real (wall-clock) microseconds:

* **micro** — the individual primitives the fast path memoizes: the RSA
  signature check, the canonical encoding of a certificate-sized
  payload, the per-element content hash, and the full parse+verify round
  trip of an integrity certificate as a client sees it arrive off the
  wire.
* **pipeline** — the end-to-end §4 flow on the simulated testbed: a
  document published on the Amsterdam primary, accessed repeatedly from
  Paris with binding caching off (every access re-fetches and re-checks
  the integrity certificate — the paper's worst case). The *baseline*
  run disables every fast-path layer (no :class:`VerificationCache`,
  envelope intern pool cleared before each access) so it measures the
  pre-fast-path code path; the *fastpath* run shares one cache across
  accesses, so access 0 pays in full and the rest replay memoized
  verdicts.

The headline criterion — asserted by the CI smoke test — is that a warm
certificate verification is at least :data:`WARM_SPEEDUP_TARGET` times
faster than a cold one, and that the fast-path run is never slower than
the baseline overall.

Simulated-WAN cost model note: ``SimHost.compute`` charges *measured*
real elapsed time (scaled by the host's CPU factor), so a cache hit
automatically charges near-zero simulated CPU — no special-casing in
the cost model, the fast path is cheap in the simulation exactly
because it is cheap for real.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.crypto.hashes import SHA1
from repro.crypto.keys import KeyPair
from repro.crypto.signing import SignedEnvelope
from repro.crypto.verifycache import VerificationCache
from repro.errors import ReproError
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.globedoc.oid import ObjectId
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.proxy.metrics import AccessTimer
from repro.proxy.pipeline import PipelineConfig
from repro.sim.random import make_rng
from repro.util.encoding import canonical_bytes
from repro.util.sizes import KB
from repro.util.stats import summarize
from repro.workloads.generator import make_content

__all__ = [
    "run_security_bench",
    "run_concurrency_bench",
    "run_conformance_bench",
    "evaluate_criteria",
    "check_report",
    "write_report",
    "WARM_SPEEDUP_TARGET",
    "CONCURRENCY_TARGET",
    "REPORT_NAME",
]

#: Acceptance threshold: warm certificate verification must beat cold
#: by at least this factor.
WARM_SPEEDUP_TARGET = 5.0

#: Acceptance threshold: the concurrent pipeline must deliver at least
#: this many times the sequential path's accesses/second.
CONCURRENCY_TARGET = 2.0

#: Default report file name (written at the repository root by the CLI).
REPORT_NAME = "BENCH_security_pipeline.json"

#: Paper-era client host for the pipeline scenario (Paris).
PIPELINE_CLIENT = "canardo.inria.fr"


def _best_of(fn: Callable[[], None], inner: int, rounds: int = 5) -> float:
    """Best mean-per-call over *rounds* batches of *inner* calls, in µs."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best * 1e6


# ----------------------------------------------------------------------
# Micro benchmarks
# ----------------------------------------------------------------------


def run_micro_benches(quick: bool = False) -> Dict[str, float]:
    """Primitive costs, cold vs memoized (real microseconds)."""
    inner = 30 if quick else 200
    keys = KeyPair.generate()
    oid = ObjectId.from_public_key(keys.public)
    elements = [
        PageElement(f"img/i{i}.png", make_content(10 * KB, make_rng(i)))
        for i in range(10)
    ] + [PageElement("story.txt", make_content(5 * KB, make_rng(99)))]
    cert = IntegrityCertificate.for_elements(keys, oid.hex, elements, expires_at=1e12)
    envelope = cert.certificate.envelope
    wire = envelope.to_dict()
    payload = dict(envelope.payload)
    data = canonical_bytes(payload)
    signature = envelope.signature

    # RSA verify: the raw operation vs a VerificationCache hit.
    rsa_cold_us = _best_of(
        lambda: keys.public.verify(signature, data, suite=SHA1), inner
    )
    vcache = VerificationCache()
    vcache.verify(keys.public, signature, data, SHA1)
    rsa_cached_us = _best_of(
        lambda: vcache.verify(keys.public, signature, data, SHA1), inner
    )

    # Canonical encoding: fresh serialization vs the wire_size memo.
    encode_cold_us = _best_of(lambda: canonical_bytes(payload), inner)
    _ = envelope.wire_size
    encode_memo_us = _best_of(lambda: envelope.wire_size, inner)

    # Element content hash: fresh instance vs the per-instance memo.
    content = elements[0].content
    hash_cold_us = _best_of(
        lambda: PageElement("x", content).content_hash(SHA1), inner
    )
    memo_element = PageElement("x", content)
    memo_element.content_hash(SHA1)
    hash_memo_us = _best_of(lambda: memo_element.content_hash(SHA1), inner)

    # Full client-side round trip: parse the wire dict, verify the
    # signature — cold (intern pool cleared, no cache) vs warm.
    def roundtrip_cold() -> None:
        SignedEnvelope.clear_intern_pool()
        SignedEnvelope.from_dict(wire).verify(keys.public)

    roundtrip_cold_us = _best_of(roundtrip_cold, inner)
    warm_cache = VerificationCache()
    SignedEnvelope.clear_intern_pool()
    SignedEnvelope.from_dict(wire).verify(keys.public, cache=warm_cache)

    def roundtrip_warm() -> None:
        SignedEnvelope.from_dict(wire).verify(keys.public, cache=warm_cache)

    roundtrip_warm_us = _best_of(roundtrip_warm, inner)
    SignedEnvelope.clear_intern_pool()

    return {
        "rsa_verify_cold_us": rsa_cold_us,
        "rsa_verify_cached_us": rsa_cached_us,
        "rsa_cached_speedup": rsa_cold_us / rsa_cached_us,
        "canonical_encode_us": encode_cold_us,
        "wire_size_memo_us": encode_memo_us,
        "encode_memo_speedup": encode_cold_us / encode_memo_us,
        "element_hash_cold_us": hash_cold_us,
        "element_hash_memo_us": hash_memo_us,
        "cert_roundtrip_cold_us": roundtrip_cold_us,
        "cert_roundtrip_warm_us": roundtrip_warm_us,
        "cert_warm_speedup": roundtrip_cold_us / roundtrip_warm_us,
    }


# ----------------------------------------------------------------------
# Pipeline benchmark (simulated testbed, §4 flow)
# ----------------------------------------------------------------------


def _publish_bench_object(testbed: Testbed, seed: int = 0):
    owner = DocumentOwner("vu.nl/bench", keys=KeyPair.generate(), clock=testbed.clock)
    owner.put_element(PageElement("image.png", make_content(10 * KB, make_rng(seed))))
    return testbed.publish(owner, validity=7 * 24 * 3600.0)


def _run_accesses(
    testbed: Testbed,
    url: str,
    accesses: int,
    verification_cache: Optional[VerificationCache],
    clear_intern_per_access: bool,
) -> List[Dict[str, float]]:
    """One client stack, *accesses* sequential fetches, per-access rows."""
    stack = testbed.client_stack(
        PIPELINE_CLIENT,
        cache_binding=False,
        verification_cache=verification_cache,
    )
    rows: List[Dict[str, float]] = []
    for _ in range(accesses):
        if clear_intern_per_access:
            SignedEnvelope.clear_intern_pool()
        timer = AccessTimer(testbed.clock)
        timer.charge("client_processing", testbed.charge_client_overhead())
        response = stack.proxy.handle(url, timer=timer)
        if not response.ok:
            raise ReproError(
                f"bench access failed: {response.status} {response.security_failure}"
            )
        metrics = response.metrics
        assert metrics is not None
        fastpath = metrics.fastpath
        rows.append(
            {
                "total_ms": metrics.total * 1e3,
                "security_ms": metrics.security_time * 1e3,
                "verify_certificate_ms": metrics.phase_time("verify_certificate") * 1e3,
                "verify_public_key_ms": metrics.phase_time("verify_public_key") * 1e3,
                "verify_hits": float(fastpath.verify_hits) if fastpath else 0.0,
                "verify_misses": float(fastpath.verify_misses) if fastpath else 0.0,
                "encode_hits": float(fastpath.encode_hits) if fastpath else 0.0,
                "saved_us": fastpath.saved_us if fastpath else 0.0,
            }
        )
    return rows


def _summarize_run(rows: List[Dict[str, float]]) -> Dict[str, float]:
    def mean(field: str) -> float:
        return summarize([row[field] for row in rows]).mean

    return {
        "accesses": len(rows),
        "total_ms_mean": mean("total_ms"),
        "security_ms_mean": mean("security_ms"),
        "verify_certificate_ms_mean": mean("verify_certificate_ms"),
        "verify_public_key_ms_mean": mean("verify_public_key_ms"),
        "verify_hits": sum(row["verify_hits"] for row in rows),
        "verify_misses": sum(row["verify_misses"] for row in rows),
        "encode_hits": sum(row["encode_hits"] for row in rows),
        "saved_us": sum(row["saved_us"] for row in rows),
    }


def run_pipeline_bench(quick: bool = False, seed: int = 0) -> Dict[str, object]:
    """Baseline vs fast-path accesses on the simulated testbed.

    Times reported are simulated milliseconds: WAN transfer plus the
    client's CPU charges (real measured compute scaled by the Table-1
    CPU factor), exactly what the figure experiments measure.
    """
    accesses = 10 if quick else 25

    # Baseline: the pre-fast-path code path. No verification cache, and
    # the envelope intern pool is cleared before every access so each
    # access re-parses and re-encodes from scratch.
    testbed = Testbed()
    obj = _publish_bench_object(testbed, seed=seed)
    url = obj.url("image.png")
    SignedEnvelope.clear_intern_pool()
    baseline_rows = _run_accesses(
        testbed, url, accesses, verification_cache=None, clear_intern_per_access=True
    )

    # Fast path: one shared VerificationCache; the intern pool persists,
    # so access 0 is the cold miss and the rest run warm.
    testbed = Testbed()
    obj = _publish_bench_object(testbed, seed=seed)
    url = obj.url("image.png")
    SignedEnvelope.clear_intern_pool()
    fastpath_rows = _run_accesses(
        testbed,
        url,
        accesses,
        verification_cache=VerificationCache(),
        clear_intern_per_access=False,
    )
    SignedEnvelope.clear_intern_pool()

    baseline = _summarize_run(baseline_rows)
    fastpath = _summarize_run(fastpath_rows)

    # Warm comparison: every baseline access pays the cold cost; the
    # fast path's warm accesses are rows 1..N. Each phase time is a
    # *single* measured execution, so Python timing jitter (tens of µs,
    # comparable to the whole warm fast path) dominates individual warm
    # samples; the minimum over the warm accesses is the standard robust
    # estimator of the steady-state warm cost, and is what the speedup
    # criterion uses. The mean is reported alongside for context.
    cold_verify_ms = summarize(
        [row["verify_certificate_ms"] for row in baseline_rows]
    ).mean
    warm_samples = [row["verify_certificate_ms"] for row in fastpath_rows[1:]]
    warm_verify_ms = min(warm_samples)
    warm_verify_mean_ms = summarize(warm_samples).mean
    return {
        "client": PIPELINE_CLIENT,
        "element_bytes": 10 * KB,
        "accesses": accesses,
        "baseline": baseline,
        "fastpath": fastpath,
        "warm": {
            "cold_verify_certificate_ms": cold_verify_ms,
            "warm_verify_certificate_ms": warm_verify_ms,
            "warm_verify_certificate_mean_ms": warm_verify_mean_ms,
            "speedup": cold_verify_ms / warm_verify_ms if warm_verify_ms else float("inf"),
        },
    }


# ----------------------------------------------------------------------
# Concurrency benchmark (pipelined vs sequential batch, simulated time)
# ----------------------------------------------------------------------

#: Batch shape for the concurrency section: a site of this many
#: documents, each with this many page elements of this size, plus
#: duplicate requests for the hottest element of every document.
CONCURRENCY_OBJECTS = 3
CONCURRENCY_ELEMENTS = 6
CONCURRENCY_ELEMENT_BYTES = 8 * KB
CONCURRENCY_HOT_DUPLICATES = 3


def _publish_concurrency_site(testbed: Testbed, seed: int):
    """*CONCURRENCY_OBJECTS* documents; returns (urls, expected bytes)."""
    urls: List[str] = []
    expected: List[bytes] = []
    hot: List[tuple] = []
    for i in range(CONCURRENCY_OBJECTS):
        owner = DocumentOwner(
            f"vu.nl/conc{i}", keys=KeyPair.generate(), clock=testbed.clock
        )
        contents = {}
        for j in range(CONCURRENCY_ELEMENTS):
            content = make_content(
                CONCURRENCY_ELEMENT_BYTES, make_rng(seed * 1009 + i * 101 + j)
            )
            contents[f"e{j}.html"] = content
            owner.put_element(PageElement(f"e{j}.html", content))
        published = testbed.publish(owner, validity=7 * 24 * 3600.0)
        for name, content in contents.items():
            urls.append(published.url(name))
            expected.append(content)
        hot.append((published.url("e0.html"), contents["e0.html"]))
    # The hot tail: the same first element of every document requested
    # again in the same batch — the coalescing path's workload.
    for url, content in hot[:CONCURRENCY_HOT_DUPLICATES]:
        urls.append(url)
        expected.append(content)
    return urls, expected


def _run_concurrency_mode(
    pipelined: bool, waves: int, seed: int
) -> Dict[str, object]:
    """One mode, *waves* batches; sessions dropped between waves so
    every wave pays establishment (the steady-state browse pattern of a
    proxy whose sessions age out)."""
    testbed = Testbed()
    urls, expected = _publish_concurrency_site(testbed, seed)
    stack = testbed.client_stack(
        PIPELINE_CLIENT,
        verification_cache=VerificationCache(),
        pipeline=PipelineConfig() if pipelined else None,
    )
    accesses = 0
    unverified = 0
    failures = 0
    start = testbed.clock.now()
    for _ in range(waves):
        responses = stack.proxy.handle_many(urls)
        for response, want in zip(responses, expected):
            accesses += 1
            if not response.ok:
                failures += 1
            elif response.content != want:
                # A 200 with wrong bytes = unverified data delivered.
                unverified += 1
        stack.proxy.drop_all_sessions()
    elapsed = testbed.clock.now() - start
    result: Dict[str, object] = {
        "pipelined": pipelined,
        "waves": waves,
        "accesses": accesses,
        "elapsed_s": elapsed,
        "accesses_per_s": accesses / elapsed if elapsed else float("inf"),
        "failures": failures,
        "unverified_responses": unverified,
    }
    if pipelined and stack.scheduler is not None:
        counters = stack.scheduler.counters
        result["counters"] = {
            "prefetched": counters.prefetched,
            "prefetch_hits": counters.prefetch_hits,
            "prefetch_misses": counters.prefetch_misses,
            "coalesced_calls": counters.coalesced_calls,
            "coalesced_responses": counters.coalesced_responses,
            "speculations": counters.speculations,
            "mispredictions": counters.mispredictions,
            "waves": counters.waves,
        }
        requests = accesses
        result["coalesce_ratio"] = (
            (counters.coalesced_responses + counters.coalesced_calls) / requests
            if requests
            else 0.0
        )
    return result


def run_concurrency_bench(quick: bool = False, seed: int = 0) -> Dict[str, object]:
    """Sequential loop vs concurrent pipeline over the same batch.

    Both modes run the identical stack configuration (shared
    :class:`VerificationCache`, default content cache, retry layer) on
    identical content; the only variable is the
    :class:`~repro.proxy.pipeline.AccessScheduler`. Times are simulated
    seconds, so the comparison is deterministic: the pipeline wins by
    overlapping WAN round trips (max-of-parallel), not by CPU luck.
    """
    waves = 2 if quick else 4
    sequential = _run_concurrency_mode(pipelined=False, waves=waves, seed=seed)
    pipelined = _run_concurrency_mode(pipelined=True, waves=waves, seed=seed)
    seq_rate = sequential["accesses_per_s"]
    pipe_rate = pipelined["accesses_per_s"]
    return {
        "objects": CONCURRENCY_OBJECTS,
        "elements_per_object": CONCURRENCY_ELEMENTS,
        "element_bytes": CONCURRENCY_ELEMENT_BYTES,
        "hot_duplicates": CONCURRENCY_HOT_DUPLICATES,
        "client": PIPELINE_CLIENT,
        "sequential": sequential,
        "pipelined": pipelined,
        "throughput_multiple": pipe_rate / seq_rate if seq_rate else float("inf"),
        "unverified_responses": (
            sequential["unverified_responses"] + pipelined["unverified_responses"]
        ),
        "failures": sequential["failures"] + pipelined["failures"],
    }


# ----------------------------------------------------------------------
# Conformance matrix (every tamper mode, both pipeline modes)
# ----------------------------------------------------------------------


def run_conformance_bench(quick: bool = False) -> Dict[str, object]:
    """The full adversarial matrix, pipeline disabled *and* enabled.

    Every scenario × {cold, warm} must be rejected by the exact expected
    :class:`~repro.errors.SecurityError` subclass with zero attacker
    bytes delivered — in both modes. The scenarios are the same objects
    the integration tests parametrize over, so a green bench is the same
    statement as a green test matrix.
    """
    from repro.attacks.scenarios import run_matrix

    # A small cycled key pool keeps the sweep fast while guaranteeing
    # the impostor scenarios draw a key distinct from the victim's.
    pool = [KeyPair.generate(1024) for _ in range(4)]
    state = {"next": 0}

    def key_factory() -> KeyPair:
        keys = pool[state["next"] % len(pool)]
        state["next"] += 1
        return keys

    modes: Dict[str, object] = {}
    for label, pipeline in (("sequential", None), ("pipelined", PipelineConfig())):
        cells = run_matrix(key_factory=key_factory, pipeline=pipeline)
        modes[label] = {
            "cells": len(cells),
            "passed": sum(1 for cell in cells if cell["ok"]),
            "unverified_bytes_leaked": sum(
                1 for cell in cells if cell["unverified_bytes_leaked"]
            ),
            "failing": [
                {
                    "scenario": cell["scenario"],
                    "warm": cell["warm"],
                    "expected_error": cell["expected_error"],
                    "failure_type": cell["failure_type"],
                }
                for cell in cells
                if not cell["ok"]
            ],
        }
    return modes


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def evaluate_criteria(
    pipeline: Dict[str, object],
    concurrency: Optional[Dict[str, object]] = None,
    conformance: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The pass/fail gate over one bench run's results.

    Pure so the gate logic is unit-testable without running the bench:
    warm certificate verification must beat cold by
    :data:`WARM_SPEEDUP_TARGET`, the fast-path run must not be slower
    than the baseline overall, the concurrent pipeline must deliver at
    least :data:`CONCURRENCY_TARGET` times the sequential throughput
    with zero unverified bytes, and the adversarial matrix must be
    green in both pipeline modes.
    """
    warm_speedup = pipeline["warm"]["speedup"]  # type: ignore[index]
    fastpath_total = pipeline["fastpath"]["total_ms_mean"]  # type: ignore[index]
    baseline_total = pipeline["baseline"]["total_ms_mean"]  # type: ignore[index]
    criteria: Dict[str, object] = {
        "warm_speedup": warm_speedup,
        "warm_speedup_target": WARM_SPEEDUP_TARGET,
        "warm_speedup_ok": warm_speedup >= WARM_SPEEDUP_TARGET,
        "fastpath_total_ms": fastpath_total,
        "baseline_total_ms": baseline_total,
        "fastpath_not_slower": fastpath_total <= baseline_total,
    }
    if concurrency is not None:
        multiple = concurrency["throughput_multiple"]
        criteria.update(
            {
                "concurrency_multiple": multiple,
                "concurrency_target": CONCURRENCY_TARGET,
                "concurrency_multiple_ok": multiple >= CONCURRENCY_TARGET,
                "zero_unverified_bytes": (
                    concurrency["unverified_responses"] == 0
                    and concurrency["failures"] == 0
                ),
            }
        )
    if conformance is not None:
        for label in ("sequential", "pipelined"):
            mode = conformance[label]
            criteria[f"conformance_{label}_ok"] = (
                mode["passed"] == mode["cells"]
                and mode["unverified_bytes_leaked"] == 0
            )
    return criteria


def check_report(report: Dict[str, object]) -> List[str]:
    """Every failed gate in *report*, as human-readable problems."""
    criteria = report["criteria"]
    problems: List[str] = []

    def gate(key: str, message: str) -> None:
        if key in criteria and not criteria[key]:
            problems.append(message)

    gate(
        "warm_speedup_ok",
        f"warm verification speedup {criteria['warm_speedup']:.1f}x "
        f"below target {WARM_SPEEDUP_TARGET:.0f}x",
    )
    gate("fastpath_not_slower", "fast-path run slower than baseline")
    if "concurrency_multiple_ok" in criteria:
        gate(
            "concurrency_multiple_ok",
            f"pipeline throughput multiple "
            f"{criteria['concurrency_multiple']:.2f}x below target "
            f"{CONCURRENCY_TARGET:.1f}x",
        )
        gate(
            "zero_unverified_bytes",
            "unverified or failed responses in the concurrency workload",
        )
    for label in ("sequential", "pipelined"):
        gate(
            f"conformance_{label}_ok",
            f"conformance matrix not green with pipeline {label}",
        )
    return problems


def run_security_bench(quick: bool = False, seed: int = 0) -> Dict[str, object]:
    """The full report: micro + pipeline + concurrency + conformance."""
    micro = run_micro_benches(quick=quick)
    pipeline = run_pipeline_bench(quick=quick, seed=seed)
    concurrency = run_concurrency_bench(quick=quick, seed=seed)
    conformance = run_conformance_bench(quick=quick)
    return {
        "name": "security_pipeline",
        "generated_by": "python -m repro.harness bench-security",
        "quick": quick,
        "micro": micro,
        "pipeline": pipeline,
        "concurrency": concurrency,
        "conformance": conformance,
        "criteria": evaluate_criteria(
            pipeline, concurrency=concurrency, conformance=conformance
        ),
    }


def write_report(report: Dict[str, object], path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def render_security_bench(report: Dict[str, object]) -> str:
    """Human-readable summary for the CLI."""
    micro = report["micro"]
    pipeline = report["pipeline"]
    criteria = report["criteria"]
    warm = pipeline["warm"]
    lines = [
        "Security pipeline benchmark — baseline vs verification fast path",
        "",
        "  micro (real time):",
        f"    RSA verify             {micro['rsa_verify_cold_us']:8.1f} us cold"
        f"  {micro['rsa_verify_cached_us']:8.1f} us cached"
        f"  ({micro['rsa_cached_speedup']:.1f}x)",
        f"    canonical encode       {micro['canonical_encode_us']:8.1f} us cold"
        f"  {micro['wire_size_memo_us']:8.1f} us memo"
        f"    ({micro['encode_memo_speedup']:.1f}x)",
        f"    element hash (10KB)    {micro['element_hash_cold_us']:8.1f} us cold"
        f"  {micro['element_hash_memo_us']:8.1f} us memo",
        f"    cert parse+verify      {micro['cert_roundtrip_cold_us']:8.1f} us cold"
        f"  {micro['cert_roundtrip_warm_us']:8.1f} us warm"
        f"    ({micro['cert_warm_speedup']:.1f}x)",
        "",
        f"  pipeline ({pipeline['accesses']} accesses from {pipeline['client']},"
        " simulated time):",
        f"    baseline total         {pipeline['baseline']['total_ms_mean']:8.2f} ms/access",
        f"    fastpath total         {pipeline['fastpath']['total_ms_mean']:8.2f} ms/access",
        f"    verify_certificate     {warm['cold_verify_certificate_ms']*1e3:8.1f} us cold"
        f"  {warm['warm_verify_certificate_ms']*1e3:8.1f} us warm"
        f"    ({warm['speedup']:.1f}x)",
        "",
        f"  criteria: warm speedup {criteria['warm_speedup']:.1f}x"
        f" (target {criteria['warm_speedup_target']:.0f}x)"
        f" -> {'PASS' if criteria['warm_speedup_ok'] else 'FAIL'};"
        f" fastpath not slower -> "
        f"{'PASS' if criteria['fastpath_not_slower'] else 'FAIL'}",
    ]
    concurrency = report.get("concurrency")
    if concurrency is not None:
        sequential = concurrency["sequential"]
        pipelined = concurrency["pipelined"]
        counters = pipelined.get("counters", {})
        lines += [
            "",
            f"  concurrency ({concurrency['objects']} objects x "
            f"{concurrency['elements_per_object']} elements x "
            f"{concurrency['element_bytes'] // KB} KB"
            f" + {concurrency['hot_duplicates']} hot duplicates,"
            f" {sequential['waves']} waves, simulated time):",
            f"    sequential             {sequential['accesses_per_s']:8.1f}"
            " accesses/s",
            f"    pipelined              {pipelined['accesses_per_s']:8.1f}"
            " accesses/s"
            f"    ({concurrency['throughput_multiple']:.2f}x)",
            f"    prefetch hits/parked   {counters.get('prefetch_hits', 0):8d}"
            f"  /{counters.get('prefetched', 0):8d}"
            f"   coalesced {counters.get('coalesced_calls', 0)} calls"
            f" + {counters.get('coalesced_responses', 0)} responses"
            f"  (ratio {pipelined.get('coalesce_ratio', 0.0):.2f})",
            f"    unverified responses   "
            f"{concurrency['unverified_responses']:8d}"
            f"   failures {concurrency['failures']}",
        ]
    conformance = report.get("conformance")
    if conformance is not None:
        lines.append("")
        lines.append("  conformance matrix (cold + warm, every tamper mode):")
        for label in ("sequential", "pipelined"):
            mode = conformance[label]
            verdict = (
                "PASS"
                if mode["passed"] == mode["cells"]
                and mode["unverified_bytes_leaked"] == 0
                else "FAIL"
            )
            lines.append(
                f"    {label:<11}{mode['passed']:>3}/{mode['cells']} cells,"
                f" {mode['unverified_bytes_leaked']} leaks -> {verdict}"
            )
    gates = [
        ("concurrency_multiple_ok", "throughput multiple"),
        ("zero_unverified_bytes", "zero unverified bytes"),
        ("conformance_sequential_ok", "matrix sequential"),
        ("conformance_pipelined_ok", "matrix pipelined"),
    ]
    extra = [
        f"{name} -> {'PASS' if criteria[key] else 'FAIL'}"
        for key, name in gates
        if key in criteria
    ]
    if extra:
        lines += ["", "  gates: " + "; ".join(extra)]
    return "\n".join(lines)
