"""Monitor-plane bench: the metrics registry and alert engine, end to end.

Runs a mixed workload over the testbed with the whole stack wired into
one shared :class:`~repro.obs.metrics.MetricsRegistry`, scrapes it on a
fixed sim-clock cadence, and injects three sequential faults:

1. **Replica kill** — the inria object server vanishes mid-workload.
   The client bound there retries, opens the circuit breaker, and fails
   over; the ``replica_circuit_open`` alert must fire, then resolve
   after the server returns and the quarantine window expires.
2. **Feed outage** — the revocation feed becomes unreachable long
   enough for every client's view staleness to cross the warning bound
   (but not the fail-closed ``max_staleness``); the
   ``revocation_staleness_high`` alert must fire, then resolve on the
   first successful re-sync.
3. **Key revocation** — one document's key is revoked and published to
   the feed. Clients must start rejecting it (``RevokedKeyError``),
   driving the ``revocation_rejections`` rate alert; once the workload
   abandons the revoked document the trailing window drains and the
   alert resolves.

The run asserts three gates (see :func:`check_report`): the alert
timeline fires/resolves in exactly that order with clock-charged
latencies, the registry's access-time histogram agrees with the
per-response :class:`~repro.proxy.metrics.AccessMetrics` totals within
1%, and two idle scrapes are byte-identical in both exposition formats.

Run with ``python -m repro.harness monitor [--quick]``; writes
``BENCH_monitor_plane.json`` for the CI gate and the aggregate report.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.keys import KeyPair
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.globedoc.urls import HybridUrl
from repro.harness.experiment import ClientStack, Testbed
from repro.location.service import LocationClient
from repro.naming.records import OidRecord
from repro.net.address import ContactAddress, Endpoint
from repro.net.health import ReplicaHealthTracker
from repro.net.retry import RetryPolicy
from repro.net.rpc import RpcClient
from repro.obs import AlertEngine, MetricsRegistry, RateRule, ThresholdRule
from repro.proxy.contentcache import ContentCache
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.revocation.statement import RevocationStatement
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.sim.clock import SimClock

__all__ = [
    "MonitorReport",
    "run_monitor",
    "render_monitor",
    "write_report",
    "check_report",
    "REPORT_NAME",
    "CONSISTENCY_TOLERANCE",
]

REPORT_NAME = "BENCH_monitor_plane.json"

#: Gate (a): |registry histogram sum / summed AccessMetrics totals - 1|
#: must stay within this. The proxy observes exactly the totals it
#: returns, so the measured ratio is 1.0 to float precision; the 1%
#: bound is the regression guard, not an accuracy estimate.
CONSISTENCY_TOLERANCE = 0.01

#: Replica servers for the monitored documents (the feed — and nothing
#: the workload reads — stays on ginger, so a feed outage never starves
#: content and a replica kill never starves the feed).
REPLICA_SITES = {
    "root/europe/inria": "canardo.inria.fr",
    "root/us/cornell": "ensamble02.cornell.edu",
}

CLIENT_HOSTS = ("canardo.inria.fr", "ensamble02.cornell.edu")

OWNER_HOST = "sporty.cs.vu.nl"

#: Scrape cadence (simulated seconds): the alert engine evaluates — and
#: every collector-driven gauge refreshes — on this fixed grid.
SCRAPE_INTERVAL = 5.0

#: Simulated think time between accesses.
THINK_TIME = 1.0

#: Modelled CPU cost of evaluating one alert rule (charged to the sim
#: clock per rule per scrape — the monitor plane is not free).
EVALUATION_COST = 0.001

#: Revocation-view staleness policy for every client: poll at 30 s,
#: fail closed past 60 s; the alert warns at 45 s — after a missed poll,
#: before fail-closed.
MAX_STALENESS = 60.0
STALENESS_WARN = 45.0

#: Circuit-breaker tuning: three consecutive failures open a breaker;
#: the quarantine is shorter than the bench phases so the open → half
#: open transition happens on-screen.
FAILURE_THRESHOLD = 3
QUARANTINE_SECONDS = 20.0

#: The rate alert's trailing window (seconds).
REJECTION_WINDOW = 30.0

#: Content-cache TTL: short enough that a killed replica is missed (a
#: cache hit needs no RPC) within two scrape intervals, long enough
#: that the steady-state workload still exercises the hit path.
CACHE_TTL = 8.0

DOC_ELEMENTS = {
    "index.html": b"<html><body>monitor-plane workload page</body></html>",
    "logo.gif": b"GIF89a-monitor-bench-bytes",
}


@dataclass
class FaultTimes:
    """Clock-stamped fault injections (the latencies are measured
    against these)."""

    replica_killed_at: float = -1.0
    replica_restored_at: float = -1.0
    feed_killed_at: float = -1.0
    feed_restored_at: float = -1.0
    revocation_published_at: float = -1.0
    revoked_doc_abandoned_at: float = -1.0

    def to_dict(self) -> dict:
        return {
            "replica_killed_at": self.replica_killed_at,
            "replica_restored_at": self.replica_restored_at,
            "feed_killed_at": self.feed_killed_at,
            "feed_restored_at": self.feed_restored_at,
            "revocation_published_at": self.revocation_published_at,
            "revoked_doc_abandoned_at": self.revoked_doc_abandoned_at,
        }


@dataclass
class MonitorReport:
    """Everything the monitor run measured, as written to JSON."""

    seed: int
    quick: bool
    scrape_interval: float
    scrapes: int
    rules: List[str]
    timeline: List[dict]
    fire_resolve: Dict[str, Dict[str, Optional[float]]]
    faults: FaultTimes
    accesses: int = 0
    ok: int = 0
    rejected: int = 0
    other_failures: int = 0
    harness_access_seconds: float = 0.0
    registry_access_seconds: float = 0.0
    registry_access_count: float = 0.0
    worst_staleness_seconds: float = 0.0
    worst_serial_lag: float = 0.0
    idle_text_identical: bool = False
    idle_json_identical: bool = False
    series_count: int = 0
    final_firing: List[str] = field(default_factory=list)
    request_outcomes: Dict[str, float] = field(default_factory=dict)

    @property
    def consistency_ratio(self) -> float:
        if self.harness_access_seconds <= 0:
            return 0.0
        return self.registry_access_seconds / self.harness_access_seconds

    def alert_latencies(self) -> Dict[str, Optional[float]]:
        """Clock-charged fire/resolve latencies against the injections."""

        def delta(rule: str, key: str, origin: float) -> Optional[float]:
            stamp = self.fire_resolve.get(rule, {}).get(key)
            if stamp is None or origin < 0:
                return None
            return stamp - origin

        return {
            "circuit_fire_after_kill": delta(
                "replica_circuit_open", "fired_at", self.faults.replica_killed_at
            ),
            "circuit_resolve_after_restore": delta(
                "replica_circuit_open",
                "resolved_at",
                self.faults.replica_restored_at,
            ),
            "staleness_fire_after_feed_kill": delta(
                "revocation_staleness_high",
                "fired_at",
                self.faults.feed_killed_at,
            ),
            "staleness_resolve_after_restore": delta(
                "revocation_staleness_high",
                "resolved_at",
                self.faults.feed_restored_at,
            ),
            "rejections_fire_after_publish": delta(
                "revocation_rejections",
                "fired_at",
                self.faults.revocation_published_at,
            ),
            "rejections_resolve_after_abandon": delta(
                "revocation_rejections",
                "resolved_at",
                self.faults.revoked_doc_abandoned_at,
            ),
        }

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "scrape_interval": self.scrape_interval,
            "scrapes": self.scrapes,
            "rules": self.rules,
            "timeline": self.timeline,
            "fire_resolve": self.fire_resolve,
            "alert_latencies": self.alert_latencies(),
            "faults": self.faults.to_dict(),
            "workload": {
                "accesses": self.accesses,
                "ok": self.ok,
                "rejected": self.rejected,
                "other_failures": self.other_failures,
                "request_outcomes": self.request_outcomes,
            },
            "consistency": {
                "harness_access_seconds": self.harness_access_seconds,
                "registry_access_seconds": self.registry_access_seconds,
                "registry_access_count": self.registry_access_count,
                "ratio": self.consistency_ratio,
                "tolerance": CONSISTENCY_TOLERANCE,
            },
            "worst_staleness_seconds": self.worst_staleness_seconds,
            "worst_serial_lag": self.worst_serial_lag,
            "idle_scrape": {
                "text_identical": self.idle_text_identical,
                "json_identical": self.idle_json_identical,
            },
            "series_count": self.series_count,
            "final_firing": self.final_firing,
        }


# ----------------------------------------------------------------------
# World construction
# ----------------------------------------------------------------------


class _MonitorWorld:
    """The monitored testbed: two documents on inria+cornell replicas,
    the revocation feed on ginger, two instrumented client stacks, one
    shared registry, one alert engine."""

    def __init__(self, seed: int) -> None:
        self.clock = SimClock(0.0)
        self.registry = MetricsRegistry(clock=self.clock)
        self.testbed = Testbed(clock=self.clock, metrics=self.registry)
        self.seed = seed
        self.servers: Dict[str, ObjectServer] = {}
        self._handlers: Dict[Endpoint, object] = {}
        self.owners: Dict[str, DocumentOwner] = {}
        self._publish_documents()
        self.stacks: List[ClientStack] = [
            self._client_stack(host) for host in CLIENT_HOSTS
        ]
        self._wire_serial_lag()
        self.engine = self._build_engine()
        # Consistency-gate accumulator: the summed AccessMetrics totals
        # of every response the workload received.
        self.harness_access_seconds = 0.0
        self.counts = {"accesses": 0, "ok": 0, "rejected": 0, "other": 0}
        self.worst_staleness = 0.0
        self.worst_serial_lag = 0.0
        self.scrapes = 0
        self._next_scrape = SCRAPE_INTERVAL

    # -- documents and servers -----------------------------------------

    def _publish_documents(self) -> None:
        testbed = self.testbed
        admin_rpc = RpcClient(testbed.network.transport_for(OWNER_HOST))
        for site, host in REPLICA_SITES.items():
            server = ObjectServer(
                host=host, site=site, clock=self.clock, metrics=self.registry
            )
            self.servers[host] = server
            handler = server.rpc_server().handle_frame
            endpoint = Endpoint(host, "objectserver")
            self._handlers[endpoint] = handler
            testbed.network.register(endpoint, handler)
        for label in ("healthy", "victim"):
            owner = DocumentOwner(
                f"vu.nl/mon-{label}", keys=KeyPair.generate(1024), clock=self.clock
            )
            for name, content in DOC_ELEMENTS.items():
                owner.put_element(PageElement(name, content))
            document = owner.publish(validity=7 * 24 * 3600.0)
            for site, host in REPLICA_SITES.items():
                server = self.servers[host]
                server.keystore.authorize(owner.name, owner.public_key)
                admin = AdminClient(
                    admin_rpc, Endpoint(host, "objectserver"), owner.keys, self.clock
                )
                result = admin.create_replica(document)
                address = ContactAddress.from_dict(result["address"])
                testbed.location_service.tree.insert(owner.oid.hex, site, address)
            testbed.naming.register(
                OidRecord(name=owner.name, oid=owner.oid, ttl=7 * 24 * 3600.0)
            )
            self.owners[label] = owner

    def _client_stack(self, host: str) -> ClientStack:
        health = ReplicaHealthTracker(
            clock=self.clock,
            failure_threshold=FAILURE_THRESHOLD,
            quarantine_seconds=QUARANTINE_SECONDS,
            metrics=self.registry,
            metrics_client=host,
        )
        return self.testbed.client_stack(
            host,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.05, seed=self.seed),
            health=health,
            content_cache=ContentCache(clock=self.clock, ttl=CACHE_TTL),
            revocation_max_staleness=MAX_STALENESS,
        )

    def _wire_serial_lag(self) -> None:
        """Derived gauge: how many feed serials each client's view is
        behind the most advanced published feed."""
        lag = self.registry.gauge(
            "revocation_serial_lag",
            "Feed serials the client's revocation view is behind the "
            "most advanced server feed.",
            labelnames=("client",),
        )
        stacks = self.stacks

        def collect() -> None:
            heads = self.registry.series_values("revocation_feed_head", None)
            feed_head = max(heads, default=0.0)
            for stack in stacks:
                if stack.revocation is not None:
                    lag.labels(client=stack.host.name).set(
                        feed_head - float(stack.revocation.head)
                    )

        self.registry.register_collector(collect)

    # -- alert engine ---------------------------------------------------

    def _build_engine(self) -> AlertEngine:
        engine = AlertEngine(
            self.registry, self.clock, evaluation_cost=EVALUATION_COST
        )
        engine.add_rule(
            ThresholdRule(
                "replica_circuit_open",
                metric="replica_circuit_state",
                threshold=2.0,
                op=">=",
                aggregate="max",
                # Replica ContactAddress strings only — service Endpoint
                # circuits (the feed during its outage) must not flap
                # this rule.
                label_prefixes={"address": "globedoc/replica"},
                severity="critical",
                description="some client's breaker to a replica is open",
            )
        )
        engine.add_rule(
            ThresholdRule(
                "revocation_staleness_high",
                metric="revocation_view_staleness_seconds",
                threshold=STALENESS_WARN,
                op=">",
                aggregate="max",
                severity="warning",
                description=(
                    "a client's revocation view is drifting toward the "
                    "fail-closed bound"
                ),
            )
        )
        engine.add_rule(
            RateRule(
                "revocation_rejections",
                metric="revocation_rejections_total",
                threshold=0.0,
                window_seconds=REJECTION_WINDOW,
                op=">",
                severity="critical",
                description="clients are rejecting revoked content right now",
            )
        )
        return engine

    # -- fault injection ------------------------------------------------

    def kill_endpoint(self, host: str, service: str = "objectserver") -> None:
        self.testbed.network.unregister(Endpoint(host, service))

    def restore_endpoint(self, host: str, service: str = "objectserver") -> None:
        endpoint = Endpoint(host, service)
        self.testbed.network.register(endpoint, self._handlers[endpoint])

    def kill_feed(self) -> None:
        self.testbed.network.unregister(self.testbed.objectserver_endpoint)

    def restore_feed(self) -> None:
        self.testbed.network.register(
            self.testbed.objectserver_endpoint,
            self.testbed.object_server.rpc_server().handle_frame,
        )

    def publish_revocation(self) -> float:
        """Revoke the victim document's key through the owner-side
        coordinator (feed on ginger only; the replicas never hear)."""
        owner = self.owners["victim"]
        statement = RevocationStatement.revoke_key(
            owner.keys,
            owner.oid,
            serial=1,
            issued_at=self.clock.now(),
            reason="monitor bench: key compromise",
        )
        rpc = RpcClient(self.testbed.network.transport_for(OWNER_HOST))
        location = LocationClient(
            rpc,
            self.testbed.location_endpoint,
            origin_site="root/europe/vu",
            clock=self.clock,
        )
        coordinator = ReplicationCoordinator(location, metrics=self.registry)
        admin = AdminClient(
            rpc, self.testbed.objectserver_endpoint, owner.keys, self.clock
        )
        coordinator.add_site(SitePort(site="root/europe/vu", admin=admin))
        at = self.clock.now()
        coordinator.publish_revocation(statement)
        return at

    # -- workload -------------------------------------------------------

    def _access(self, stack: ClientStack, label: str, element: str) -> None:
        url = HybridUrl.for_name(self.owners[label].name, element).raw
        response = stack.proxy.handle(url)
        self.counts["accesses"] += 1
        if response.ok:
            self.counts["ok"] += 1
        elif response.status == 403:
            self.counts["rejected"] += 1
        else:
            self.counts["other"] += 1
        if response.metrics is not None:
            self.harness_access_seconds += response.metrics.total

    def _scrape_if_due(self) -> None:
        while self.clock.now() >= self._next_scrape:
            self.engine.evaluate()
            self.scrapes += 1
            self._next_scrape += SCRAPE_INTERVAL
            staleness = self.registry.series_values(
                "revocation_view_staleness_seconds", None
            )
            self.worst_staleness = max(
                self.worst_staleness, max(staleness, default=0.0)
            )
            lag = self.registry.series_values("revocation_serial_lag", None)
            self.worst_serial_lag = max(
                self.worst_serial_lag, max(lag, default=0.0)
            )

    def drive(
        self,
        seconds: float,
        labels: Tuple[str, ...] = ("healthy", "victim"),
        stop_when=None,
    ) -> None:
        """Run the mixed workload for *seconds* of simulated time,
        scraping on the fixed cadence. ``stop_when`` (optional callable)
        ends the phase early once it returns True (checked per tick)."""
        elements = sorted(DOC_ELEMENTS)
        deadline = self.clock.now() + seconds
        tick = 0
        while self.clock.now() < deadline:
            self.clock.advance(THINK_TIME)
            # Decorrelate stack/document/element choices so every client
            # touches every document (tick alone would lock each stack
            # to one label forever).
            stack = self.stacks[tick % len(self.stacks)]
            label = labels[(tick // len(self.stacks)) % len(labels)]
            self._access(stack, label, elements[(tick // 4) % len(elements)])
            self._scrape_if_due()
            tick += 1
            if stop_when is not None and stop_when():
                return


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------


def run_monitor(quick: bool = False, seed: int = 0) -> MonitorReport:
    """The full monitor bench: warmup, three faults, idle round-trip."""
    world = _MonitorWorld(seed)
    engine = world.engine
    faults = FaultTimes()

    # Phase 0 — healthy warmup: sessions bound, feeds synced, a few
    # clean scrapes on the books.
    world.drive(12.0 if quick else 20.0)

    # Phase 1 — replica kill. The inria client is bound to the inria
    # replica; killing it forces retry → circuit open → failover.
    faults.replica_killed_at = world.clock.now()
    world.kill_endpoint("canardo.inria.fr")
    world.drive(
        30.0,
        stop_when=lambda: engine.state_of("replica_circuit_open") == "firing",
    )
    faults.replica_restored_at = world.clock.now()
    world.restore_endpoint("canardo.inria.fr")
    # Quarantine expiry (+ scrape) resolves the alert: the collector
    # re-reads breaker state, open → half-open once the window passes.
    world.drive(
        QUARANTINE_SECONDS + 4 * SCRAPE_INTERVAL,
        stop_when=lambda: engine.state_of("replica_circuit_open") == "resolved",
    )

    # Phase 2 — feed outage: staleness crosses the warning bound but
    # stays inside max_staleness, so nothing fails closed.
    faults.feed_killed_at = world.clock.now()
    world.kill_feed()
    world.drive(
        STALENESS_WARN + 2 * SCRAPE_INTERVAL,
        stop_when=lambda: engine.state_of("revocation_staleness_high") == "firing",
    )
    faults.feed_restored_at = world.clock.now()
    world.restore_feed()
    world.drive(
        3 * SCRAPE_INTERVAL,
        stop_when=lambda: engine.state_of("revocation_staleness_high")
        == "resolved",
    )

    # Phase 3 — key revocation: published to the (restored) feed; the
    # serving replicas never hear of it — client polling contains it.
    faults.revocation_published_at = world.publish_revocation()
    world.drive(
        MAX_STALENESS,
        stop_when=lambda: engine.state_of("revocation_rejections") == "firing",
    )
    # The workload abandons the revoked document; the rate window
    # drains and the alert resolves.
    faults.revoked_doc_abandoned_at = world.clock.now()
    world.drive(
        REJECTION_WINDOW + 4 * SCRAPE_INTERVAL,
        labels=("healthy",),
        stop_when=lambda: engine.state_of("revocation_rejections") == "resolved",
    )

    # Gate (c) — idle round-trip: two scrapes with no traffic and no
    # clock movement must be byte-identical in both formats.
    world.registry.collect()
    text_a, text_b = (
        world.registry.to_prometheus_text(),
        world.registry.to_prometheus_text(),
    )
    json_a, json_b = world.registry.to_json(), world.registry.to_json()

    snapshot = world.registry.snapshot()
    access_series = snapshot.get("proxy_access_seconds", {}).get("series", [])
    report = MonitorReport(
        seed=seed,
        quick=quick,
        scrape_interval=SCRAPE_INTERVAL,
        scrapes=world.scrapes,
        rules=[rule.name for rule in engine.rules],
        timeline=engine.timeline_dicts(),
        fire_resolve=engine.fire_resolve_times(),
        faults=faults,
        accesses=world.counts["accesses"],
        ok=world.counts["ok"],
        rejected=world.counts["rejected"],
        other_failures=world.counts["other"],
        harness_access_seconds=world.harness_access_seconds,
        registry_access_seconds=world.registry.total("proxy_access_seconds"),
        registry_access_count=float(sum(s["count"] for s in access_series)),
        worst_staleness_seconds=world.worst_staleness,
        worst_serial_lag=world.worst_serial_lag,
        idle_text_identical=text_a == text_b,
        idle_json_identical=json_a == json_b,
        series_count=sum(len(m["series"]) for m in snapshot.values()),
        final_firing=engine.firing(),
    )
    for labels, value in _series_of(snapshot, "proxy_requests_total"):
        report.request_outcomes[labels.get("outcome", "")] = value
    return report


def _series_of(snapshot: dict, name: str) -> List[Tuple[dict, float]]:
    metric = snapshot.get(name)
    if metric is None:
        return []
    return [(s["labels"], s["value"]) for s in metric["series"]]


# ----------------------------------------------------------------------
# Gates / rendering / persistence
# ----------------------------------------------------------------------


def check_report(report: MonitorReport) -> List[str]:
    """CI-gate violations (empty = pass).

    * every alert fired exactly when its fault was live and resolved
      afterwards, in injection order (circuit → staleness → rejections);
    * fire/resolve latencies are clock-charged and bounded by the
      detection mechanics (scrape cadence, poll interval, quarantine);
    * the registry's access-seconds histogram matches the summed
      per-response AccessMetrics totals within 1%;
    * two idle scrapes are byte-identical (text and JSON);
    * nothing is left firing, and the workload saw no failures other
      than the revocation rejections the scenario demands.
    """
    problems: List[str] = []
    order = [
        ("replica_circuit_open", "fired_at"),
        ("replica_circuit_open", "resolved_at"),
        ("revocation_staleness_high", "fired_at"),
        ("revocation_staleness_high", "resolved_at"),
        ("revocation_rejections", "fired_at"),
        ("revocation_rejections", "resolved_at"),
    ]
    stamps: List[float] = []
    for rule, key in order:
        stamp = report.fire_resolve.get(rule, {}).get(key)
        if stamp is None:
            problems.append(f"alert {rule} never reached {key}")
        else:
            stamps.append(stamp)
    if len(stamps) == len(order) and stamps != sorted(stamps):
        problems.append(
            "alert timeline out of order: "
            + ", ".join(f"{r}.{k}={s:.1f}" for (r, k), s in zip(order, stamps))
        )
    latencies = report.alert_latencies()
    bounds = {
        # Detection: ≤ one content-cache expiry + one failed access +
        # one scrape; resolution adds the quarantine window / poll
        # interval the mechanism waits out.
        "circuit_fire_after_kill": CACHE_TTL + 3 * SCRAPE_INTERVAL,
        "circuit_resolve_after_restore": QUARANTINE_SECONDS + 3 * SCRAPE_INTERVAL,
        "staleness_fire_after_feed_kill": STALENESS_WARN + 3 * SCRAPE_INTERVAL,
        "staleness_resolve_after_restore": MAX_STALENESS / 2.0 + 3 * SCRAPE_INTERVAL,
        "rejections_fire_after_publish": MAX_STALENESS / 2.0 + 3 * SCRAPE_INTERVAL,
        "rejections_resolve_after_abandon": REJECTION_WINDOW + 3 * SCRAPE_INTERVAL,
    }
    for key, bound in bounds.items():
        latency = latencies.get(key)
        if latency is None:
            continue  # already reported as a missing transition
        if latency < 0:
            problems.append(f"{key}: negative latency {latency:.2f}s")
        elif latency > bound:
            problems.append(f"{key}: {latency:.1f}s exceeds bound {bound:.1f}s")
    ratio = report.consistency_ratio
    if abs(ratio - 1.0) > CONSISTENCY_TOLERANCE:
        problems.append(
            f"registry/AccessMetrics consistency ratio {ratio:.4f} outside "
            f"1 ± {CONSISTENCY_TOLERANCE}"
        )
    if not report.idle_text_identical:
        problems.append("idle Prometheus-text scrapes differ")
    if not report.idle_json_identical:
        problems.append("idle JSON snapshots differ")
    if report.final_firing:
        problems.append(f"alerts still firing at end of run: {report.final_firing}")
    if report.rejected <= 0:
        problems.append("scenario produced no revocation rejections")
    if report.other_failures:
        problems.append(
            f"{report.other_failures} non-revocation failures in the workload"
        )
    if report.scrapes < 10:
        problems.append(f"only {report.scrapes} scrapes — cadence did not run")
    return problems


def render_monitor(report: MonitorReport) -> str:
    """Human-readable alert timeline + gate summary."""
    from repro.harness.report import render_table

    rows = [
        [f"{event['at']:10.2f}", event["rule"], event["state"],
         f"{event['value']:.2f}", event["severity"]]
        for event in report.timeline
    ]
    table = render_table(["t (s)", "rule", "state", "value", "severity"], rows)
    latencies = report.alert_latencies()
    lat_lines = [
        f"  {key}: {value:.2f} s" if value is not None else f"  {key}: -"
        for key, value in latencies.items()
    ]
    return "\n".join(
        [
            f"Monitor plane — {report.scrapes} scrapes every "
            f"{report.scrape_interval:.0f} s, {report.accesses} accesses "
            f"({report.ok} ok, {report.rejected} rejected), "
            f"{report.series_count} series",
            table,
            "alert latencies (clock-charged):",
            *lat_lines,
            f"consistency ratio (registry vs AccessMetrics): "
            f"{report.consistency_ratio:.6f}",
            f"worst feed staleness: {report.worst_staleness_seconds:.1f} s; "
            f"worst serial lag: {report.worst_serial_lag:.0f}",
            f"idle scrapes identical: text={report.idle_text_identical} "
            f"json={report.idle_json_identical}",
        ]
    )


def write_report(report: MonitorReport, path: pathlib.Path) -> None:
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
