"""Profile bench: cross-process causal traces, critical paths, SLOs.

Where ``python -m repro.harness trace`` shares **one** tracer across
the whole testbed (a single process's view), this harness gives every
simulated process its own tracer — the ginger services, a peer object
server at INRIA, and each client proxy — so the only thing holding a
trace together is the propagated trace context in the RPC envelopes.
That is exactly the paper's measurement problem at fleet scale: the
Fig. 4 "timers in various parts of the proxy and server code" only
compose into one end-to-end picture if the server's work can be causally
attributed to the client access that caused it.

The workload mixes the three traffic classes of a live GlobeDoc fleet:

* **reads** — honest proxy accesses (verification fast path + content
  cache) from the Amsterdam client;
* **writes + gossip** — granted writers publishing signed deltas over
  RPC to their home servers, then anti-entropy rounds between ginger
  and the INRIA peer (``gossip.run`` traces whose ``server.handle`` /
  ``versioning.put_delta`` / ``storage.journal`` work lands on the
  *other* process's tracer);
* **revocation** — explicit feed refreshes (``revocation.refresh``
  roots) alongside the in-access revocation checks;
* **SLO breach + recovery** — a lossy-transport phase whose retry
  backoff pushes accesses over the latency objective, driving the
  fast burn-rate alert through pending → firing → resolved once the
  fault clears and the window drains.

``BENCH_profile.json`` records the stitching health (cross-process
stitch rate must be 1.0 — every server/gossip span reachable from its
client root), the critical-path attribution per cost category (must sum
to each trace's duration within 1%), critical-path p50/p99, the top-5
hottest span families, and the SLO verdicts with the alert timeline.

Run with ``python -m repro.harness profile [--quick]``.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
from typing import Dict, List, Optional

from repro.crypto.keys import KeyPair
from repro.crypto.verifycache import VerificationCache
from repro.globedoc.element import PageElement
from repro.globedoc.oid import ObjectId
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import HOST_SITE, SERVICES_HOST, Testbed
from repro.net.address import Endpoint
from repro.net.faults import FaultPlan, FlakyTransport
from repro.net.retry import RetryPolicy
from repro.net.rpc import RpcClient
from repro.obs import (
    AlertEngine,
    CriticalPathProfiler,
    LatencyObjective,
    MetricsRegistry,
    RingBufferSink,
    SloPlane,
    Tracer,
    TraceAssembler,
)
from repro.obs.alerts import STATE_FIRING, STATE_PENDING, STATE_RESOLVED
from repro.obs.slo import AvailabilityObjective, BurnWindow
from repro.proxy.contentcache import ContentCache
from repro.server.objectserver import ObjectServer
from repro.sim.clock import SimClock
from repro.sim.random import derive_seed
from repro.versioning import DeltaDag, SignedDelta, WriterGrant
from repro.versioning.writer import DocumentWriter

__all__ = [
    "REPORT_NAME",
    "run_profile",
    "check_report",
    "render_profile",
    "write_report",
]

REPORT_NAME = "BENCH_profile.json"

READ_HOST = "sporty.cs.vu.nl"
WRITER_HOST = "ensamble02.cornell.edu"
PEER_HOST = "canardo.inria.fr"
BREACH_HOST = "ensamble02.cornell.edu"

ELEMENTS = {
    "index.html": b"<html><body>" + b"profile me " * 96 + b"</body></html>",
    "style.css": b"body { margin: 0; } /* profiled */",
    "logo.png": bytes(range(256)) * 48,
}

#: Every trace root must be one of these — a client access, a writer
#: publish, an anti-entropy round, or a revocation-feed poll. Any other
#: root means a server-side span failed to join its causing trace.
ALLOWED_ROOTS = frozenset(
    {"proxy.handle", "session.publish", "gossip.run", "revocation.refresh"}
)

#: Span families the mixed workload must produce somewhere in the fleet.
EXPECTED_SPANS = (
    "proxy.handle",
    "check.certificate",
    "check.element_hash",
    "cache.get",
    "rpc.call",
    "server.handle",
    "gossip.run",
    "versioning.put_delta",
    "storage.journal",
    "revocation.refresh",
)

#: Cost categories the critical-path aggregate must cover.
EXPECTED_CATEGORIES = ("cache", "crypto", "merge", "proxy", "rpc", "storage")

#: Per-trace attribution must close to this relative tolerance (the
#: boundary sweep is exact; this absorbs float rounding only).
ATTRIBUTION_TOLERANCE = 0.01

#: Latency SLO: 99% of proxy accesses complete within 250 ms (a
#: DEFAULT_LATENCY_BUCKETS bound, as the objective requires).
LATENCY_TARGET = 0.99
LATENCY_THRESHOLD_S = 0.25

SESSION_DROP_EVERY = 6


def _tracer(clock: SimClock, origin: str, rings: Dict[str, RingBufferSink]) -> Tracer:
    """One per-process tracer; its ring is registered under *origin*
    but only attached (traced) once the workload starts."""
    rings[origin] = RingBufferSink(capacity=65536)
    return Tracer(clock=clock, origin=origin)


def _attach_sinks(tracers: Dict[str, Tracer], rings: Dict[str, RingBufferSink]) -> None:
    """Start recording: setup spans (publish, grants) stay untraced so
    every recorded root belongs to the workload."""
    for origin, tracer in tracers.items():
        tracer.add_sink(rings[origin])


def run_profile(quick: bool = False, seed: int = 0) -> dict:
    """Drive the mixed workload, return the JSON-ready report."""
    scratch = tempfile.mkdtemp(prefix="repro-profile-")
    try:
        return _run(quick, seed, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _run(quick: bool, seed: int, scratch: str) -> dict:
    reads = 36 if quick else 144
    write_rounds = 3 if quick else 8
    refreshes = 3 if quick else 8
    breach_requests = 24 if quick else 48
    recovery_requests = 6 if quick else 12

    clock = SimClock()
    clock.advance(100.0)
    metrics = MetricsRegistry(clock=clock)
    rings: Dict[str, RingBufferSink] = {}
    tracers: Dict[str, Tracer] = {}
    tracers["server-ginger"] = _tracer(clock, "server-ginger", rings)
    tracers["server-inria"] = _tracer(clock, "server-inria", rings)
    tracers["proxy-sporty"] = _tracer(clock, "proxy-sporty", rings)
    tracers["writer-cornell"] = _tracer(clock, "writer-cornell", rings)
    tracers["proxy-cornell"] = _tracer(clock, "proxy-cornell", rings)

    # ---------------------------------------------------------- testbed
    # data_dir turns on durable versioning journaling, so delta
    # admission produces the storage.journal spans the storage category
    # attributes. storage_sync off: the bench profiles the pipeline, not
    # the disk.
    testbed = Testbed(
        clock=clock,
        tracer=tracers["server-ginger"],
        metrics=metrics,
        data_dir=scratch,
        storage_sync=False,
    )
    peer_server = ObjectServer(
        host=PEER_HOST,
        site=HOST_SITE[PEER_HOST],
        clock=clock,
        tracer=tracers["server-inria"],
        metrics=metrics,
        storage_sync=False,
        compute_context=testbed.network.host(PEER_HOST).compute,
    )
    testbed.network.register(
        Endpoint(PEER_HOST, "objectserver"), peer_server.rpc_server().handle_frame
    )

    owner = DocumentOwner(
        "vu.nl/profile", keys=KeyPair.generate(1024), clock=clock
    )
    for element_name, content in ELEMENTS.items():
        owner.put_element(PageElement(element_name, content))
    published = testbed.publish(owner, validity=7 * 24 * 3600.0)

    # Versioned object + grants on both servers (setup, untraced).
    owner_keys = KeyPair.generate(1024)
    oid = ObjectId.from_public_key(owner_keys.public)
    writers: Dict[str, DocumentWriter] = {}
    for index in range(2):
        writer_id = f"writer{index:02d}"
        keys = KeyPair.generate(1024)
        grant = WriterGrant.issue(
            owner_keys, oid, writer_id, keys.public, granted_at=clock.now()
        )
        for server in (testbed.object_server, peer_server):
            server.versioning.register_object(owner_keys.public)
            server.versioning.put_grant(oid.hex, grant)
        writers[writer_id] = DocumentWriter(keys, writer_id, oid, clock)

    # ------------------------------------------------------- SLO plane
    engine = AlertEngine(metrics, clock, evaluation_cost=0.0005)
    slo = SloPlane(metrics, engine)
    latency = slo.add(
        LatencyObjective(
            "access_latency",
            metric="proxy_access_seconds",
            threshold_s=LATENCY_THRESHOLD_S,
            target=LATENCY_TARGET,
            description=f"{LATENCY_TARGET:.0%} of accesses within "
            f"{LATENCY_THRESHOLD_S * 1e3:.0f} ms",
        ),
        fast=BurnWindow(window_seconds=60.0, threshold=10.0, severity="critical"),
        slow=BurnWindow(window_seconds=300.0, threshold=2.0, severity="warning"),
    )
    slo.add(
        AvailabilityObjective(
            "access_availability",
            metric="proxy_requests_total",
            good_labels={"outcome": "ok"},
            target=0.75,
            description="three quarters of accesses succeed even through faults",
        ),
        fast=BurnWindow(window_seconds=60.0, threshold=3.0, severity="critical"),
        slow=None,
    )

    _attach_sinks(tracers, rings)  # ---- recording starts here ----
    workload: Dict[str, object] = {}

    # ------------------------------------------------------------ reads
    read_stack = testbed.client_stack(
        READ_HOST,
        verification_cache=VerificationCache(),
        content_cache=ContentCache(
            clock=clock,
            ttl=30.0,
            tracer=tracers["proxy-sporty"],
            compute_context=testbed.network.host(READ_HOST).compute,
        ),
        revocation_max_staleness=120.0,
        tracer=tracers["proxy-sporty"],
    )
    names = list(ELEMENTS)
    read_ok = 0
    for i in range(reads):
        if i % SESSION_DROP_EVERY == 0:
            read_stack.proxy.drop_all_sessions()
        if read_stack.proxy.handle(published.url(names[i % len(names)])).ok:
            read_ok += 1
        if i % 8 == 0:
            engine.evaluate()
    workload["reads"] = reads
    workload["read_ok"] = read_ok

    # -------------------------------------------------- writes + gossip
    writer_rpc = RpcClient(
        testbed.network.transport_for(WRITER_HOST),
        tracer=tracers["writer-cornell"],
        metrics=metrics,
    )
    home_endpoints = {
        "writer00": testbed.objectserver_endpoint,
        "writer01": Endpoint(PEER_HOST, "objectserver"),
    }
    ginger_rpc = RpcClient(
        testbed.network.transport_for(SERVICES_HOST),
        tracer=tracers["server-ginger"],
        metrics=metrics,
    )
    peer_rpc = RpcClient(
        testbed.network.transport_for(PEER_HOST),
        tracer=tracers["server-inria"],
        metrics=metrics,
    )
    views = {writer_id: DeltaDag() for writer_id in writers}
    writes = 0
    gossip_rounds = 0
    gossip_pulled = 0
    gossip_pushed = 0
    writer_tracer = tracers["writer-cornell"]
    for round_index in range(write_rounds):
        for writer_id, writer in sorted(writers.items()):
            home = home_endpoints[writer_id]
            with writer_tracer.span(
                "session.publish", writer=writer_id, round=round_index
            ) as span:
                bundle = writer_rpc.call(
                    home,
                    "versioning.fetch",
                    oid_hex=oid.hex,
                    have_ids=views[writer_id].delta_ids,
                )
                views[writer_id].add_all(
                    SignedDelta.from_dict(d) for d in bundle["deltas"]
                )
                delta = writer.put(
                    views[writer_id],
                    f"section-{round_index % 3}",
                    bytes(f"round {round_index} by {writer_id}", "ascii"),
                )
                result = writer_rpc.call(
                    home,
                    "versioning.publish_delta",
                    oid_hex=oid.hex,
                    delta=delta.to_dict(),
                )
                span.set_attribute("added", bool(result.get("added")))
            writes += 1
            clock.advance(0.25)
        # Anti-entropy both ways: ginger pulls from INRIA, then INRIA
        # pulls from ginger. Each round is its own gossip.run trace
        # rooted on the initiating server's tracer.
        for initiator, rpc, peer in (
            (testbed.object_server, ginger_rpc, Endpoint(PEER_HOST, "objectserver")),
            (peer_server, peer_rpc, testbed.objectserver_endpoint),
        ):
            outcome = initiator.gossip_versioned(rpc, peer, oid.hex)
            gossip_rounds += 1
            gossip_pulled += outcome["pulled"]
            gossip_pushed += outcome["pushed"]
        engine.evaluate()
    converged = set(testbed.object_server.versioning.delta_ids(oid.hex)) == set(
        peer_server.versioning.delta_ids(oid.hex)
    )
    workload.update(
        writes=writes,
        gossip_rounds=gossip_rounds,
        gossip_pulled=gossip_pulled,
        gossip_pushed=gossip_pushed,
        converged=converged,
    )

    # ------------------------------------------------------- revocation
    for _ in range(refreshes):
        read_stack.revocation.refresh()
        clock.advance(1.0)
    workload["revocation_refreshes"] = refreshes

    # --------------------------------------------- SLO breach + recovery
    plan = FaultPlan(
        drop_probability=0.35, seed=derive_seed(seed, "profile-faults")
    )
    flaky = FlakyTransport(testbed.network.transport_for(BREACH_HOST), plan)
    breach_stack = testbed.client_stack(
        BREACH_HOST,
        transport=flaky,
        retry_policy=RetryPolicy(
            max_attempts=4,
            base_delay=0.2,
            max_delay=1.0,
            seed=derive_seed(seed, "profile-retry"),
        ),
        tracer=tracers["proxy-cornell"],
    )
    breach_ok = 0
    for i in range(breach_requests):
        if i % SESSION_DROP_EVERY == 0:
            breach_stack.proxy.drop_all_sessions()
        if breach_stack.proxy.handle(published.url(names[i % len(names)])).ok:
            breach_ok += 1
        if i % 4 == 3:
            engine.evaluate()
    workload["breach_requests"] = breach_requests
    workload["breach_ok"] = breach_ok

    # Fault clears; healthy traffic plus enough elapsed time for both
    # burn windows to drain their bad samples.
    recovery_ok = 0
    for i in range(recovery_requests):
        if read_stack.proxy.handle(published.url(names[i % len(names)])).ok:
            recovery_ok += 1
        clock.advance(10.0)
        engine.evaluate()
    for _ in range(30):
        clock.advance(12.0)
        engine.evaluate()
    workload["recovery_requests"] = recovery_requests
    workload["recovery_ok"] = recovery_ok

    # --------------------------------------------------------- assemble
    assembler = TraceAssembler()
    for ring in rings.values():
        assembler.add_sink(ring)
    traces = assembler.collect()
    stitching = assembler.summary(traces)
    stitching["spans_dropped"] = sum(ring.dropped for ring in rings.values())

    root_names: Dict[str, int] = {}
    bad_roots: List[str] = []
    span_names: Dict[str, int] = {}
    for trace in traces:
        for span in trace.spans:
            span_names[span.name] = span_names.get(span.name, 0) + 1
        for root in trace.roots:
            root_names[root.name] = root_names.get(root.name, 0) + 1
            if root.name not in ALLOWED_ROOTS:
                bad_roots.append(f"{root.name} ({root.ref})")

    profiler = CriticalPathProfiler()
    max_rel_error = 0.0
    for trace in traces:
        trace_profile = profiler.add(trace)
        if trace_profile is not None and trace_profile.duration > 0:
            max_rel_error = max(
                max_rel_error,
                trace_profile.attribution_error / trace_profile.duration,
            )

    report = {
        "name": "profile",
        "quick": quick,
        "seed": seed,
        "workload": workload,
        "stitching": stitching,
        "roots": root_names,
        "bad_roots": bad_roots,
        "span_names": span_names,
        "profile": profiler.aggregate(top=5),
        "max_relative_attribution_error": max_rel_error,
        "slo": slo.report(),
        "latency_compliance": latency.compliance(metrics),
        "alert_evaluations": engine.evaluations,
    }
    peer_server.close()
    testbed.close_stores()
    report["criteria"] = {"problems": check_report(report)}
    return report


def _lifecycle_complete(timeline: List[dict], rule: str) -> bool:
    """True when *rule*'s events contain pending → firing → resolved in
    causal order."""
    wanted = [STATE_PENDING, STATE_FIRING, STATE_RESOLVED]
    position = 0
    for event in timeline:
        if event.get("rule") != rule:
            continue
        if event.get("state") == wanted[position]:
            position += 1
            if position == len(wanted):
                return True
    return False


def check_report(report: dict) -> List[str]:
    """CI-gate violations (empty = pass)."""
    problems: List[str] = []
    workload = report.get("workload", {})
    for phase, ok_key in (("reads", "read_ok"), ("recovery_requests", "recovery_ok")):
        if workload.get(ok_key) != workload.get(phase):
            problems.append(
                f"{phase} degraded: {workload.get(ok_key)}/{workload.get(phase)} ok"
            )
    if not workload.get("converged"):
        problems.append("servers did not converge after gossip")
    if workload.get("gossip_pulled", 0) + workload.get("gossip_pushed", 0) == 0:
        problems.append("gossip exchanged no deltas")

    stitching = report.get("stitching", {})
    if stitching.get("stitch_rate") != 1.0:
        problems.append(
            f"cross-process stitch rate {stitching.get('stitch_rate')} != 1.0 "
            f"({stitching.get('orphan_spans')} orphan spans)"
        )
    for key in ("orphan_spans", "skewed_spans", "spans_dropped", "duplicate_refs"):
        if stitching.get(key, 0):
            problems.append(f"{key} = {stitching.get(key)} (expected 0)")
    if not stitching.get("cross_process_spans"):
        problems.append("no spans were adopted across processes")
    if not stitching.get("cross_process_traces"):
        problems.append("no trace spanned more than one process")
    if report.get("bad_roots"):
        problems.append(
            "server/gossip spans surfaced as trace roots instead of joining "
            f"their causing trace: {report['bad_roots'][:5]}"
        )

    span_names = report.get("span_names", {})
    for name in EXPECTED_SPANS:
        if not span_names.get(name):
            problems.append(f"no {name!r} spans recorded")

    profile = report.get("profile", {})
    if not profile.get("traces_profiled"):
        problems.append("no traces were profiled")
    if profile.get("rootless_traces"):
        problems.append(f"{profile['rootless_traces']} traces had no unique root")
    rel_error = report.get("max_relative_attribution_error", 1.0)
    if rel_error > ATTRIBUTION_TOLERANCE:
        problems.append(
            f"category attribution missed trace duration by {rel_error:.4%} "
            f"(tolerance {ATTRIBUTION_TOLERANCE:.0%})"
        )
    categories = profile.get("categories", {})
    for category in EXPECTED_CATEGORIES:
        if category not in categories:
            problems.append(f"no critical-path time attributed to {category!r}")
    if len(profile.get("hottest", [])) < 5:
        problems.append(
            f"fewer than 5 hot span families: {len(profile.get('hottest', []))}"
        )

    slo = report.get("slo", {})
    timeline = slo.get("alert_timeline", [])
    if not _lifecycle_complete(timeline, "access_latency:fast_burn"):
        problems.append(
            "seeded SLO breach did not drive access_latency:fast_burn through "
            "pending → firing → resolved"
        )
    verdicts = {v["objective"]: v for v in slo.get("objectives", [])}
    if "access_latency" not in verdicts:
        problems.append("latency objective missing from SLO verdicts")
    return problems


def render_profile(report: dict) -> str:
    """Human-readable digest: categories, hot spans, stitching, SLOs."""
    from repro.harness.report import render_table

    profile = report["profile"]
    critical = profile["critical_path_s"]
    rows = [
        [category, f"{entry['critical_s'] * 1e3:.1f} ms", f"{entry['fraction']:.1%}"]
        for category, entry in sorted(
            profile["categories"].items(), key=lambda kv: -kv[1]["critical_s"]
        )
    ]
    lines = [
        "Profile bench — cross-process critical-path attribution",
        render_table(["category", "critical time", "share"], rows),
        "",
        f"traces: {profile['traces_profiled']} profiled, critical path "
        f"p50 {critical['p50'] * 1e3:.1f} ms / p99 {critical['p99'] * 1e3:.1f} ms",
        "hottest span families:",
    ]
    for entry in profile["hottest"]:
        lines.append(
            f"  {entry['name']:<24} {entry['critical_s'] * 1e3:9.1f} ms "
            f"({entry['category']}, {entry['traces']} traces)"
        )
    stitching = report["stitching"]
    lines.append(
        f"stitching: rate {stitching['stitch_rate']:.3f}, "
        f"{stitching['cross_process_spans']} cross-process spans over "
        f"{stitching['traces']} traces ({stitching['orphan_spans']} orphans)"
    )
    for verdict in report["slo"]["objectives"]:
        states = ", ".join(
            f"{rule.split(':')[-1]}={state}"
            for rule, state in sorted(verdict["alerts"].items())
        )
        lines.append(
            f"SLO {verdict['objective']}: compliance {verdict['compliance']:.4f} "
            f"vs target {verdict['target']:.2f} "
            f"({'met' if verdict['met'] else 'MISSED'}; {states})"
        )
    return "\n".join(lines)


def write_report(report: dict, path: pathlib.Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
