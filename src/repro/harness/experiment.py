"""Testbed wiring: the paper's §4 setup, ready to run.

One :class:`Testbed` assembles the whole stack on the simulated Table-1
WAN:

* on **ginger** (Amsterdam primary): the naming service (root + ``nl`` +
  ``nl/vu`` zones), the location service (three-site domain tree), a
  GlobeDoc object server, an Apache-style static server, and an
  Apache+SSL-style server;
* on each client host: a freshly wired proxy stack
  (:class:`ClientStack`) whose verification CPU is charged to that
  host.

The same wiring is reused by the figure experiments, the ablations, the
attack tests (which swap in adversarial components), and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.plainhttp import StaticHttpServer
from repro.baselines.ssl_channel import SslClient, SslServer
from repro.crypto.identity import CertificateAuthority, TrustStore
from repro.crypto.verifycache import VerificationCache
from repro.globedoc.owner import DocumentOwner, SignedDocument
from repro.globedoc.urls import HybridUrl
from repro.location.service import LocationClient, LocationService
from repro.location.tree import DomainTree
from repro.naming.records import OidRecord
from repro.naming.service import NameService, SecureResolver
from repro.naming.zone import Zone
from repro.naming.dnssec import SignedZone
from repro.net.address import ContactAddress, Endpoint
from repro.net.health import ReplicaHealthTracker
from repro.net.retry import RetryingRpcClient, RetryPolicy
from repro.net.rpc import RpcClient
from repro.net.simnet import SimHost, SimNetwork
from repro.net.topology import WanTopology, paper_testbed
from repro.proxy.binding import Binder
from repro.proxy.checks import SecurityChecker
from repro.proxy.clientproxy import GlobeDocProxy
from repro.proxy.pipeline import AccessScheduler, PipelineConfig, PrefetchingRpcClient
from repro.revocation.checker import RevocationChecker
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.sim.clock import SimClock

__all__ = ["Testbed", "ClientStack", "PublishedObject", "HOST_SITE"]

#: Site of each Table-1 host in the location-service domain tree.
HOST_SITE = {
    "ginger.cs.vu.nl": "root/europe/vu",
    "sporty.cs.vu.nl": "root/europe/vu",
    "canardo.inria.fr": "root/europe/inria",
    "ensamble02.cornell.edu": "root/us/cornell",
}

SERVICES_HOST = "ginger.cs.vu.nl"


@dataclass
class PublishedObject:
    """A document placed on the testbed: owner + current signed version."""

    owner: DocumentOwner
    document: SignedDocument
    name: str
    replica_addresses: Dict[str, ContactAddress] = field(default_factory=dict)

    @property
    def oid_hex(self) -> str:
        return self.owner.oid.hex

    def url(self, element: str) -> str:
        return HybridUrl.for_name(self.name, element).raw


@dataclass
class ClientStack:
    """Everything a client host needs to browse securely."""

    host: SimHost
    transport: object
    rpc: RpcClient
    resolver: SecureResolver
    location: LocationClient
    binder: Binder
    checker: SecurityChecker
    proxy: GlobeDocProxy
    revocation: Optional[RevocationChecker] = None
    scheduler: Optional[AccessScheduler] = None

    def fresh_proxy(
        self, cache_binding: bool = True, require_identity: bool = False
    ) -> GlobeDocProxy:
        """A new proxy sharing this stack's wiring (fresh sessions)."""
        return GlobeDocProxy(
            self.binder,
            self.checker,
            self.rpc,
            cache_binding=cache_binding,
            require_identity=require_identity,
        )


class Testbed:
    """The §4 experimental setup on the simulated WAN."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        start_time: float = 0.0,
        tracer=None,
        metrics=None,
        data_dir: Optional[str] = None,
        storage_sync: bool = True,
        zone_keys: Optional[Dict[str, object]] = None,
    ) -> None:
        self.topology: WanTopology = paper_testbed(
            clock if clock is not None else SimClock(start_time)
        )
        self.network: SimNetwork = self.topology.network
        self.clock: SimClock = self.topology.clock
        #: Optional service-side tracer: the object server's RPC surface
        #: records ``server.handle`` spans into it.
        self.tracer = tracer
        #: Optional shared metrics registry: threaded through the object
        #: server (and, via :meth:`client_stack`, through every client
        #: layer) so one scrape sees the whole testbed.
        self.metrics = metrics
        #: ``data_dir`` turns on durable backends: the object server
        #: journals keystore + replicas + revocation feed under it, and
        #: the naming/location services journal their published records.
        #: A second Testbed pointed at the same directory recovers them
        #: (the recovery harness's restart primitive).
        self.data_dir = data_dir
        self.storage_sync = storage_sync
        #: Zone signing keys to reuse (restart): the key ceremony is
        #: administrator configuration and survives restarts out of
        #: band; only the *published records* go through the durable
        #: store. Map of zone path ("", "nl", "nl/vu") → ZoneKeys.
        self._zone_keys = zone_keys if zone_keys is not None else {}
        self._build_services()
        self._published: Dict[str, PublishedObject] = {}

    # ------------------------------------------------------------------
    # Service construction (all on the Amsterdam primary)
    # ------------------------------------------------------------------

    def _build_services(self) -> None:
        import os

        # Naming: root -> nl -> nl/vu zone chain, DNSsec-signed.
        self.root_zone = SignedZone(Zone(""), keys=self._zone_keys.get(""))
        self.nl_zone = SignedZone(Zone("nl"), keys=self._zone_keys.get("nl"))
        self.vu_zone = SignedZone(Zone("nl/vu"), keys=self._zone_keys.get("nl/vu"))
        self.naming = NameService(self.root_zone)
        self.naming.add_zone(self.nl_zone)
        self.naming.add_zone(self.vu_zone)
        self.naming_store = None
        if self.data_dir is not None:
            from repro.naming.persistence import DurableNamingStore

            self.naming_store = DurableNamingStore(
                os.path.join(self.data_dir, "naming"), sync=self.storage_sync
            )
            self.naming_store.bind(self.naming)

        # Location: one domain tree with the three sites.
        tree = DomainTree()
        for site in sorted(set(HOST_SITE.values())):
            tree.add_site(site)
        self.location_service = LocationService(tree)
        self.location_store = None
        if self.data_dir is not None:
            from repro.location.persistence import DurableLocationStore

            self.location_store = DurableLocationStore(
                os.path.join(self.data_dir, "location"), sync=self.storage_sync
            )
            self.location_store.bind(self.location_service)

        # GlobeDoc object server + baselines, all on ginger.
        services_host = self.network.host(SERVICES_HOST)
        self.object_server = ObjectServer(
            host=SERVICES_HOST,
            site=HOST_SITE[SERVICES_HOST],
            clock=self.clock,
            tracer=self.tracer,
            metrics=self.metrics,
            compute_context=services_host.compute,
            data_dir=(
                os.path.join(self.data_dir, "objectserver")
                if self.data_dir is not None
                else None
            ),
            storage_sync=self.storage_sync,
        )
        self.http_server = StaticHttpServer(host=SERVICES_HOST)
        self.ssl_server = SslServer(
            host=SERVICES_HOST, compute_context=services_host.compute_native
        )

        self.network.register(
            Endpoint(SERVICES_HOST, "naming"),
            self.naming.rpc_server(tracer=self.tracer).handle_frame,
        )
        self.network.register(
            Endpoint(SERVICES_HOST, "location"),
            self.location_service.rpc_server(tracer=self.tracer).handle_frame,
        )
        self.network.register(
            Endpoint(SERVICES_HOST, "objectserver"),
            self.object_server.rpc_server().handle_frame,
        )
        self.network.register(
            Endpoint(SERVICES_HOST, "http"), self.http_server.rpc_server().handle_frame
        )
        self.network.register(
            Endpoint(SERVICES_HOST, "https"), self.ssl_server.rpc_server().handle_frame
        )

    @property
    def zone_keys(self) -> Dict[str, object]:
        """The naming zone keys, for handing to a restarted testbed."""
        return {
            "": self.root_zone.keys,
            "nl": self.nl_zone.keys,
            "nl/vu": self.vu_zone.keys,
        }

    def close_stores(self) -> None:
        """Flush and close every durable store (simulated crash or clean
        shutdown — the stores are crash-consistent either way)."""
        self.object_server.close()
        if self.naming_store is not None:
            self.naming_store.close()
        if self.location_store is not None:
            self.location_store.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    @property
    def naming_endpoint(self) -> Endpoint:
        return Endpoint(SERVICES_HOST, "naming")

    @property
    def location_endpoint(self) -> Endpoint:
        return Endpoint(SERVICES_HOST, "location")

    @property
    def objectserver_endpoint(self) -> Endpoint:
        return Endpoint(SERVICES_HOST, "objectserver")

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(
        self,
        owner: DocumentOwner,
        validity: float = 24 * 3600.0,
        ttl: float = 3600.0,
        per_element_expiry=None,
    ) -> PublishedObject:
        """Publish *owner*'s document: replica on ginger, naming +
        location records registered. Also mirrors the elements onto the
        HTTP and SSL baseline servers (same bytes, same host) so the
        Fig. 5–7 comparison is apples-to-apples. ``per_element_expiry``
        passes absolute per-element expiry overrides to the owner's
        certificate (name → timestamp)."""
        document = owner.publish(
            validity=validity, per_element_expiry=per_element_expiry
        )
        self.object_server.keystore.authorize(owner.name, owner.public_key)

        # Owner pushes from the secondary VU host (as in the paper: the
        # owner workstation is not the serving host).
        admin = AdminClient(
            RpcClient(self.network.transport_for("sporty.cs.vu.nl")),
            self.objectserver_endpoint,
            owner.keys,
            self.clock,
        )
        result = admin.create_replica(document)
        address = ContactAddress.from_dict(result["address"])

        site = HOST_SITE[SERVICES_HOST]
        # Through the service surface (not the raw tree) so a durable
        # testbed journals the insert.
        self.location_service.insert(owner.oid.hex, site, address.to_dict())
        self.naming.register(OidRecord(name=owner.name, oid=owner.oid, ttl=ttl))

        for name, element in document.elements.items():
            path = f"{owner.name}/{name}"
            self.http_server.put_file(path, element.content)
            self.ssl_server.put_file(path, element.content)

        published = PublishedObject(
            owner=owner,
            document=document,
            name=owner.name,
            replica_addresses={site: address},
        )
        self._published[owner.oid.hex] = published
        return published

    def published(self, oid_hex: str) -> PublishedObject:
        return self._published[oid_hex]

    # ------------------------------------------------------------------
    # Client stacks
    # ------------------------------------------------------------------

    def client_stack(
        self,
        host_name: str,
        trust_store: Optional[TrustStore] = None,
        cache_binding: bool = True,
        location_ttl: float = 60.0,
        verification_cache: Optional["VerificationCache"] = None,
        content_cache=None,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[ReplicaHealthTracker] = None,
        transport=None,
        max_rebinds: int = 3,
        tracer=None,
        revocation_max_staleness: Optional[float] = None,
        revocation_poll_interval: Optional[float] = None,
        revocation_cursor_dir: Optional[str] = None,
        metrics=None,
        pipeline: Optional[PipelineConfig] = None,
    ) -> ClientStack:
        """Wire a full proxy stack on *host_name*.

        ``verification_cache`` (off by default, keeping the paper's
        every-access-pays-in-full methodology for Fig. 4) enables the
        signature-verification fast path; ``content_cache`` attaches a
        verified-element cache to the proxy. ``retry_policy`` (off by
        default, keeping single-shot RPC semantics for the figures)
        wraps the stack's RPC client in backoff retries; ``health``
        attaches a shared replica-health tracker to the retry layer and
        the binder. ``transport`` overrides the host transport (chaos
        runs interpose a :class:`~repro.net.faults.FlakyTransport`).
        ``tracer`` threads one access-pipeline tracer through every
        layer of the stack (proxy, session, binder, checks, RPC).
        ``revocation_max_staleness`` (off by default, keeping the
        paper's six-check pipeline for the figures) attaches a
        :class:`~repro.revocation.checker.RevocationChecker` pulling
        the ginger object server's feed, enabling the seventh check;
        ``revocation_poll_interval`` overrides its refresh cadence;
        ``revocation_cursor_dir`` persists the checker's cursor (head +
        verified statements) so a restarted client resumes with no
        fail-open window.
        ``metrics`` (default: the testbed's registry, else disabled)
        threads one shared :class:`~repro.obs.metrics.MetricsRegistry`
        through every layer; per-client gauges are labeled with
        ``host_name``. ``pipeline`` (off by default) wraps the RPC
        client in a :class:`~repro.proxy.pipeline.PrefetchingRpcClient`
        and installs an :class:`~repro.proxy.pipeline.AccessScheduler`
        on the proxy, enabling the concurrent batched access pipeline
        behind ``proxy.handle_many``.
        """
        host = self.network.host(host_name)
        if metrics is None:
            metrics = self.metrics
        if transport is None:
            transport = self.network.transport_for(host_name)
        rpc = RpcClient(transport, tracer=tracer, metrics=metrics)
        if retry_policy is not None:
            rpc = RetryingRpcClient(
                rpc, retry_policy, clock=self.clock, health=health, tracer=tracer,
                metrics=metrics,
            )
        prefetcher = None
        if pipeline is not None:
            prefetcher = PrefetchingRpcClient(rpc, metrics=metrics, tracer=tracer)
            rpc = prefetcher
        resolver = SecureResolver(
            rpc, self.naming_endpoint, self.naming.root_key, clock=self.clock
        )
        location = LocationClient(
            rpc,
            self.location_endpoint,
            origin_site=HOST_SITE[host_name],
            clock=self.clock,
            cache_ttl=location_ttl,
        )
        binder = Binder(resolver, location, rpc, health=health, tracer=tracer)
        revocation = None
        if revocation_max_staleness is not None:
            cursor_store = None
            if revocation_cursor_dir is not None:
                from repro.storage.store import DurableStore

                cursor_store = DurableStore(
                    revocation_cursor_dir, sync=self.storage_sync
                )
            revocation = RevocationChecker(
                rpc,
                self.objectserver_endpoint,
                self.clock,
                max_staleness=revocation_max_staleness,
                poll_interval=revocation_poll_interval,
                verification_cache=verification_cache,
                content_cache=content_cache,
                metrics=metrics,
                metrics_client=host_name,
                store=cursor_store,
                tracer=tracer,
            )
        checker = SecurityChecker(
            self.clock,
            trust_store=trust_store,
            compute_context=host.compute,
            verification_cache=verification_cache,
            revocation_checker=revocation,
            tracer=tracer,
            metrics=metrics,
        )
        proxy = GlobeDocProxy(
            binder, checker, rpc,
            cache_binding=cache_binding,
            content_cache=content_cache,
            max_rebinds=max_rebinds,
            tracer=tracer,
            metrics=metrics,
            metrics_client=host_name,
        )
        scheduler = None
        if prefetcher is not None:
            scheduler = AccessScheduler(
                proxy, prefetcher, config=pipeline, tracer=tracer, metrics=metrics
            )
            proxy.scheduler = scheduler
        return ClientStack(
            host=host,
            transport=transport,
            rpc=rpc,
            resolver=resolver,
            location=location,
            binder=binder,
            checker=checker,
            proxy=proxy,
            revocation=revocation,
            scheduler=scheduler,
        )

    def ssl_client(self, host_name: str) -> SslClient:
        """An HTTPS client on *host_name* against the ginger SSL server."""
        host = self.network.host(host_name)
        rpc = RpcClient(self.network.transport_for(host_name))
        # wget+OpenSSL is native code: CPU factor applies, JVM memory
        # pressure does not (see SimHost.compute_native).
        return SslClient(
            rpc, self.ssl_server.endpoint, compute_context=host.compute_native
        )

    def charge_client_overhead(self) -> float:
        """The fixed browser→proxy cost per access (non-security).

        Advances the clock; returns the seconds charged so callers can
        record it as a timer phase.
        """
        overhead = self.topology.client_overhead
        self.clock.advance(overhead)
        return overhead
