"""Load simulation: request traces driven through the full stack.

The paper's motivation (§1) is quantitative — "the single hosting
server simply cannot cope (CPU-wise or bandwidth-wise) with the sudden
high demands" — so the harness includes a load simulator: a time-
ordered trace of client requests executed against the testbed on the
shared simulated clock.

Model: the simulated clock is a serialised resource (one request at a
time network-wide), i.e. a single-queue approximation of the congested
path. A request arriving while earlier work is still in flight *waits*;
its client-perceived latency is queue wait + service time. Under a
flash crowd served transatlantically, waits explode; after a replica is
placed near the crowd, per-request service time collapses and the queue
drains — the relief the paper's architecture exists to provide. The
approximation overstates cross-site contention (all links share the
queue), so reported waits are an upper bound; the before/after contrast
is the meaningful output.

One proxy is shared per site, mirroring the paper's deployment of a
GlobeDoc proxy per client site (binding/cert work is thus amortised the
way it would be in practice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.harness.experiment import Testbed
from repro.util.stats import Summary, summarize
from repro.workloads.trace import RequestEvent

__all__ = ["LoadSimulator", "LoadedRequest", "LoadReport", "SITE_HOSTS"]

#: Default mapping from location-tree sites to client hosts.
SITE_HOSTS = {
    "root/europe/vu": "sporty.cs.vu.nl",
    "root/europe/inria": "canardo.inria.fr",
    "root/us/cornell": "ensamble02.cornell.edu",
}


@dataclass(frozen=True)
class LoadedRequest:
    """One executed request with its timing breakdown."""

    event: RequestEvent
    arrival: float
    started: float
    completed: float
    ok: bool

    @property
    def wait(self) -> float:
        """Queueing delay before service began."""
        return self.started - self.arrival

    @property
    def service(self) -> float:
        return self.completed - self.started

    @property
    def latency(self) -> float:
        """Client-perceived: wait + service."""
        return self.completed - self.arrival


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    requests: List[LoadedRequest] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.requests)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.requests if not r.ok)

    def latency_summary(
        self,
        site: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Summary:
        """Latency stats, optionally filtered by site and arrival window
        (window bounds are trace-relative seconds)."""
        selected = [
            r.latency
            for r in self.requests
            if (site is None or r.event.site == site)
            and (start is None or r.event.time >= start)
            and (end is None or r.event.time < end)
        ]
        if not selected:
            raise ReproError("no requests match the latency filter")
        return summarize(selected)

    @property
    def max_wait(self) -> float:
        return max((r.wait for r in self.requests), default=0.0)


class LoadSimulator:
    """Executes request traces against a testbed, one site-proxy each."""

    def __init__(
        self,
        testbed: Testbed,
        url_of: Callable[[RequestEvent], str],
        site_hosts: Optional[Mapping[str, str]] = None,
        location_ttl: float = 5.0,
    ) -> None:
        self.testbed = testbed
        self.url_of = url_of
        self.site_hosts = dict(site_hosts or SITE_HOSTS)
        self.location_ttl = location_ttl
        self._proxies: Dict[str, object] = {}

    def _proxy_for(self, site: str):
        proxy = self._proxies.get(site)
        if proxy is None:
            host = self.site_hosts.get(site)
            if host is None:
                raise ReproError(f"no client host configured for site {site!r}")
            stack = self.testbed.client_stack(host, location_ttl=self.location_ttl)
            proxy = stack.proxy
            # Bindings follow replica placement at the location-cache
            # cadence — without this a site proxy would keep using the
            # first replica it ever bound to.
            proxy.session_ttl = self.location_ttl
            self._proxies[site] = proxy
        return proxy

    def run(
        self,
        trace: Sequence[RequestEvent],
        on_request: Optional[Callable[[RequestEvent], None]] = None,
    ) -> LoadReport:
        """Execute *trace* in arrival order; returns the report.

        *on_request* fires after each request — the hook where a
        replication coordinator observes demand and reacts (its own
        placement work also consumes simulated time, as it should).
        """
        clock = self.testbed.clock
        base = clock.now()
        report = LoadReport()
        for event in sorted(trace, key=lambda e: e.time):
            arrival = base + event.time
            if clock.now() < arrival:
                clock.advance_to(arrival)
            started = clock.now()
            proxy = self._proxy_for(event.site)
            response = proxy.handle(self.url_of(event))
            completed = clock.now()
            report.requests.append(
                LoadedRequest(
                    event=event,
                    arrival=arrival,
                    started=started,
                    completed=completed,
                    ok=response.ok,
                )
            )
            if on_request is not None:
                on_request(event)
        return report
