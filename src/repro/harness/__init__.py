"""Experiment harness: regenerates every table and figure of §4.

* :mod:`~repro.harness.experiment` — testbed wiring (topology, services,
  servers, client stacks).
* :mod:`~repro.harness.table1` — the experimental-setting table.
* :mod:`~repro.harness.fig4` — security-overhead-vs-size experiment.
* :mod:`~repro.harness.fig567` — GlobeDoc vs Apache vs Apache+SSL.
* :mod:`~repro.harness.ablations` — design-choice ablations.
* :mod:`~repro.harness.report` — text rendering of result tables.

Run ``python -m repro.harness <table1|fig4|fig5|fig6|fig7|all>``.
"""

from repro.harness.experiment import Testbed, ClientStack, PublishedObject
from repro.harness.fig4 import Fig4Row, run_fig4
from repro.harness.fig567 import Fig567Row, run_fig567, run_fig567_for_client
from repro.harness.table1 import table1_rows
from repro.harness.report import render_table

__all__ = [
    "Testbed",
    "ClientStack",
    "PublishedObject",
    "Fig4Row",
    "run_fig4",
    "Fig567Row",
    "run_fig567",
    "run_fig567_for_client",
    "table1_rows",
    "render_table",
]
