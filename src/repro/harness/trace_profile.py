"""Trace profile: replay a workload, decompose every access into spans.

The paper's Fig. 4 methodology — "placing timers in various parts of
the proxy and server code" — aggregated per-phase stopwatches. This
harness goes one level deeper with the :mod:`repro.obs` tracing layer:
one tracer, clocked by the testbed's :class:`~repro.sim.clock.SimClock`,
is threaded through every layer of the client stack (proxy → session →
binder → checks → retry → RPC) *and* the object server, then a
three-part workload is replayed through it:

* **honest** — repeated accesses to a multi-element document with the
  verification fast path and the verified-content cache enabled, with
  periodic session drops so cold binds keep appearing;
* **flaky** — the same document through a lossy transport with
  retry/backoff enabled, so ``rpc.attempt`` spans show where a flaky
  access's time goes;
* **adversarial** — one probe per violated security property
  (authenticity, consistency, freshness), each expected to close the
  responsible ``check.*`` span with error status.

The output, ``BENCH_trace_profile.json``, carries the per-span-name
latency breakdown (count / errors / total / p50 / p95), the slowest
retained spans, a census of which check rejected what, and a
consistency cross-check: because the sim clock only advances inside
timer phases, the summed ``proxy.handle`` span time must equal the
summed end-to-end :class:`~repro.proxy.metrics.AccessMetrics` totals.

Run with ``python -m repro.harness trace [--quick]``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_server import (
    ElementSwapBehavior,
    MaliciousReplica,
    TamperBehavior,
)
from repro.crypto.keys import KeyPair
from repro.crypto.verifycache import VerificationCache
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.net.address import Endpoint
from repro.net.faults import FaultPlan, FlakyTransport
from repro.net.retry import RetryPolicy
from repro.obs import RingBufferSink, SpanStats, Tracer
from repro.proxy.contentcache import ContentCache
from repro.proxy.pipeline import PipelineConfig
from repro.sim.clock import SimClock
from repro.sim.random import derive_seed

__all__ = [
    "REPORT_NAME",
    "run_trace",
    "check_report",
    "render_trace",
    "write_report",
]

REPORT_NAME = "BENCH_trace_profile.json"

CLIENT_HOST = "sporty.cs.vu.nl"
FLAKY_HOST = "ensamble02.cornell.edu"

#: The traced document: a small page plus a large asset, so the
#: size-proportional ``check.element_hash`` span is visible next to the
#: constant-cost checks.
ELEMENTS = {
    "index.html": b"<html><body>" + b"trace me " * 128 + b"</body></html>",
    "style.css": b"body { margin: 0; } /* traced */",
    "banner.png": bytes(range(256)) * 64,
}

SESSION_DROP_EVERY = 6

#: Span names the honest workload must produce — one per instrumented
#: pipeline layer. A missing name means an instrumentation point was
#: unplugged.
EXPECTED_SPANS = (
    "proxy.handle",
    "session.establish",
    "session.fetch",
    "bind.resolve",
    "bind.locate",
    "check.public_key",
    "check.certificate",
    "check.consistency",
    "check.element_hash",
    "check.freshness",
    "cache.get",
    "cache.put",
    "rpc.call",
    "server.handle",
)

#: Adversarial probes: every violated property must be rejected by its
#: own check's span (name → expected error type).
EXPECTED_REJECTIONS = {
    "check.element_hash": "AuthenticityError",
    "check.consistency": "ConsistencyError",
    "check.freshness": "FreshnessError",
}

#: Consistency gate: summed root-span time vs summed access metrics.
CONSISTENCY_TOLERANCE = 0.05


def _make_document(testbed: Testbed, name: str, **publish_kwargs):
    owner = DocumentOwner(name, keys=KeyPair.generate(1024), clock=testbed.clock)
    for element_name, content in ELEMENTS.items():
        owner.put_element(PageElement(element_name, content))
    return testbed.publish(owner, **publish_kwargs)


def _attempt_share(ring: RingBufferSink) -> Dict[str, float]:
    """How much ``rpc.attempt`` time sits *inside* ``proxy.handle``.

    Spans carry parent links, so each attempt can be attributed: an
    attempt whose ancestor chain reaches ``proxy.handle`` blocked an
    access being served; one under ``pipeline.schedule``'s prefetch ran
    off the serving path. The *share* is in-handle attempt time over
    total handle time — the fraction of request handling spent waiting
    on the wire, which is exactly what the concurrent pipeline exists to
    shrink.
    """
    spans = ring.spans
    by_id = {span.span_id: span for span in spans}
    handle_total = 0.0
    attempt_total = 0.0
    attempt_in_handle = 0.0
    for span in spans:
        if span.name == "proxy.handle":
            handle_total += span.duration
        elif span.name == "rpc.attempt":
            attempt_total += span.duration
            parent = span.parent_id
            while parent is not None:
                ancestor = by_id.get(parent)
                if ancestor is None:
                    break
                if ancestor.name == "proxy.handle":
                    attempt_in_handle += span.duration
                    break
                parent = ancestor.parent_id
    return {
        "handle_total_s": handle_total,
        "rpc_attempt_total_s": attempt_total,
        "rpc_attempt_in_handle_s": attempt_in_handle,
        "rpc_attempt_share": (
            attempt_in_handle / handle_total if handle_total else 0.0
        ),
    }


def _run_pipeline_mode(
    pipelined: bool, waves: int, seed: int
) -> Dict[str, object]:
    """One mode of the pipeline comparison: same document, same waves,
    fresh testbed/clock/tracer, retry layer enabled in both."""
    ring = RingBufferSink(capacity=8192)
    stats = SpanStats()
    clock = SimClock()
    tracer = Tracer(clock=clock, sinks=(ring, stats))
    testbed = Testbed(clock=clock, tracer=tracer)
    published = _make_document(testbed, "vu.nl/trace-pipe", validity=7 * 24 * 3600.0)
    stack = testbed.client_stack(
        CLIENT_HOST,
        verification_cache=VerificationCache(),
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay=0.02, seed=derive_seed(seed, "pipe-retry")
        ),
        tracer=tracer,
        pipeline=PipelineConfig() if pipelined else None,
    )
    urls = [published.url(name) for name in ELEMENTS]
    ok = 0
    start = clock.now()
    for _ in range(waves):
        responses = stack.proxy.handle_many(urls)
        ok += sum(1 for response in responses if response.ok)
        stack.proxy.drop_all_sessions()
    elapsed = clock.now() - start
    phases = stats.stats()
    result: Dict[str, object] = {
        "pipelined": pipelined,
        "requests": waves * len(urls),
        "ok": ok,
        "elapsed_s": elapsed,
        "pipeline_spans": {
            name: phases[name]["count"]
            for name in ("pipeline.schedule", "pipeline.prefetch", "pipeline.batch_verify")
            if name in phases
        },
    }
    result.update(_attempt_share(ring))
    return result


def run_pipeline_comparison(quick: bool = False, seed: int = 0) -> Dict[str, object]:
    """Sequential vs concurrent pipeline over the traced document."""
    waves = 3 if quick else 6
    sequential = _run_pipeline_mode(pipelined=False, waves=waves, seed=seed)
    pipelined = _run_pipeline_mode(pipelined=True, waves=waves, seed=seed)
    return {
        "waves": waves,
        "requests_per_wave": len(ELEMENTS),
        "sequential": sequential,
        "pipelined": pipelined,
        "speedup": (
            sequential["elapsed_s"] / pipelined["elapsed_s"]
            if pipelined["elapsed_s"]
            else float("inf")
        ),
    }


def run_trace(quick: bool = False, seed: int = 0) -> dict:
    """Replay the three-part workload, return the JSON-ready report."""
    honest_requests = 24 if quick else 96
    flaky_requests = 12 if quick else 48

    ring = RingBufferSink(capacity=8192)
    stats = SpanStats()
    # The tracer and the testbed must share one clock: spans measure
    # simulated time, and the consistency gate below depends on it.
    clock = SimClock()
    tracer = Tracer(clock=clock, sinks=(ring, stats))
    testbed = Testbed(clock=clock, tracer=tracer)

    published = _make_document(testbed, "vu.nl/trace", validity=7 * 24 * 3600.0)
    names = list(ELEMENTS)
    metrics_total = 0.0

    # ------------------------------------------------------------ honest
    stack = testbed.client_stack(
        CLIENT_HOST,
        verification_cache=VerificationCache(),
        content_cache=ContentCache(clock=clock, ttl=30.0, tracer=tracer),
        tracer=tracer,
    )
    honest_ok = 0
    for i in range(honest_requests):
        if i % SESSION_DROP_EVERY == 0:
            stack.proxy.drop_all_sessions()
        response = stack.proxy.handle(published.url(names[i % len(names)]))
        if response.ok:
            honest_ok += 1
        if response.metrics is not None:
            metrics_total += response.metrics.total

    # ------------------------------------------------------------- flaky
    plan = FaultPlan(
        drop_probability=0.15, seed=derive_seed(seed, "trace-faults")
    )
    flaky = FlakyTransport(testbed.network.transport_for(FLAKY_HOST), plan)
    policy = RetryPolicy(
        max_attempts=4,
        base_delay=0.02,
        max_delay=0.5,
        seed=derive_seed(seed, "trace-retry"),
    )
    flaky_stack = testbed.client_stack(
        FLAKY_HOST, transport=flaky, retry_policy=policy, tracer=tracer
    )
    flaky_ok = 0
    for i in range(flaky_requests):
        if i % SESSION_DROP_EVERY == 0:
            flaky_stack.proxy.drop_all_sessions()
        response = flaky_stack.proxy.handle(published.url(names[i % len(names)]))
        if response.ok:
            flaky_ok += 1
        if response.metrics is not None:
            metrics_total += response.metrics.total

    # ------------------------------------------------------- adversarial
    probes: Dict[str, str] = {}

    def probe(label: str, proxy, url: str, genuine: bytes) -> None:
        result = run_attack_probe(proxy, url, genuine)
        probes[label] = (
            result.failure_type
            if result.outcome is AttackOutcome.DETECTED
            else str(result.outcome)
        )
        if result.response.metrics is not None:
            nonlocal metrics_total
            metrics_total += result.response.metrics.total

    # Authenticity: a tampering replica at the Paris client's own site.
    tamper = MaliciousReplica(
        host="canardo.inria.fr",
        document=published.document,
        behavior=TamperBehavior(target="index.html"),
    )
    testbed.network.register(
        Endpoint("canardo.inria.fr", "objectserver"),
        tamper.rpc_server().handle_frame,
    )
    testbed.location_service.tree.insert(
        published.owner.oid.hex, "root/europe/inria", tamper.contact_address()
    )
    paris = testbed.client_stack(
        "canardo.inria.fr", max_rebinds=0, tracer=tracer
    )
    probe(
        "tamper",
        paris.proxy,
        published.url("index.html"),
        ELEMENTS["index.html"],
    )

    # Consistency: an element-swapping replica at the Cornell site.
    swap = MaliciousReplica(
        host=FLAKY_HOST,
        document=published.document,
        behavior=ElementSwapBehavior(
            when_asked_for="index.html", serve_instead="style.css"
        ),
    )
    # The honest Cornell-side stack used the real object server on
    # ginger; the swap replica hijacks the local site's lookup ring.
    testbed.network.register(
        Endpoint(FLAKY_HOST, "objectserver"), swap.rpc_server().handle_frame
    )
    testbed.location_service.tree.insert(
        published.owner.oid.hex, "root/us/cornell", swap.contact_address()
    )
    cornell = testbed.client_stack(FLAKY_HOST, max_rebinds=0, tracer=tracer)
    probe(
        "element_swap",
        cornell.proxy,
        published.url("index.html"),
        ELEMENTS["index.html"],
    )

    # Freshness: a second document whose element entry expires shortly,
    # accessed after the deadline (the certificate itself stays valid).
    fresh = _make_document(
        testbed,
        "vu.nl/trace-fresh",
        validity=3600.0,
        per_element_expiry={"index.html": testbed.clock.now() + 60.0},
    )
    testbed.clock.advance(61.0)
    amsterdam = testbed.client_stack(CLIENT_HOST, max_rebinds=0, tracer=tracer)
    probe(
        "stale_element",
        amsterdam.proxy,
        fresh.url("index.html"),
        ELEMENTS["index.html"],
    )

    # ------------------------------------------------- pipeline modes
    pipeline_comparison = run_pipeline_comparison(quick=quick, seed=seed)

    # ------------------------------------------------------------ report
    phases = stats.stats()
    span_total = phases.get("proxy.handle", {}).get("total_s", 0.0)
    ratio = span_total / metrics_total if metrics_total else 0.0
    report = {
        "name": "trace_profile",
        "quick": quick,
        "seed": seed,
        "workload": {
            "honest_requests": honest_requests,
            "honest_ok": honest_ok,
            "flaky_requests": flaky_requests,
            "flaky_ok": flaky_ok,
            "probes": probes,
            "elements": len(ELEMENTS),
        },
        "phases": phases,
        "pipeline_comparison": pipeline_comparison,
        "slowest_spans": [span.to_dict() for span in ring.slowest(15)],
        "spans_seen": ring.seen,
        "spans_dropped": ring.dropped,
        "security_rejections": stats.error_census("check."),
        "consistency": {
            "span_total_s": span_total,
            "metrics_total_s": metrics_total,
            "ratio": ratio,
        },
    }
    report["criteria"] = {"problems": check_report(report)}
    return report


def check_report(report: dict) -> List[str]:
    """CI-gate violations (empty = pass).

    * every instrumented layer produced spans;
    * the honest workload fully succeeded;
    * each adversarial probe was rejected by the expected check's span
      with the expected error type;
    * the summed root-span time matches the summed end-to-end access
      metrics within :data:`CONSISTENCY_TOLERANCE`.
    """
    problems: List[str] = []
    phases = report.get("phases", {})
    for name in EXPECTED_SPANS:
        if name not in phases:
            problems.append(f"no {name!r} spans recorded")
    workload = report.get("workload", {})
    if workload.get("honest_ok") != workload.get("honest_requests"):
        problems.append(
            f"honest workload degraded: {workload.get('honest_ok')}/"
            f"{workload.get('honest_requests')} ok"
        )
    rejections = report.get("security_rejections", {})
    for span_name, error_type in EXPECTED_REJECTIONS.items():
        if error_type not in rejections.get(span_name, {}):
            problems.append(
                f"expected {span_name!r} to reject with {error_type}, "
                f"got {rejections.get(span_name)}"
            )
    ratio = report.get("consistency", {}).get("ratio", 0.0)
    if abs(ratio - 1.0) > CONSISTENCY_TOLERANCE:
        problems.append(
            f"span/metrics consistency ratio {ratio:.4f} outside "
            f"1 ± {CONSISTENCY_TOLERANCE}"
        )
    comparison = report.get("pipeline_comparison")
    if comparison is not None:
        sequential = comparison["sequential"]
        pipelined = comparison["pipelined"]
        for mode in (sequential, pipelined):
            if mode.get("ok") != mode.get("requests"):
                problems.append(
                    f"pipeline-comparison workload degraded "
                    f"({'pipelined' if mode.get('pipelined') else 'sequential'}: "
                    f"{mode.get('ok')}/{mode.get('requests')} ok)"
                )
        if pipelined["rpc_attempt_share"] >= sequential["rpc_attempt_share"]:
            problems.append(
                "pipelined rpc.attempt share of proxy.handle did not shrink: "
                f"{pipelined['rpc_attempt_share']:.3f} vs sequential "
                f"{sequential['rpc_attempt_share']:.3f}"
            )
        if pipelined["elapsed_s"] > sequential["elapsed_s"]:
            problems.append(
                "pipelined workload slower than sequential: "
                f"{pipelined['elapsed_s']:.3f} s vs {sequential['elapsed_s']:.3f} s"
            )
        for name in ("pipeline.schedule", "pipeline.prefetch", "pipeline.batch_verify"):
            if not pipelined.get("pipeline_spans", {}).get(name):
                problems.append(f"no {name!r} spans recorded in pipelined mode")
    return problems


def render_trace(report: dict) -> str:
    """Human-readable per-phase table plus the rejection census."""
    from repro.harness.report import render_table

    rows = []
    phases = report["phases"]
    for name in sorted(phases, key=lambda n: -phases[n]["total_s"]):
        s = phases[name]
        rows.append(
            [
                name,
                str(s["count"]),
                str(s["errors"]),
                f"{s['total_s'] * 1e3:.1f} ms",
                f"{s['p50_s'] * 1e3:.2f} ms",
                f"{s['p95_s'] * 1e3:.2f} ms",
            ]
        )
    table = render_table(
        ["span", "count", "errors", "total", "p50", "p95"], rows
    )
    lines = [
        "Trace profile — access pipeline span breakdown",
        table,
        "",
        "security rejections:",
    ]
    for span_name, census in sorted(report["security_rejections"].items()):
        for error_type, count in sorted(census.items()):
            lines.append(f"  {span_name}: {error_type} x{count}")
    consistency = report["consistency"]
    lines.append(
        f"consistency: span {consistency['span_total_s']:.3f} s vs "
        f"metrics {consistency['metrics_total_s']:.3f} s "
        f"(ratio {consistency['ratio']:.4f})"
    )
    comparison = report.get("pipeline_comparison")
    if comparison is not None:
        lines.append("")
        lines.append("pipeline comparison (same waves, retry on, simulated time):")
        for mode in (comparison["sequential"], comparison["pipelined"]):
            label = "pipelined" if mode["pipelined"] else "sequential"
            lines.append(
                f"  {label:<11}{mode['elapsed_s']:8.3f} s elapsed,"
                f" rpc.attempt in-handle share {mode['rpc_attempt_share']:.3f}"
                f" ({mode['ok']}/{mode['requests']} ok)"
            )
        lines.append(f"  speedup: {comparison['speedup']:.2f}x")
    return "\n".join(lines)


def write_report(report: dict, path: pathlib.Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
