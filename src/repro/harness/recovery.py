"""Recovery bench: kill/restart the testbed, gate the fail-closed story.

The durability subsystem (``repro.storage``) exists so that a restart is
an *operational* event, not a security event. This harness makes that
claim measurable. Four scenarios, each a gate:

* **Replica recovery** — publish documents into a durable testbed, kill
  it (close the stores; nothing survives but the disk), restart over the
  same directory. Every replica must come back **re-verified** (OID
  self-certification, integrity signature, element hashes — recovered
  bytes are untrusted until proven, exactly like fetched bytes), naming
  and location must answer again, clients must fetch byte-identical
  content, and the write path must accept new publishes.
* **Revocation resume** — a client whose checker persisted its cursor is
  restarted together with the world. It must reject a known-revoked OID
  *immediately from disk*, before its first feed RPC — the zero
  fail-open window — while still refusing to vouch for clean OIDs until
  a fresh sync. The recovered feed must report its pre-crash head (no
  regression), and a feed that *did* lose its log must be detected by
  the consumer as a :class:`~repro.errors.FeedRegressionError`.
* **Torn tail** — garbage appended to the server journal (a crash
  mid-write) must cost nothing but the torn bytes: every valid record
  recovers, the file heals, serving continues.
* **Tamper fail-closed** — a CRC-valid rewrite of stored replica bytes
  (the attack checksums cannot see) must abort recovery with
  :class:`~repro.errors.RecoveryIntegrityError`, never serve.

Run with ``python -m repro.harness recovery [--quick]``; writes
``BENCH_recovery.json`` for the CI gate.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time
import zlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import FeedRegressionError, RecoveryIntegrityError, TransportError
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.revocation.checker import RevocationChecker
from repro.revocation.feed import RevocationFeed
from repro.revocation.statement import RevocationStatement
from repro.storage.wal import FRAME_HEADER
from repro.util.encoding import canonical_bytes, from_canonical_bytes

__all__ = [
    "ReplicaRecovery",
    "RevocationResume",
    "TornTail",
    "TamperFailClosed",
    "RecoveryReport",
    "run_recovery",
    "render_recovery",
    "write_report",
    "check_report",
    "REPORT_NAME",
]

REPORT_NAME = "BENCH_recovery.json"

MAX_STALENESS = 60.0


@dataclass
class ReplicaRecovery:
    """Kill/restart over the same data directory: what came back."""

    documents: int = 0
    recovered_replicas: int = 0
    reverified_replicas: int = 0
    naming_records_recovered: int = 0
    location_addresses_recovered: int = 0
    restart_cycles: int = 0
    accesses_after_restart: int = 0
    accesses_ok: int = 0
    content_intact: bool = False
    post_restart_publish_ok: bool = False
    recovery_wall_seconds: float = -1.0


@dataclass
class RevocationResume:
    """The consumer cursor across a restart: the fail-open window gate."""

    feed_head_before: int = 0
    feed_head_after: int = 0
    feed_statements_recovered: int = 0
    cursor_statements_recovered: int = 0
    revoked_rejected_from_disk: bool = False
    refreshes_at_rejection: int = -1
    rejection_error: str = ""
    staleness_reset: bool = False
    clean_access_ok_after_sync: bool = False
    head_after_sync: int = 0
    regression_detected: bool = False


@dataclass
class TornTail:
    """Crash mid-append: only the torn suffix may be lost."""

    torn_bytes_dropped: int = 0
    recovered_replicas: int = 0
    expected_replicas: int = 0
    accesses_ok: int = 0
    accesses_after_restart: int = 0


@dataclass
class TamperFailClosed:
    """CRC-valid tampering at rest must abort recovery, never serve."""

    failed_closed: bool = False
    error_type: str = ""
    error_excerpt: str = ""


@dataclass
class RecoveryReport:
    """Everything the CI gate and the bench-report digest consume."""

    seed: int
    quick: bool
    replica: ReplicaRecovery = field(default_factory=ReplicaRecovery)
    revocation: RevocationResume = field(default_factory=RevocationResume)
    torn: TornTail = field(default_factory=TornTail)
    tamper: TamperFailClosed = field(default_factory=TamperFailClosed)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "replica_recovery": asdict(self.replica),
            "revocation_resume": asdict(self.revocation),
            "torn_tail": asdict(self.torn),
            "tamper_fail_closed": asdict(self.tamper),
        }


# ----------------------------------------------------------------------
# World construction
# ----------------------------------------------------------------------


def _documents(quick: bool, seed: int) -> Dict[str, Dict[str, bytes]]:
    """Deterministic per-seed content: name → {element: bytes}."""
    count = 2 if quick else 5
    documents = {}
    for i in range(count):
        name = f"vu.nl/recovery-{seed}-{i}"
        documents[name] = {
            "index.html": f"<html>doc {i} seed {seed}</html>".encode(),
            "data.bin": bytes((i * 37 + j * 11 + seed) % 256 for j in range(64)),
        }
    return documents


def _populate(testbed: Testbed, contents: Dict[str, Dict[str, bytes]]) -> None:
    for name, elements in contents.items():
        owner = DocumentOwner(name, keys=_keys(), clock=testbed.clock)
        for element_name, content in elements.items():
            owner.put_element(PageElement(element_name, content))
        testbed.publish(owner, validity=7 * 24 * 3600.0)


def _keys():
    from repro.crypto.keys import KeyPair

    return KeyPair.generate(1024)


def _restart(testbed: Testbed, data_dir: str) -> Testbed:
    """The kill/restart primitive: close the stores, rebuild the world
    from nothing but the directory (clock and zone keys are the
    operator's configuration and survive out of band)."""
    zone_keys = testbed.zone_keys
    clock = testbed.clock
    testbed.close_stores()
    return Testbed(
        clock=clock, data_dir=data_dir, storage_sync=False, zone_keys=zone_keys
    )


def _verify_serving(
    testbed: Testbed, contents: Dict[str, Dict[str, bytes]], host: str
) -> tuple:
    """Fetch every element through a fresh client; count + byte-compare."""
    from repro.globedoc.urls import HybridUrl

    stack = testbed.client_stack(host)
    attempted = ok = 0
    intact = True
    for name, elements in contents.items():
        for element_name, expected in elements.items():
            attempted += 1
            response = stack.proxy.handle(HybridUrl.for_name(name, element_name).raw)
            if response.ok:
                ok += 1
                if response.content != expected:
                    intact = False
            else:
                intact = False
    return attempted, ok, intact


# ----------------------------------------------------------------------
# Scenario 1: replica recovery
# ----------------------------------------------------------------------


def _run_replica_recovery(quick: bool, seed: int, data_dir: str) -> ReplicaRecovery:
    contents = _documents(quick, seed)
    testbed = Testbed(data_dir=data_dir, storage_sync=False)
    _populate(testbed, contents)

    result = ReplicaRecovery(documents=len(contents))
    cycles = 1 if quick else 3
    for _ in range(cycles):
        started = time.perf_counter()
        testbed = _restart(testbed, data_dir)
        result.recovery_wall_seconds = time.perf_counter() - started
        result.restart_cycles += 1
    result.recovered_replicas = testbed.object_server.recovered_replicas
    result.reverified_replicas = testbed.object_server.reverified_replicas
    if testbed.naming_store is not None:
        result.naming_records_recovered = testbed.naming_store.recovered_records
    if testbed.location_store is not None:
        result.location_addresses_recovered = testbed.location_store.recovered_addresses

    attempted, ok, intact = _verify_serving(testbed, contents, "sporty.cs.vu.nl")
    result.accesses_after_restart = attempted
    result.accesses_ok = ok
    result.content_intact = intact

    # The write path must also have survived: publish one more document
    # through the recovered services and fetch it back.
    extra_name = f"vu.nl/recovery-{seed}-post"
    extra = {extra_name: {"fresh.html": b"<html>published after restart</html>"}}
    _populate(testbed, extra)
    _, extra_ok, extra_intact = _verify_serving(testbed, extra, "canardo.inria.fr")
    result.post_restart_publish_ok = extra_ok == 1 and extra_intact
    testbed.close_stores()
    return result


# ----------------------------------------------------------------------
# Scenario 2: revocation resume
# ----------------------------------------------------------------------


class _DeadRpc:
    """An RPC client that refuses everything: 'before any network'."""

    def call(self, target, method, **kwargs):
        raise TransportError("network not up yet")


def _run_revocation_resume(quick: bool, seed: int, data_dir: str) -> RevocationResume:
    result = RevocationResume()
    cursor_dir = os.path.join(data_dir, "client-cursor")

    contents = _documents(True, seed + 1000)  # two docs: one doomed, one clean
    names = list(contents)
    testbed = Testbed(data_dir=data_dir, storage_sync=False)
    _populate(testbed, contents)
    doomed = next(
        p for p in testbed._published.values() if p.name == names[0]
    )
    clean = next(p for p in testbed._published.values() if p.name == names[1])

    stack = testbed.client_stack(
        "sporty.cs.vu.nl",
        revocation_max_staleness=MAX_STALENESS,
        revocation_cursor_dir=cursor_dir,
    )
    # Warm: sync the cursor, then the compromise lands on the feed.
    assert stack.proxy.handle(doomed.url("index.html")).ok
    statement = RevocationStatement.revoke_key(
        doomed.owner.keys,
        doomed.owner.oid,
        serial=1,
        issued_at=testbed.clock.now(),
        reason="bench: key compromise",
    )
    testbed.object_server.revocation_feed.publish(statement)
    testbed.clock.advance(stack.revocation.poll_interval + 1.0)
    rejected_live = stack.proxy.handle(doomed.url("index.html"))
    assert not rejected_live.ok  # contained pre-crash; the cursor holds it
    result.feed_head_before = testbed.object_server.revocation_feed.head
    stack.revocation.store.close()

    # Kill/restart world and client together.
    testbed = _restart(testbed, data_dir)
    result.feed_head_after = testbed.object_server.revocation_feed.head
    result.feed_statements_recovered = testbed.object_server.revocation_feed.recovered
    stack = testbed.client_stack(
        "sporty.cs.vu.nl",
        revocation_max_staleness=MAX_STALENESS,
        revocation_cursor_dir=cursor_dir,
    )
    checker = stack.revocation
    result.cursor_statements_recovered = checker.stats.statements_recovered
    result.staleness_reset = checker.staleness is None

    # The zero fail-open window: the revoked OID is condemned straight
    # from the recovered cursor, before the checker has reached any feed
    # — enforced by handing it an RPC client that cannot reach one.
    live_rpc, checker.rpc = checker.rpc, _DeadRpc()
    try:
        response = stack.proxy.handle(doomed.url("index.html"))
        result.revoked_rejected_from_disk = (
            not response.ok and response.status == 403
        )
        result.rejection_error = response.security_failure or ""
        result.refreshes_at_rejection = checker.stats.refreshes
    finally:
        checker.rpc = live_rpc

    # Vouching still needs freshness: the first clean access syncs
    # against the recovered feed and must succeed with no regression.
    response = stack.proxy.handle(clean.url("index.html"))
    result.clean_access_ok_after_sync = bool(response.ok)
    result.head_after_sync = checker.head

    # And a feed that *did* lose its log is refused by the consumer.
    result.regression_detected = _probe_regression(testbed)
    testbed.close_stores()
    return result


def _probe_regression(testbed: Testbed) -> bool:
    """A consumer synced past head N, pointed at a feed restarted empty,
    must raise FeedRegressionError rather than accept the sync."""

    class _Shim:
        def __init__(self):
            self.feed = RevocationFeed()

        def call(self, target, method, **kwargs):
            return self.feed.fetch(since=int(kwargs.get("since", 0)))

    shim = _Shim()
    keys = _keys()
    from repro.globedoc.oid import ObjectId

    oid = ObjectId.from_public_key(keys.public)
    shim.feed.publish(
        RevocationStatement.revoke_key(
            keys, oid, serial=1, issued_at=testbed.clock.now(), reason="probe"
        )
    )
    checker = RevocationChecker(
        shim, feed_target=None, clock=testbed.clock, max_staleness=MAX_STALENESS
    )
    checker.refresh()
    shim.feed = RevocationFeed()  # the feed lost its log
    try:
        checker.refresh()
    except FeedRegressionError:
        return checker.stats.head_regressions == 1
    return False


# ----------------------------------------------------------------------
# Scenario 3: torn tail
# ----------------------------------------------------------------------


def _run_torn_tail(quick: bool, seed: int, data_dir: str) -> TornTail:
    contents = _documents(quick, seed + 2000)
    testbed = Testbed(data_dir=data_dir, storage_sync=False)
    _populate(testbed, contents)
    testbed.close_stores()

    # The crash mid-append: half a frame lands after the valid log.
    wal_path = os.path.join(data_dir, "objectserver", "server", "wal.log")
    garbage = FRAME_HEADER.pack(4096, 0xDEADBEEF) + b"\x17" * 100
    with open(wal_path, "ab") as fh:
        fh.write(garbage)

    zone_keys = testbed.zone_keys
    testbed = Testbed(
        clock=testbed.clock,
        data_dir=data_dir,
        storage_sync=False,
        zone_keys=zone_keys,
    )
    result = TornTail(
        torn_bytes_dropped=testbed.object_server.state_store.store.wal.torn_bytes_dropped,
        recovered_replicas=testbed.object_server.recovered_replicas,
        expected_replicas=len(contents),
    )
    attempted, ok, _ = _verify_serving(testbed, contents, "ensamble02.cornell.edu")
    result.accesses_after_restart = attempted
    result.accesses_ok = ok
    testbed.close_stores()
    return result


# ----------------------------------------------------------------------
# Scenario 4: tamper fail-closed
# ----------------------------------------------------------------------


def _run_tamper(seed: int, data_dir: str) -> TamperFailClosed:
    contents = _documents(True, seed + 3000)
    testbed = Testbed(data_dir=data_dir, storage_sync=False)
    _populate(testbed, contents)
    zone_keys = testbed.zone_keys
    clock = testbed.clock
    testbed.close_stores()

    # Rewrite every stored element's bytes and re-checksum the frames:
    # the framing layer sees a perfectly healthy log.
    wal_path = os.path.join(data_dir, "objectserver", "server", "wal.log")
    with open(wal_path, "rb") as fh:
        data = fh.read()
    out = bytearray()
    offset = 0
    while offset < len(data):
        length, _ = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        record = from_canonical_bytes(data[start : start + length])
        document = record.get("__record__", {}).get("document")
        if document:
            for element in document.get("elements", []):
                element["content"] = b"\x00defaced\x00" + element["content"][10:]
        payload = canonical_bytes(record)
        out += FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        out += payload
        offset = start + length
    with open(wal_path, "wb") as fh:
        fh.write(bytes(out))

    result = TamperFailClosed()
    try:
        tampered = Testbed(
            clock=clock, data_dir=data_dir, storage_sync=False, zone_keys=zone_keys
        )
        tampered.close_stores()  # recovery was (wrongly) accepted
    except RecoveryIntegrityError as exc:
        result.failed_closed = True
        result.error_type = type(exc).__name__
        result.error_excerpt = str(exc)[:160]
    return result


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def run_recovery(quick: bool = False, seed: int = 0) -> RecoveryReport:
    """All four scenarios, each in its own scratch directory."""
    report = RecoveryReport(seed=seed, quick=quick)
    scratch = tempfile.mkdtemp(prefix="repro-recovery-")
    try:
        report.replica = _run_replica_recovery(
            quick, seed, os.path.join(scratch, "replica")
        )
        report.revocation = _run_revocation_resume(
            quick, seed, os.path.join(scratch, "revocation")
        )
        report.torn = _run_torn_tail(quick, seed, os.path.join(scratch, "torn"))
        report.tamper = _run_tamper(seed, os.path.join(scratch, "tamper"))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return report


def render_recovery(report: RecoveryReport) -> str:
    from repro.harness.report import render_table

    replica = report.replica
    revocation = report.revocation
    torn = report.torn
    tamper = report.tamper
    rows = [
        [
            "replica recovery",
            f"{replica.recovered_replicas}/{replica.documents} replicas "
            f"({replica.reverified_replicas} re-verified), "
            f"{replica.accesses_ok}/{replica.accesses_after_restart} accesses ok",
            "PASS"
            if replica.content_intact and replica.post_restart_publish_ok
            else "FAIL",
        ],
        [
            "revocation resume",
            f"cursor {revocation.cursor_statements_recovered} stmt, rejected "
            f"from disk after {max(0, revocation.refreshes_at_rejection)} RPCs, "
            f"feed head {revocation.feed_head_before}->{revocation.feed_head_after}",
            "PASS"
            if revocation.revoked_rejected_from_disk and revocation.regression_detected
            else "FAIL",
        ],
        [
            "torn tail",
            f"{torn.torn_bytes_dropped} B dropped, "
            f"{torn.recovered_replicas}/{torn.expected_replicas} replicas, "
            f"{torn.accesses_ok}/{torn.accesses_after_restart} accesses ok",
            "PASS" if torn.recovered_replicas == torn.expected_replicas else "FAIL",
        ],
        [
            "tamper fail-closed",
            tamper.error_type or "recovery accepted tampered bytes",
            "PASS" if tamper.failed_closed else "FAIL",
        ],
    ]
    lines = [
        f"Recovery bench — seed {report.seed}"
        + (" (quick)" if report.quick else "")
        + f", {replica.restart_cycles} restart cycle(s), "
        f"last recovery {replica.recovery_wall_seconds * 1e3:.1f} ms wall",
        render_table(["scenario", "outcome", "gate"], rows),
    ]
    return "\n".join(lines)


def write_report(report: RecoveryReport, path: pathlib.Path) -> None:
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")


def check_report(report: RecoveryReport) -> List[str]:
    """CI-gate violations (empty = pass)."""
    problems: List[str] = []
    replica = report.replica
    if replica.recovered_replicas != replica.documents:
        problems.append(
            f"recovered {replica.recovered_replicas} of {replica.documents} replicas"
        )
    if replica.reverified_replicas != replica.recovered_replicas:
        problems.append(
            f"only {replica.reverified_replicas} of {replica.recovered_replicas} "
            "recovered replicas were re-verified"
        )
    if replica.naming_records_recovered < replica.documents:
        problems.append(
            f"naming recovered {replica.naming_records_recovered} records "
            f"for {replica.documents} documents"
        )
    if replica.location_addresses_recovered < replica.documents:
        problems.append(
            f"location recovered {replica.location_addresses_recovered} addresses "
            f"for {replica.documents} documents"
        )
    if replica.accesses_ok != replica.accesses_after_restart:
        problems.append(
            f"{replica.accesses_after_restart - replica.accesses_ok} accesses "
            "failed after restart"
        )
    if not replica.content_intact:
        problems.append("recovered content did not byte-compare equal")
    if not replica.post_restart_publish_ok:
        problems.append("write path broken after restart (new publish failed)")

    revocation = report.revocation
    if revocation.feed_head_after != revocation.feed_head_before:
        problems.append(
            f"feed head changed across restart: {revocation.feed_head_before} "
            f"-> {revocation.feed_head_after}"
        )
    if revocation.cursor_statements_recovered < 1:
        problems.append("checker cursor recovered no statements")
    if not revocation.revoked_rejected_from_disk:
        problems.append(
            "restarted client served (or mis-failed) a revoked OID before syncing"
        )
    if revocation.refreshes_at_rejection != 0:
        problems.append(
            f"rejection needed {revocation.refreshes_at_rejection} feed RPCs; "
            "the fail-open window is supposed to be zero"
        )
    if revocation.rejection_error != "RevokedKeyError":
        problems.append(
            f"post-restart rejection attributed to {revocation.rejection_error!r}, "
            "not RevokedKeyError"
        )
    if not revocation.staleness_reset:
        problems.append(
            "recovered cursor claims freshness — it must not vouch without a sync"
        )
    if not revocation.clean_access_ok_after_sync:
        problems.append("clean OID inaccessible after restart + sync")
    if revocation.head_after_sync < revocation.feed_head_after:
        problems.append(
            f"checker resumed at head {revocation.head_after_sync}, behind the "
            f"feed's {revocation.feed_head_after}"
        )
    if not revocation.regression_detected:
        problems.append("feed head regression was not detected by the consumer")

    torn = report.torn
    if torn.torn_bytes_dropped <= 0:
        problems.append("torn-tail scenario dropped no bytes (scenario broken)")
    if torn.recovered_replicas != torn.expected_replicas:
        problems.append(
            f"torn tail cost {torn.expected_replicas - torn.recovered_replicas} "
            "valid replicas (must cost only the torn suffix)"
        )
    if torn.accesses_ok != torn.accesses_after_restart:
        problems.append("accesses failed after torn-tail recovery")

    if not report.tamper.failed_closed:
        problems.append(
            "tampered (CRC-valid) store was accepted — recovery served unproven bytes"
        )
    return problems
