"""Revocation bench: compromise-to-containment latency, feed overhead.

Measures the two numbers that price the revocation subsystem:

* **Containment latency** — a key-compromise revocation is published to
  the feed at *t0*; how long until every proxy rejects the compromised
  object? Each proxy polls the feed at half its configured max-staleness
  window, so the latency distribution is bounded by the poll interval —
  the knob the percentiles here make concrete.
* **Steady-state feed overhead** — what the seventh check costs when
  nothing is revoked: mean access time with the checker polling versus
  the plain six-check baseline on the identical request schedule.

The containment world is deliberately adversarial: the replicas live on
servers that never receive the revocation (a compromised or lagging
server keeps serving — exactly the case client-side checking exists
for), while the proxies pull the feed from the ginger object server,
which hosts no replica. Distribution to the feed goes through
:meth:`~repro.replication.coordinator.ReplicationCoordinator.publish_revocation`,
the owner-side path.

Run with ``python -m repro.harness revocation [--quick]``; writes
``BENCH_revocation.json`` for the CI gate.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

from repro.crypto.keys import KeyPair
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.globedoc.urls import HybridUrl
from repro.harness.experiment import ClientStack, Testbed
from repro.location.service import LocationClient
from repro.naming.records import OidRecord
from repro.net.address import ContactAddress, Endpoint
from repro.net.rpc import RpcClient
from repro.replication.coordinator import ReplicationCoordinator, SitePort
from repro.revocation.statement import RevocationStatement
from repro.server.admin import AdminClient
from repro.server.objectserver import ObjectServer
from repro.util.stats import percentile, summarize

__all__ = [
    "ProxyContainment",
    "OverheadPoint",
    "RevocationReport",
    "run_revocation",
    "render_revocation",
    "write_report",
    "check_report",
    "REPORT_NAME",
]

REPORT_NAME = "BENCH_revocation.json"

#: Replica servers that keep serving after the compromise (they never
#: see the revocation) — the case the client-side check exists for.
REPLICA_SITES = {
    "root/europe/inria": "canardo.inria.fr",
    "root/us/cornell": "ensamble02.cornell.edu",
}

CLIENT_HOSTS = ("sporty.cs.vu.nl", "canardo.inria.fr", "ensamble02.cornell.edu")

OWNER_HOST = "sporty.cs.vu.nl"

ELEMENTS = {
    "index.html": b"<html><body>soon to be revoked, genuine until then</body></html>",
    "logo.gif": b"GIF89a-revocation-bench-bytes",
}

#: Smallest max-staleness window in the sweep; proxy *i* gets
#: ``BASE_STALENESS + i * STALENESS_STEP`` (all poll at half their window).
BASE_STALENESS = 20.0
STALENESS_STEP = 10.0

#: Simulated think time between steady-state accesses, and between
#: containment probes — the browsing cadence the poll interval amortises
#: over.
THINK_TIME = 1.0

#: Grace on the containment gate: probe quantisation plus access costs.
CONTAINMENT_SLACK = 5.0


@dataclass
class ProxyContainment:
    """One proxy's journey from compromise to containment."""

    host: str
    max_staleness: float
    poll_interval: float
    stale_serves: int = 0
    stale_bytes: int = 0
    other_failures: int = 0
    contained: bool = False
    containment_seconds: float = -1.0
    rejection_error: str = ""
    post_containment_ok: int = 0
    feed_refreshes: int = 0


@dataclass
class OverheadPoint:
    """Steady-state access cost of one stack flavour (nothing revoked)."""

    enabled: bool
    accesses: int
    ok: int
    mean_access_seconds: float
    p95_access_seconds: float
    feed_refreshes: int


@dataclass
class RevocationReport:
    """Containment sweep + overhead comparison, as written to JSON."""

    seed: int
    proxies: int
    feed_sites_reached: List[str]
    containment: List[ProxyContainment] = field(default_factory=list)
    baseline: Optional[OverheadPoint] = None
    enabled: Optional[OverheadPoint] = None

    @property
    def containment_latencies(self) -> List[float]:
        return [
            p.containment_seconds for p in self.containment if p.contained
        ]

    @property
    def overhead_ratio(self) -> float:
        if self.baseline is None or self.enabled is None:
            return 0.0
        if self.baseline.mean_access_seconds <= 0:
            return 0.0
        return self.enabled.mean_access_seconds / self.baseline.mean_access_seconds

    def to_dict(self) -> dict:
        latencies = self.containment_latencies
        summary = (
            {
                "p50_seconds": percentile(latencies, 50),
                "p90_seconds": percentile(latencies, 90),
                "max_seconds": max(latencies),
                "contained": len(latencies),
                "proxies": self.proxies,
            }
            if latencies
            else {"contained": 0, "proxies": self.proxies}
        )
        return {
            "seed": self.seed,
            "proxies": self.proxies,
            "feed_sites_reached": self.feed_sites_reached,
            "containment": [asdict(p) for p in self.containment],
            "containment_summary": summary,
            "baseline": asdict(self.baseline) if self.baseline else None,
            "enabled": asdict(self.enabled) if self.enabled else None,
            "overhead_ratio": self.overhead_ratio,
        }


# ----------------------------------------------------------------------
# World construction
# ----------------------------------------------------------------------


def _build_world(seed: int) -> Tuple[Testbed, DocumentOwner]:
    """A testbed whose replicas live *off* the feed server: documents at
    inria and cornell, the revocation feed (and nothing else) on ginger."""
    testbed = Testbed()
    owner = DocumentOwner(
        "vu.nl/revocation",
        keys=KeyPair.generate(1024),
        clock=testbed.clock,
    )
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    document = owner.publish(validity=7 * 24 * 3600.0)

    admin_rpc = RpcClient(testbed.network.transport_for(OWNER_HOST))
    for site, host in REPLICA_SITES.items():
        server = ObjectServer(host=host, site=site, clock=testbed.clock)
        server.keystore.authorize(owner.name, owner.public_key)
        testbed.network.register(
            Endpoint(host, "objectserver"), server.rpc_server().handle_frame
        )
        admin = AdminClient(
            admin_rpc, Endpoint(host, "objectserver"), owner.keys, testbed.clock
        )
        result = admin.create_replica(document)
        address = ContactAddress.from_dict(result["address"])
        testbed.location_service.tree.insert(owner.oid.hex, site, address)
    testbed.naming.register(OidRecord(name=owner.name, oid=owner.oid, ttl=3600.0))
    return testbed, owner


def _feed_coordinator(
    testbed: Testbed, owner: DocumentOwner
) -> ReplicationCoordinator:
    """The owner-side coordinator, pointed at the feed server's site."""
    rpc = RpcClient(testbed.network.transport_for(OWNER_HOST))
    location = LocationClient(
        rpc,
        testbed.location_endpoint,
        origin_site="root/europe/vu",
        clock=testbed.clock,
    )
    coordinator = ReplicationCoordinator(location)
    admin = AdminClient(
        rpc, testbed.objectserver_endpoint, owner.keys, testbed.clock
    )
    coordinator.add_site(SitePort(site="root/europe/vu", admin=admin))
    return coordinator


# ----------------------------------------------------------------------
# Phase 1: steady-state feed overhead
# ----------------------------------------------------------------------


def _run_overhead(quick: bool, seed: int, enabled: bool) -> OverheadPoint:
    """One stack flavour through the fixed schedule; nothing revoked."""
    testbed, owner = _build_world(seed)
    kwargs = {"revocation_max_staleness": BASE_STALENESS} if enabled else {}
    stack = testbed.client_stack("canardo.inria.fr", **kwargs)
    accesses = 30 if quick else 120
    names = list(ELEMENTS)
    totals: List[float] = []
    ok = 0
    for i in range(accesses):
        testbed.clock.advance(THINK_TIME)
        url = HybridUrl.for_name(owner.name, names[i % len(names)]).raw
        response = stack.proxy.handle(url)
        if response.ok:
            ok += 1
        if response.metrics is not None:
            totals.append(response.metrics.total)
    stats = summarize(totals)
    return OverheadPoint(
        enabled=enabled,
        accesses=accesses,
        ok=ok,
        mean_access_seconds=stats.mean,
        p95_access_seconds=stats.p95,
        feed_refreshes=(
            stack.revocation.stats.refreshes if stack.revocation is not None else 0
        ),
    )


# ----------------------------------------------------------------------
# Phase 2: compromise-to-containment latency
# ----------------------------------------------------------------------


def _run_containment(
    quick: bool, seed: int
) -> Tuple[List[ProxyContainment], List[str]]:
    testbed, owner = _build_world(seed)
    count = 3 if quick else 8
    fleet: List[Tuple[ProxyContainment, ClientStack]] = []
    for i in range(count):
        host = CLIENT_HOSTS[i % len(CLIENT_HOSTS)]
        staleness = BASE_STALENESS + STALENESS_STEP * i
        stack = testbed.client_stack(host, revocation_max_staleness=staleness)
        record = ProxyContainment(
            host=host,
            max_staleness=staleness,
            poll_interval=stack.revocation.poll_interval,
        )
        fleet.append((record, stack))

    url = HybridUrl.for_name(owner.name, "index.html").raw
    # Warm every proxy: session bound, feed synced, caches hot.
    for record, stack in fleet:
        response = stack.proxy.handle(url)
        if not response.ok:
            record.other_failures += 1

    # The compromise: the owner revokes the object key; the coordinator
    # pushes the statement to the feed. The serving replicas never hear
    # of it — only the proxies' polling can contain them.
    statement = RevocationStatement.revoke_key(
        owner.keys,
        owner.oid,
        serial=1,
        issued_at=testbed.clock.now(),
        reason="bench: key compromise",
    )
    t0 = testbed.clock.now()
    reached = _feed_coordinator(testbed, owner).publish_revocation(statement)

    deadline = t0 + max(r.max_staleness for r, _ in fleet) + 3 * CONTAINMENT_SLACK
    while any(not r.contained for r, _ in fleet) and testbed.clock.now() < deadline:
        testbed.clock.advance(THINK_TIME)
        for record, stack in fleet:
            if record.contained:
                continue
            response = stack.proxy.handle(url)
            if response.ok:
                record.stale_serves += 1
                record.stale_bytes += len(response.content)
            elif response.status == 403:
                record.contained = True
                record.containment_seconds = testbed.clock.now() - t0
                record.rejection_error = response.security_failure
            else:
                record.other_failures += 1

    # Containment must hold: one more access each, no recovery allowed.
    for record, stack in fleet:
        if record.contained:
            response = stack.proxy.handle(url)
            if response.ok:
                record.post_containment_ok += 1
        record.feed_refreshes = (
            stack.revocation.stats.refreshes if stack.revocation is not None else 0
        )
    return [record for record, _ in fleet], reached


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def run_revocation(quick: bool = False, seed: int = 0) -> RevocationReport:
    """The full bench: containment sweep, then the overhead comparison."""
    containment, reached = _run_containment(quick, seed)
    report = RevocationReport(
        seed=seed,
        proxies=len(containment),
        feed_sites_reached=reached,
        containment=containment,
    )
    report.baseline = _run_overhead(quick, seed, enabled=False)
    report.enabled = _run_overhead(quick, seed, enabled=True)
    return report


def render_revocation(report: RevocationReport) -> str:
    """Human-readable containment table + overhead summary."""
    from repro.harness.report import render_table

    rows = []
    for p in report.containment:
        rows.append(
            [
                p.host,
                f"{p.max_staleness:.0f} s",
                f"{p.poll_interval:.0f} s",
                f"{p.containment_seconds:.1f} s" if p.contained else "NOT CONTAINED",
                p.rejection_error or "-",
                str(p.stale_serves),
                str(p.post_containment_ok),
                str(p.feed_refreshes),
            ]
        )
    table = render_table(
        [
            "proxy host",
            "max staleness",
            "poll",
            "containment",
            "rejected as",
            "stale serves",
            "post-ok",
            "refreshes",
        ],
        rows,
    )
    lines = [
        f"Revocation sweep — {report.proxies} proxies, feed at "
        f"{', '.join(report.feed_sites_reached) or 'nowhere'}",
        table,
    ]
    latencies = report.containment_latencies
    if latencies:
        lines.append(
            "containment latency: "
            f"p50 {percentile(latencies, 50):.1f} s, "
            f"p90 {percentile(latencies, 90):.1f} s, "
            f"max {max(latencies):.1f} s"
        )
    if report.baseline and report.enabled:
        lines.append(
            "steady-state overhead: "
            f"baseline {report.baseline.mean_access_seconds * 1e3:.2f} ms/access, "
            f"with feed {report.enabled.mean_access_seconds * 1e3:.2f} ms/access "
            f"(ratio {report.overhead_ratio:.3f}, "
            f"{report.enabled.feed_refreshes} refreshes)"
        )
    return "\n".join(lines)


def write_report(report: RevocationReport, path: pathlib.Path) -> None:
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")


def check_report(report: RevocationReport) -> List[str]:
    """CI-gate violations (empty = pass).

    * every proxy contained, each within its staleness window (+ slack),
      rejecting with the dedicated :class:`RevokedKeyError`;
    * containment is permanent — no access succeeds afterwards;
    * no spurious non-security failures during the sweep;
    * the feed's steady-state cost stays below 2.5× the baseline while
      actually polling (≥ 2 refreshes) — the poll must not dominate the
      access pipeline it protects. (The refresh is one extra RPC per
      poll interval against ~3 ms cached accesses, so the measured
      ratio sits near 1.5–1.9; the gate leaves headroom for the host
      noise in clock-charged crypto times, not for regressions.)
    """
    problems: List[str] = []
    for p in report.containment:
        if not p.contained:
            problems.append(f"proxy on {p.host} (staleness {p.max_staleness}) never contained")
            continue
        if p.containment_seconds > p.max_staleness + CONTAINMENT_SLACK:
            problems.append(
                f"containment took {p.containment_seconds:.1f}s on {p.host}, "
                f"past its {p.max_staleness:.0f}s staleness window"
            )
        if p.rejection_error != "RevokedKeyError":
            problems.append(
                f"rejection on {p.host} attributed to {p.rejection_error!r}, "
                "not RevokedKeyError"
            )
        if p.post_containment_ok:
            problems.append(f"revoked content served after containment on {p.host}")
        if p.other_failures:
            problems.append(
                f"{p.other_failures} non-security failures on {p.host}"
            )
    if report.baseline is not None and report.baseline.ok < report.baseline.accesses:
        problems.append("baseline schedule had failing accesses")
    if report.enabled is not None and report.enabled.ok < report.enabled.accesses:
        problems.append("feed-enabled schedule had failing accesses")
    if report.enabled is not None and report.enabled.feed_refreshes < 2:
        problems.append(
            f"feed polled only {report.enabled.feed_refreshes} times — "
            "overhead number is not steady-state"
        )
    ratio = report.overhead_ratio
    if ratio > 2.5:
        problems.append(f"steady-state feed overhead ratio {ratio:.3f} > 2.5")
    return problems
