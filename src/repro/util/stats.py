"""Small statistics helpers used by the experiment harness and benches.

The paper reports 24-hour averages of repeated measurements; the harness
repeats each configuration and reports mean/median/p95, computed here
with plain NumPy so results are reproducible and dependency-light.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Summary", "summarize", "percentile", "geometric_mean"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics over a sample of measurements (seconds, bytes, …)."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p95: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.6g} median={self.median:.6g} "
            f"std={self.std:.3g} min={self.minimum:.6g} max={self.maximum:.6g} "
            f"p95={self.p95:.6g}"
        )


def summarize(samples: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` over *samples*; raises on empty input."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p95=float(np.percentile(arr, 95)),
    )


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0–100) of *samples*."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(arr, q))


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean, used when averaging speedup ratios across workloads."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot average an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.log(arr).mean()))
