"""Small statistics helpers used by the experiment harness and benches.

The paper reports 24-hour averages of repeated measurements; the harness
repeats each configuration and reports mean/median/p95, computed here
with plain NumPy so results are reproducible and dependency-light.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Summary", "summarize", "percentile", "geometric_mean"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics over a sample of measurements (seconds, bytes, …)."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p95: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.6g} median={self.median:.6g} "
            f"std={self.std:.3g} min={self.minimum:.6g} max={self.maximum:.6g} "
            f"p95={self.p95:.6g}"
        )


def summarize(samples: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` over *samples*; raises on empty input
    and on NaN samples (which would silently poison every statistic)."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if np.isnan(arr).any():
        raise ValueError("cannot summarize samples containing NaN")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p95=float(np.percentile(arr, 95)),
    )


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0–100) of *samples*.

    Uses linear interpolation between order statistics (the NumPy
    default), so ``percentile([1, 2], 50) == 1.5`` and a single-sample
    input returns that sample for every *q*. Rejects what NumPy would
    quietly mishandle: an empty sample, *q* outside [0, 100] (NumPy's
    own error names an internal parameter), and NaN samples (which
    propagate into a NaN percentile with only a warning).
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if np.isnan(arr).any():
        raise ValueError("cannot take a percentile of samples containing NaN")
    return float(np.percentile(arr, q))


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean, used when averaging speedup ratios across workloads."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot average an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.log(arr).mean()))
