"""Deterministic canonical encoding for signed payloads and wire messages.

Digital signatures are computed over *bytes*, so every structure that is
ever signed (integrity certificates, identity certificates, name-service
resource records) must serialise to exactly the same byte string on every
host and every Python version. We use *canonical JSON*: UTF-8, sorted
keys, no insignificant whitespace, and ``bytes`` values wrapped in a
tagged base64 envelope so the mapping is invertible.

The same encoder doubles as the wire format of the RPC layer
(:mod:`repro.net.message`), which keeps simulated and real-TCP transports
byte-identical.
"""

from __future__ import annotations

import base64
import json
import math
from dataclasses import dataclass
from typing import Any

from repro.errors import EncodingError

__all__ = [
    "canonical_json",
    "canonical_bytes",
    "from_canonical_bytes",
    "b64encode",
    "b64decode",
    "to_wire",
    "from_wire",
    "EncodeCacheCounters",
    "ENCODE_COUNTERS",
]


@dataclass
class EncodeCacheCounters:
    """Process-wide counters for canonical-encoding memoization.

    Structures that cache their canonical bytes (signed envelopes,
    certificates, ``wire_size`` properties) report here, so the proxy's
    fast-path metrics can show how much re-serialization was avoided.
    """

    hits: int = 0
    misses: int = 0

    def hit(self) -> None:
        self.hits += 1

    def miss(self) -> None:
        self.misses += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> tuple:
        return (self.hits, self.misses)

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


#: The shared counter instance (single-threaded simulation: no locking).
ENCODE_COUNTERS = EncodeCacheCounters()

# Tag used to represent raw bytes inside JSON without ambiguity. A dict
# with exactly this key is reserved; user maps containing it are rejected.
_BYTES_TAG = "__b64__"


def b64encode(data: bytes) -> str:
    """Encode *data* as standard base64 text (no line breaks)."""
    return base64.b64encode(data).decode("ascii")


def b64decode(text: str) -> bytes:
    """Decode standard base64 text produced by :func:`b64encode`."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:  # binascii.Error, UnicodeEncodeError
        raise EncodingError(f"invalid base64 payload: {exc}") from exc


def _tag(value: Any) -> Any:
    """Recursively replace ``bytes`` with a tagged base64 envelope.

    Rejects values that cannot be encoded deterministically: non-string
    dict keys, NaN/Inf floats, sets, and arbitrary objects.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise EncodingError("NaN/Inf floats are not canonically encodable")
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {_BYTES_TAG: b64encode(bytes(value))}
    if isinstance(value, (list, tuple)):
        return [_tag(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise EncodingError(f"dict keys must be str, got {type(key).__name__}")
            if key == _BYTES_TAG:
                raise EncodingError(f"reserved key {_BYTES_TAG!r} in mapping")
            out[key] = _tag(val)
        return out
    raise EncodingError(f"type {type(value).__name__} is not canonically encodable")


def _untag(value: Any) -> Any:
    """Inverse of :func:`_tag`."""
    if isinstance(value, list):
        return [_untag(v) for v in value]
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            raw = value[_BYTES_TAG]
            if not isinstance(raw, str):
                raise EncodingError("bytes envelope payload must be a string")
            return b64decode(raw)
        return {k: _untag(v) for k, v in value.items()}
    return value


def canonical_json(value: Any) -> str:
    """Serialise *value* to canonical JSON text.

    The output is deterministic: keys sorted, separators fixed, non-ASCII
    escaped. Equal values always produce equal text.
    """
    tagged = _tag(value)
    return json.dumps(tagged, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def canonical_bytes(value: Any) -> bytes:
    """Serialise *value* to the canonical UTF-8 byte string used for signing."""
    return canonical_json(value).encode("utf-8")


def from_canonical_bytes(data: bytes) -> Any:
    """Parse bytes produced by :func:`canonical_bytes` back into a value."""
    try:
        parsed = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise EncodingError(f"invalid canonical payload: {exc}") from exc
    return _untag(parsed)


def to_wire(value: Any) -> bytes:
    """Encode a message for transmission: canonical bytes (shared format)."""
    return canonical_bytes(value)


def from_wire(data: bytes) -> Any:
    """Decode a wire message produced by :func:`to_wire`."""
    return from_canonical_bytes(data)
