"""Shared utilities: canonical encoding, time helpers, statistics, sizes."""

from repro.util.encoding import (
    canonical_bytes,
    canonical_json,
    from_canonical_bytes,
    b64encode,
    b64decode,
    to_wire,
    from_wire,
)
from repro.util.sizes import KB, MB, format_size
from repro.util.stats import Summary, summarize, percentile

__all__ = [
    "canonical_bytes",
    "canonical_json",
    "from_canonical_bytes",
    "b64encode",
    "b64decode",
    "to_wire",
    "from_wire",
    "KB",
    "MB",
    "format_size",
    "Summary",
    "summarize",
    "percentile",
]
