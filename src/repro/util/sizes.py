"""Byte-size constants and formatting helpers.

The paper expresses all workload sizes in decimal-looking "KB"/"MB" that
are actually binary multiples (1 KB image = 1024 bytes); we follow that
convention so element sizes match the experiment descriptions exactly.
"""

from __future__ import annotations

__all__ = ["KB", "MB", "format_size", "parse_size"]

KB = 1024
MB = 1024 * KB

_UNITS = [(MB, "MB"), (KB, "KB")]


def format_size(num_bytes: int) -> str:
    """Render a byte count the way the paper labels its x-axes (1KB, 1MB)."""
    if num_bytes < 0:
        raise ValueError("size must be non-negative")
    for factor, unit in _UNITS:
        if num_bytes >= factor and num_bytes % factor == 0:
            return f"{num_bytes // factor}{unit}"
    if num_bytes >= KB:
        return f"{num_bytes / KB:.1f}KB"
    return f"{num_bytes}B"


def parse_size(text: str) -> int:
    """Parse strings like ``"100KB"``, ``"1MB"``, ``"512"`` or ``"512B"``."""
    cleaned = text.strip().upper()
    for suffix, factor in (("MB", MB), ("KB", KB), ("B", 1)):
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)].strip()
            return int(float(number) * factor)
    return int(cleaned)
