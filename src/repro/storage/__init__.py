"""Durable persistence: write-ahead logs, snapshots, crash recovery.

The storage layer gives every stateful service a crash-consistent
backend with one invariant throughout: **recovered bytes are untrusted
until their signatures check**, exactly like fetched bytes. The store
validates framing and checksums (torn-write protection); the owning
subsystem re-verifies self-certification and signatures on load and
fails closed on anything that does not prove out.
"""

from repro.storage.snapshot import SnapshotStore
from repro.storage.store import DurableStore, RecoveredState
from repro.storage.wal import WriteAheadLog

__all__ = ["DurableStore", "RecoveredState", "SnapshotStore", "WriteAheadLog"]
