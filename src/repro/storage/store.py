"""Snapshot + WAL composition: the durable backend every service uses.

One :class:`DurableStore` owns a directory::

    <dir>/wal.log            the write-ahead log (mutation journal)
    <dir>/snapshot-NNN.bin   whole-state checkpoints at WAL seq NNN

Writes are journaled through :meth:`append` *before* the in-memory
mutation is considered durable; :meth:`compact` checkpoints the current
state and resets the journal. Sequence numbers are absolute (they count
every record ever appended, across compactions), so a snapshot at seq
*s* plus the journal suffix replays to exactly the live state.

Recovery contract
-----------------
:meth:`recover` returns the latest valid snapshot state (or None) and
the journal records appended after it. **The store validates framing
and checksums only.** Recovered payloads are untrusted input — exactly
as untrusted as bytes fetched from a replica — and each subsystem must
re-verify signatures / self-certification on everything it loads before
serving it, failing closed (:class:`~repro.errors.RecoveryIntegrityError`)
on anything that does not check out.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.errors import StorageError
from repro.storage.snapshot import SnapshotStore
from repro.storage.wal import WriteAheadLog

__all__ = ["DurableStore", "RecoveredState"]

WAL_NAME = "wal.log"


@dataclass
class RecoveredState:
    """What a subsystem gets back from :meth:`DurableStore.recover`."""

    #: Latest valid snapshot state, or None (cold start / no snapshot).
    snapshot: Optional[Any]
    #: Journal records to replay on top of the snapshot, oldest first.
    records: List[Any] = field(default_factory=list)
    #: Bytes dropped from the journal's torn tail on open.
    torn_bytes_dropped: int = 0

    @property
    def cold(self) -> bool:
        """True when there was nothing on disk at all."""
        return self.snapshot is None and not self.records


class DurableStore:
    """A directory-backed snapshot+journal store for one subsystem."""

    def __init__(
        self,
        directory,
        sync: bool = True,
        compact_every: Optional[int] = 256,
        keep_snapshots: int = 2,
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise StorageError(
                f"compact_every must be positive or None, got {compact_every}"
            )
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.compact_every = compact_every
        self.snapshots = SnapshotStore(self.directory, keep=keep_snapshots)
        self.wal = WriteAheadLog(os.path.join(self.directory, WAL_NAME), sync=sync)
        snapshot = self.snapshots.load_latest()
        self._snapshot_seq = snapshot[0] if snapshot is not None else 0
        self._snapshot_state = snapshot[1] if snapshot is not None else None
        #: Absolute seq = snapshot seq + journal length. Journal records
        #: carry their own seq so a stale journal (older than the
        #: snapshot, e.g. after a crash between snapshot write and
        #: journal truncate) is recognised and skipped on recover.
        self._seq = self._snapshot_seq
        for record in self.wal:
            seq = self._record_seq(record)
            if seq is not None and seq > self._seq:
                self._seq = seq
        self._recovered = False

    @staticmethod
    def _record_seq(record: Any) -> Optional[int]:
        if isinstance(record, dict) and isinstance(record.get("__seq__"), int):
            return record["__seq__"]
        return None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Snapshot state + the journal suffix appended after it."""
        records = []
        for record in self.wal:
            seq = self._record_seq(record)
            if seq is None or seq > self._snapshot_seq:
                records.append(
                    record["__record__"] if seq is not None else record
                )
        self._recovered = True
        return RecoveredState(
            snapshot=self._snapshot_state,
            records=records,
            torn_bytes_dropped=self.wal.torn_bytes_dropped,
        )

    # ------------------------------------------------------------------
    # Journaling
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Absolute sequence number of the last appended record."""
        return self._seq

    @property
    def journal_length(self) -> int:
        return len(self.wal)

    def append(self, record: Any) -> int:
        """Durably journal *record*; returns its absolute seq."""
        seq = self._seq + 1
        self.wal.append({"__seq__": seq, "__record__": record})
        self._seq = seq
        return seq

    def compact(self, state: Any) -> None:
        """Checkpoint *state* at the current seq, then reset the journal.

        Order matters for crash consistency: the snapshot lands
        atomically first; only then is the journal truncated. A crash
        between the two leaves a journal whose records are all ≤ the
        snapshot seq — recognised and skipped on the next recover.
        """
        self.snapshots.write(self._seq, state)
        self._snapshot_seq = self._seq
        self._snapshot_state = state
        self.wal.truncate()

    def maybe_compact(self, state_fn) -> bool:
        """Compact via ``state_fn()`` when the journal hits the threshold."""
        if self.compact_every is None:
            return False
        if len(self.wal) < self.compact_every:
            return False
        self.compact(state_fn())
        return True

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableStore({self.directory!r}, seq={self._seq}, "
            f"journal={len(self.wal)})"
        )
