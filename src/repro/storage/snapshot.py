"""Checkpointed state snapshots, atomically written, checksummed.

A snapshot is one whole-state checkpoint of a durable subsystem, taken
at a known write-ahead-log sequence number so recovery can replay
exactly the WAL suffix past it (UStore-style snapshot + log layout).

On-disk format mirrors the WAL frame so one validator covers both::

    [4-byte big-endian payload length]
    [4-byte big-endian CRC32 of the payload]
    [payload: canonical_bytes({"seq": <wal seq>, "state": <state>})]

Atomicity: the snapshot is written to a temporary sibling, flushed and
fsynced, then ``os.replace``\\ d onto its numbered name — a crash leaves
either the old snapshot set or the new one, never a half-written file
under a live name. The directory entry is fsynced after the rename.

Recovery: :meth:`SnapshotStore.load_latest` walks snapshots newest
first and returns the first one that validates; a torn or corrupt
newest snapshot (crash during checkpoint) falls back to its predecessor
instead of failing the whole store. Older snapshots are garbage
collected after a successful write.
"""

from __future__ import annotations

import os
import re
import zlib
from typing import Any, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.wal import FRAME_HEADER
from repro.util.encoding import canonical_bytes, from_canonical_bytes

__all__ = ["SnapshotStore"]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.bin$")


class SnapshotStore:
    """Numbered, checksummed snapshots in one directory."""

    def __init__(self, directory, keep: int = 2) -> None:
        if keep < 1:
            raise StorageError(f"must keep at least one snapshot, got {keep}")
        self.directory = str(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def write(self, seq: int, state: Any) -> str:
        """Checkpoint *state* as of WAL sequence *seq*; returns the path."""
        if seq < 0:
            raise StorageError(f"snapshot seq must be non-negative, got {seq}")
        payload = canonical_bytes({"seq": int(seq), "state": state})
        frame = FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        name = f"snapshot-{seq:012d}.bin"
        final_path = os.path.join(self.directory, name)
        tmp_path = final_path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(frame)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, final_path)
        self._fsync_dir()
        self._collect_garbage(keep_at_least=final_path)
        return final_path

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - best effort
            pass
        finally:
            os.close(fd)

    def _collect_garbage(self, keep_at_least: str) -> None:
        """Drop all but the newest ``keep`` snapshots (and stray tmps)."""
        paths = self._snapshot_paths()
        for path in paths[: -self.keep]:
            if path != keep_at_least:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - best effort
                    pass
        for entry in os.listdir(self.directory):
            if entry.endswith(".tmp"):
                try:
                    os.remove(os.path.join(self.directory, entry))
                except OSError:  # pragma: no cover - best effort
                    pass

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _snapshot_paths(self) -> List[str]:
        """Valid-looking snapshot files, oldest first."""
        entries = []
        for entry in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(entry)
            if match:
                entries.append((int(match.group(1)), entry))
        return [os.path.join(self.directory, e) for _, e in sorted(entries)]

    def load_latest(self) -> Optional[Tuple[int, Any]]:
        """The newest valid ``(seq, state)``, or None if none exists.

        A corrupt newer snapshot is skipped (crash mid-checkpoint), not
        fatal — the WAL suffix since the older snapshot still replays.
        """
        for path in reversed(self._snapshot_paths()):
            loaded = self._load_one(path)
            if loaded is not None:
                return loaded
        return None

    @staticmethod
    def _load_one(path: str) -> Optional[Tuple[int, Any]]:
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        if len(data) < FRAME_HEADER.size:
            return None
        length, crc = FRAME_HEADER.unpack_from(data, 0)
        payload = data[FRAME_HEADER.size:]
        if len(payload) != length or zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None
        try:
            decoded = from_canonical_bytes(payload)
            return int(decoded["seq"]), decoded["state"]
        except Exception:
            return None

    def __len__(self) -> int:
        return len(self._snapshot_paths())
