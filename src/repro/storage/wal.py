"""Write-ahead log: length-prefixed, checksummed, canonically encoded.

Every durable subsystem (object server, revocation feed, naming and
location services, revocation-checker cursors) journals its mutations
through one :class:`WriteAheadLog`. The on-disk format is a sequence of
self-delimiting frames::

    [4-byte big-endian payload length]
    [4-byte big-endian CRC32 of the payload]
    [payload: canonical-encoded record]

The payload is the repo's canonical JSON (the same deterministic
encoding signatures are computed over), so a WAL record round-trips
byte-identically across hosts and Python versions, and the CRC is
computed over exactly the bytes that were meant to be written.

Durability discipline
---------------------
``append`` writes the frame, flushes, and — unless the log was opened
with ``sync=False`` (tests, throwaway stores) — ``fsync``\\ s the file
descriptor before returning: a record handed back to the caller has
reached the disk, not the page cache. Directory entries are fsynced on
creation so a freshly created log survives a crash of its parent
directory too.

Torn-tail recovery
------------------
A crash mid-``append`` leaves a *torn tail*: a trailing frame that is
truncated, or whose CRC does not match (a partially persisted payload).
On open, the log scans frames from the start; the first frame that is
incomplete or fails its CRC ends the scan, the file is physically
truncated back to the last valid frame boundary, and the count of
dropped bytes is reported in :attr:`WriteAheadLog.torn_bytes_dropped`.
Only the *suffix* is ever dropped — a valid prefix record is never
discarded — and nothing past the checksum is interpreted, so torn bytes
are never surfaced to callers.

Checksums guard against *accidents* (torn writes, bit rot), not
adversaries: a CRC-valid record is still untrusted input, and
subsystems re-verify signatures on everything they recover (see
:mod:`repro.storage.store` and the per-subsystem recovery paths).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Iterator, List, Optional

from repro.errors import StorageError
from repro.util.encoding import canonical_bytes, from_canonical_bytes

__all__ = ["WriteAheadLog", "FRAME_HEADER"]

#: Frame header: payload length + CRC32, both unsigned 32-bit big-endian.
FRAME_HEADER = struct.Struct(">II")

#: Refuse absurd lengths outright: a corrupted length prefix must not
#: make the scanner try to allocate gigabytes before concluding "torn".
MAX_RECORD_BYTES = 64 * 1024 * 1024


def _fsync_dir(path: str) -> None:
    """Flush the directory entry so a fresh file survives a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platform without directory fds — best effort
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """An append-only record log with crash-consistent open semantics.

    Opening a log reads and validates every frame (truncating a torn
    tail, see module docstring); the decoded records are available via
    :meth:`records` and the log is then positioned for appends.
    """

    def __init__(self, path, sync: bool = True) -> None:
        self.path = str(path)
        self.sync = sync
        self._records: List[Any] = []
        self.torn_bytes_dropped = 0
        self._closed = False
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        created = not os.path.exists(self.path)
        valid_end = self._scan_and_truncate()
        self._fh = open(self.path, "ab")
        if self._fh.tell() != valid_end:  # pragma: no cover - defensive
            raise StorageError(
                f"WAL {self.path} moved under us: expected offset {valid_end}, "
                f"found {self._fh.tell()}"
            )
        if created:
            _fsync_dir(directory)

    # ------------------------------------------------------------------
    # Open-time scan
    # ------------------------------------------------------------------

    def _scan_and_truncate(self) -> int:
        """Load valid frames; truncate the torn tail; return valid size."""
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "rb") as fh:
            data = fh.read()
        offset = 0
        records: List[Any] = []
        while offset < len(data):
            frame_end = self._try_frame(data, offset, records)
            if frame_end is None:
                break
            offset = frame_end
        if offset < len(data):
            self.torn_bytes_dropped = len(data) - offset
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
                fh.flush()
                os.fsync(fh.fileno())
        self._records = records
        return offset

    @staticmethod
    def _try_frame(data: bytes, offset: int, records: List[Any]) -> Optional[int]:
        """Decode one frame at *offset*; None if torn/corrupt (scan stops)."""
        header_end = offset + FRAME_HEADER.size
        if header_end > len(data):
            return None
        length, crc = FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return None
        payload_end = header_end + length
        if payload_end > len(data):
            return None
        payload = data[header_end:payload_end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None
        try:
            records.append(from_canonical_bytes(payload))
        except Exception:
            # CRC-valid but undecodable: written by something that is
            # not this WAL. Treat as corruption starting here.
            return None
        return payload_end

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record: Any) -> int:
        """Durably append *record*; returns its index in the log."""
        if self._closed:
            raise StorageError(f"WAL {self.path} is closed")
        payload = canonical_bytes(record)
        if len(payload) > MAX_RECORD_BYTES:
            raise StorageError(
                f"WAL record of {len(payload)} bytes exceeds the "
                f"{MAX_RECORD_BYTES}-byte frame limit"
            )
        frame = FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        self._fh.write(frame)
        self._fh.write(payload)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self._records.append(record)
        return len(self._records) - 1

    def flush(self) -> None:
        """Force buffered appends to disk (no-op when ``sync=True``)."""
        if self._closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    # Reading and lifecycle
    # ------------------------------------------------------------------

    def records(self) -> List[Any]:
        """Every valid record, in append order (decoded copies)."""
        return list(self._records)

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)

    def truncate(self) -> None:
        """Drop every record (post-compaction reset), durably."""
        if self._closed:
            raise StorageError(f"WAL {self.path} is closed")
        self._fh.truncate(0)
        self._fh.seek(0)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._records = []

    def close(self) -> None:
        if self._closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteAheadLog({self.path!r}, records={len(self._records)})"
