"""The plain-HTTP baseline: an Apache-style static file server.

Serves named files over the RPC substrate with no security whatsoever.
This is the "Apache" series of Figures 5–7 and the origin server for
the proxy's HTTP passthrough. Keeping it on the same transport as
GlobeDoc makes the comparison honest: both pay identical network and
service-time costs, so the measured difference is exactly the security
machinery.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import ReproError
from repro.globedoc.element import guess_content_type
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient, RpcServer, rpc_method

__all__ = ["StaticHttpServer", "PlainHttpClient"]


class StaticHttpServer:
    """A dictionary of path → bytes behind an ``http.get`` operation."""

    def __init__(self, host: str, service: str = "http") -> None:
        self.host = host
        self.service = service
        self._files: Dict[str, bytes] = {}
        self.request_count = 0
        self.bytes_served = 0

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    def put_file(self, path: str, content: bytes) -> None:
        """Publish *content* at *path* (leading slash normalised)."""
        if not path:
            raise ReproError("path must be non-empty")
        self._files["/" + path.lstrip("/")] = bytes(content)

    def put_files(self, files: Mapping[str, bytes]) -> None:
        for path, content in files.items():
            self.put_file(path, content)

    @property
    def file_count(self) -> int:
        return len(self._files)

    @rpc_method("http.get")
    def rpc_get(self, path: str) -> dict:
        """GET *path*: 200 with body, or 404."""
        self.request_count += 1
        normalized = "/" + str(path).lstrip("/")
        content = self._files.get(normalized)
        if content is None:
            return {"status": 404, "body": b"not found", "content_type": "text/plain"}
        self.bytes_served += len(content)
        return {
            "status": 200,
            "body": content,
            "content_type": guess_content_type(normalized),
        }

    def rpc_server(self) -> RpcServer:
        server = RpcServer(name=f"http@{self.host}")
        server.register_object(self)
        return server


class PlainHttpClient:
    """Minimal HTTP client over the RPC substrate (the wget stand-in)."""

    def __init__(self, rpc: RpcClient, server_endpoint: Endpoint) -> None:
        self.rpc = rpc
        self.endpoint = server_endpoint

    def get(self, path: str) -> bytes:
        """Fetch *path*; raises on any non-200 status."""
        answer = self.rpc.call(self.endpoint, "http.get", path=path)
        if int(answer["status"]) != 200:
            raise ReproError(f"HTTP {answer['status']} for {path!r}")
        return bytes(answer["body"])

    def get_many(self, paths) -> Dict[str, bytes]:
        """Fetch several paths sequentially (one connection each, like
        HTTP/1.0-era wget)."""
        return {path: self.get(path) for path in paths}
