"""The read-only Secure File System baseline (ref [6], §5).

r-OSFS protects a whole file system with a single hash tree: leaves are
file blocks, the owner signs only the *root*, and clients verify any
block with an O(log n) Merkle proof. The paper credits the efficiency
but criticises the freshness granularity: "only one global (per-file
system) consistency interval can be supported, instead of allowing
per-file freshness constraints."

This implementation keeps the comparison sharp by reusing the GlobeDoc
substrate: same elements, same transports, same clock. Differences the
ablation bench measures:

* signing cost per update: r-OSFS re-signs one root but must rebuild the
  tree (O(n) hashing); GlobeDoc re-signs the certificate (O(n) hashing
  too, but per-element expiry comes for free);
* per-fetch verification: Merkle proof (log n hashes) vs one table
  lookup — but r-OSFS clients verify the root signature once per
  *freshness interval*, GlobeDoc once per binding;
* freshness: r-OSFS has exactly one interval for everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import AuthenticityError, FreshnessError, ReproError
from repro.globedoc.element import PageElement
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.sim.clock import Clock

__all__ = ["RosfsStore", "RosfsServer", "RosfsClient"]

ROOT_CERT_TYPE = "rosfs/root"


class RosfsStore:
    """Owner-side store: files, tree, and the signed root.

    ``publish`` rebuilds the tree over the *current* file set and signs
    a fresh root with one global validity interval — the whole-store
    re-sign the paper contrasts with per-element certificates.
    """

    def __init__(self, keys: Optional[KeyPair] = None, suite: HashSuite = SHA1) -> None:
        self.keys = keys if keys is not None else KeyPair.generate()
        self.suite = suite
        self._files: Dict[str, bytes] = {}
        self._order: List[str] = []
        self._tree: Optional[MerkleTree] = None
        self._root_cert: Optional[Certificate] = None
        self.publish_count = 0

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    def put_file(self, name: str, content: bytes) -> None:
        if name not in self._files:
            self._order.append(name)
        self._files[name] = bytes(content)
        self._tree = None  # stale until next publish

    @property
    def file_names(self) -> List[str]:
        return list(self._order)

    def publish(self, valid_until: float) -> Certificate:
        """Rebuild the tree and sign its root with one global interval."""
        if not self._files:
            raise ReproError("cannot publish an empty r-OSFS store")
        leaves = [self._files[name] for name in self._order]
        self._tree = MerkleTree(leaves, suite=self.suite)
        self._root_cert = Certificate.issue(
            self.keys,
            ROOT_CERT_TYPE,
            {"root": self._tree.root, "names": list(self._order)},
            not_after=valid_until,
            suite=self.suite,
        )
        self.publish_count += 1
        return self._root_cert

    def proof_for(self, name: str) -> Tuple[bytes, MerkleProof]:
        """(content, proof) for one file; requires a publish first."""
        if self._tree is None or self._root_cert is None:
            raise ReproError("store not published")
        try:
            index = self._order.index(name)
        except ValueError:
            raise ReproError(f"no such file {name!r}") from None
        return self._files[name], self._tree.proof(index)

    @property
    def root_certificate(self) -> Certificate:
        if self._root_cert is None:
            raise ReproError("store not published")
        return self._root_cert


class RosfsServer:
    """Untrusted replica of a published r-OSFS store."""

    def __init__(self, host: str, store: RosfsStore, service: str = "rosfs") -> None:
        self.host = host
        self.service = service
        # The replica holds only public material: files, proofs, root cert.
        self.store = store

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    @rpc_method("rosfs.get_root")
    def rpc_get_root(self) -> dict:
        return self.store.root_certificate.to_dict()

    @rpc_method("rosfs.get_public_key")
    def rpc_get_public_key(self) -> bytes:
        return self.store.public_key.der

    @rpc_method("rosfs.get_file")
    def rpc_get_file(self, name: str) -> dict:
        content, proof = self.store.proof_for(str(name))
        return {
            "name": name,
            "content": content,
            "leaf_index": proof.leaf_index,
            "leaf_count": proof.leaf_count,
            "path": [[h, left] for h, left in proof.path],
        }

    def rpc_server(self) -> RpcServer:
        server = RpcServer(name=f"rosfs@{self.host}")
        server.register_object(self)
        return server


class RosfsClient:
    """Client: verify the root once per interval, then proofs per file."""

    def __init__(
        self,
        rpc: RpcClient,
        server_endpoint: Endpoint,
        owner_key: PublicKey,
        clock: Clock,
        suite: HashSuite = SHA1,
        compute_context=None,
    ) -> None:
        from contextlib import nullcontext

        self.rpc = rpc
        self.endpoint = server_endpoint
        self.owner_key = owner_key
        self.clock = clock
        self.suite = suite
        self._compute = compute_context if compute_context is not None else nullcontext
        self._root: Optional[bytes] = None
        self._root_expiry: Optional[float] = None
        self.root_fetches = 0

    def _ensure_root(self) -> bytes:
        now = self.clock.now()
        if self._root is not None and self._root_expiry is not None and now <= self._root_expiry:
            return self._root
        raw = self.rpc.call(self.endpoint, "rosfs.get_root")
        cert = Certificate.from_dict(raw)
        with self._compute():
            body = cert.verify(self.owner_key, clock=self.clock, expected_type=ROOT_CERT_TYPE)
        self._root = bytes(body["root"])
        self._root_expiry = cert.not_after
        self.root_fetches += 1
        return self._root

    def get_file(self, name: str) -> bytes:
        """Fetch + verify one file against the signed root.

        Raises :class:`~repro.errors.AuthenticityError` on proof failure
        and :class:`~repro.errors.FreshnessError` if the *whole store's*
        interval has lapsed — there is no per-file freshness here.
        """
        root = self._ensure_root()
        if self._root_expiry is not None and self.clock.now() > self._root_expiry:
            raise FreshnessError("r-OSFS root certificate expired")
        answer = self.rpc.call(self.endpoint, "rosfs.get_file", name=name)
        content = bytes(answer["content"])
        proof = MerkleProof(
            leaf_index=int(answer["leaf_index"]),
            leaf_count=int(answer["leaf_count"]),
            path=tuple((bytes(h), bool(left)) for h, left in answer["path"]),
        )
        with self._compute():
            ok = MerkleTree.verify_detached(content, proof, root, suite=self.suite)
        if not ok:
            raise AuthenticityError(f"Merkle proof for {name!r} failed against signed root")
        return content
