"""The Gemini cache-signing baseline (ref [12], §5).

Gemini's security model: untrusted caches **sign the data they return**
so that "malicious caches serving bogus content are eventually caught
red-handed" by after-the-fact auditing. Contrast with GlobeDoc, which
"makes it impossible for malicious servers to pass bogus data
undetected" in the first place.

The implementation captures both halves of that contrast:

* cost — the cache pays an RSA **sign** per response (vs GlobeDoc's
  owner signing once, offline); the ablation bench measures it;
* semantics — a cheating cache *succeeds* at serving bogus content to
  the client (the client only verifies the cache's signature), and is
  only exposed later when :class:`GeminiAuditor` replays receipts
  against the origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import SignedEnvelope
from repro.errors import AuthenticityError, ReproError, SignatureError
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.sim.clock import Clock

__all__ = ["GeminiCache", "GeminiClient", "GeminiAuditor", "Receipt"]


@dataclass(frozen=True)
class Receipt:
    """A cache-signed response the client keeps for auditing."""

    envelope: SignedEnvelope
    cache_key_der: bytes

    @property
    def path(self) -> str:
        return str(self.envelope.payload["path"])

    @property
    def content(self) -> bytes:
        return bytes(self.envelope.payload["content"])

    @property
    def served_at(self) -> float:
        return float(self.envelope.payload["served_at"])

    def to_dict(self) -> dict:
        return {
            "envelope": self.envelope.to_dict(),
            "cache_key_der": self.cache_key_der,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Receipt":
        return cls(
            envelope=SignedEnvelope.from_dict(data["envelope"]),
            cache_key_der=bytes(data["cache_key_der"]),
        )


class GeminiCache:
    """An untrusted cache that signs every response it serves.

    ``tamper_with`` lets the attack tests flip it into a cheating cache
    that serves modified bytes — *signed*, because a Gemini cache
    cannot avoid signing; that signature is what later convicts it.
    """

    def __init__(
        self,
        host: str,
        keys: Optional[KeyPair] = None,
        clock: Optional[Clock] = None,
        service: str = "gemini",
        suite: HashSuite = SHA1,
        compute_context=None,
    ) -> None:
        from contextlib import nullcontext

        from repro.sim.clock import RealClock

        self.host = host
        self.service = service
        self.keys = keys if keys is not None else KeyPair.generate()
        self.clock = clock if clock is not None else RealClock()
        self.suite = suite
        self._compute = compute_context if compute_context is not None else nullcontext
        self._files: Dict[str, bytes] = {}
        self._tampered: Dict[str, bytes] = {}
        self.sign_count = 0

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    def fill(self, files: Mapping[str, bytes]) -> None:
        """Populate the cache from the origin (out-of-band refresh)."""
        for path, content in files.items():
            self._files["/" + path.lstrip("/")] = bytes(content)

    def tamper_with(self, path: str, bogus: bytes) -> None:
        """Turn malicious for *path*: serve *bogus* instead."""
        self._tampered["/" + path.lstrip("/")] = bytes(bogus)

    @rpc_method("gemini.get")
    def rpc_get(self, path: str) -> dict:
        normalized = "/" + str(path).lstrip("/")
        content = self._tampered.get(normalized, self._files.get(normalized))
        if content is None:
            raise ReproError(f"cache miss for {path!r}")
        payload = {
            "path": normalized,
            "content": content,
            "served_at": self.clock.now(),
        }
        with self._compute():
            envelope = SignedEnvelope.create(self.keys, payload, suite=self.suite)
        self.sign_count += 1
        return {"envelope": envelope.to_dict(), "cache_key_der": self.keys.public.der}

    def rpc_server(self) -> RpcServer:
        server = RpcServer(name=f"gemini@{self.host}")
        server.register_object(self)
        return server


class GeminiClient:
    """Client: verifies the *cache's* signature and archives receipts.

    Note what this does **not** verify: that the content matches what
    the publisher created. That gap is the design difference GlobeDoc
    closes.
    """

    def __init__(
        self,
        rpc: RpcClient,
        cache_endpoint: Endpoint,
        trusted_cache_key: PublicKey,
        compute_context=None,
    ) -> None:
        from contextlib import nullcontext

        self.rpc = rpc
        self.endpoint = cache_endpoint
        self.cache_key = trusted_cache_key
        self._compute = compute_context if compute_context is not None else nullcontext
        self.receipts: List[Receipt] = []

    def get(self, path: str) -> bytes:
        answer = self.rpc.call(self.endpoint, "gemini.get", path=path)
        receipt = Receipt.from_dict(answer)
        if receipt.cache_key_der != self.cache_key.der:
            raise AuthenticityError("response signed by an unexpected cache key")
        with self._compute():
            try:
                receipt.envelope.verify(self.cache_key)
            except SignatureError as exc:
                raise AuthenticityError(f"cache signature invalid: {exc}") from exc
        self.receipts.append(receipt)
        return receipt.content


class GeminiAuditor:
    """After-the-fact auditing: replay receipts against origin content.

    Returns the receipts that convict the cache — content it signed that
    the publisher never produced. This is the "caught red-handed"
    mechanism; detection is eventual, not preventive.
    """

    def __init__(self, origin_files: Mapping[str, bytes]) -> None:
        self.origin = {"/" + p.lstrip("/"): bytes(c) for p, c in origin_files.items()}

    def audit(self, receipts: List[Receipt], cache_key: PublicKey) -> List[Receipt]:
        convictions = []
        for receipt in receipts:
            # Only signed receipts are admissible evidence.
            try:
                receipt.envelope.verify(cache_key)
            except SignatureError:
                continue
            genuine = self.origin.get(receipt.path)
            if genuine is None or genuine != receipt.content:
                convictions.append(receipt)
        return convictions
