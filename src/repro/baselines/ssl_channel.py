"""The Apache+SSL baseline: a TLS-1.0-style secure channel.

Reproduces the cost structure the paper attributes to SSL:

* a handshake per connection costing two round trips plus an RSA
  key-exchange — the client *encrypts* a premaster secret under the
  server's public key and the server *decrypts* it with its private
  key (the expensive operation the paper contrasts with GlobeDoc's
  cheap signature verification);
* record protection on every byte: real AES-128-CBC plus HMAC-SHA1 on
  both ends, executed for real so the compute cost is measured, not
  modelled.

Security semantics also mirror TLS: the channel authenticates the
*server* and protects the *transport* — a malicious replica behind a
valid certificate can still serve bogus content, which is exactly the
gap GlobeDoc's object-signed integrity certificate closes (tested in
``tests/baselines/test_ssl_trust_gap.py``).
"""

from __future__ import annotations

import hmac
import os
from dataclasses import dataclass
from hashlib import sha1 as _sha1
from typing import Dict, Optional, Tuple

from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

from repro.crypto.keys import KeyPair, PublicKey, rsa_encrypt
from repro.errors import CryptoError, ReproError
from repro.globedoc.element import guess_content_type
from repro.net.address import Endpoint
from repro.net.rpc import RpcClient, RpcServer, rpc_method

__all__ = ["TlsSession", "SslServer", "SslClient"]

_KEY_LEN = 16
_MAC_LEN = 20
_BLOCK = 16


def _encrypt_record(key: bytes, mac_key: bytes, plaintext: bytes) -> bytes:
    """AES-128-CBC + HMAC-SHA1 (MAC-then-encrypt, TLS 1.0 style)."""
    mac = hmac.new(mac_key, plaintext, _sha1).digest()
    payload = plaintext + mac
    pad_len = _BLOCK - (len(payload) % _BLOCK)
    payload += bytes([pad_len]) * pad_len
    iv = os.urandom(_BLOCK)
    encryptor = Cipher(algorithms.AES(key), modes.CBC(iv)).encryptor()
    return iv + encryptor.update(payload) + encryptor.finalize()


def _decrypt_record(key: bytes, mac_key: bytes, ciphertext: bytes) -> bytes:
    if len(ciphertext) < _BLOCK * 2:
        raise CryptoError("TLS record too short")
    iv, body = ciphertext[:_BLOCK], ciphertext[_BLOCK:]
    decryptor = Cipher(algorithms.AES(key), modes.CBC(iv)).decryptor()
    payload = decryptor.update(body) + decryptor.finalize()
    pad_len = payload[-1]
    if pad_len < 1 or pad_len > _BLOCK:
        raise CryptoError("TLS record padding invalid")
    payload = payload[:-pad_len]
    plaintext, mac = payload[:-_MAC_LEN], payload[-_MAC_LEN:]
    if not hmac.compare_digest(hmac.new(mac_key, plaintext, _sha1).digest(), mac):
        raise CryptoError("TLS record MAC check failed")
    return plaintext


@dataclass
class TlsSession:
    """Established session keys for one connection."""

    session_id: str
    enc_key: bytes
    mac_key: bytes

    @classmethod
    def derive(cls, session_id: str, premaster: bytes) -> "TlsSession":
        """Toy KDF: split a SHA-1-expanded premaster into keys."""
        material = b""
        counter = 0
        while len(material) < _KEY_LEN + _MAC_LEN:
            material += _sha1(premaster + bytes([counter])).digest()
            counter += 1
        return cls(
            session_id=session_id,
            enc_key=material[:_KEY_LEN],
            mac_key=material[_KEY_LEN : _KEY_LEN + _MAC_LEN],
        )


class SslServer:
    """Static files behind a TLS-style handshake + encrypted records."""

    def __init__(
        self,
        host: str,
        keys: Optional[KeyPair] = None,
        service: str = "https",
        compute_context=None,
    ) -> None:
        from contextlib import nullcontext

        self.host = host
        self.service = service
        self.keys = keys if keys is not None else KeyPair.generate()
        self._compute = compute_context if compute_context is not None else nullcontext
        self._files: Dict[str, bytes] = {}
        self._sessions: Dict[str, TlsSession] = {}
        self.handshake_count = 0
        self.request_count = 0

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    @property
    def certificate_der(self) -> bytes:
        """The server 'certificate' (bare public key; CA validation out
        of scope — the paper's point is the crypto cost, not the PKI)."""
        return self.keys.public.der

    def put_file(self, path: str, content: bytes) -> None:
        if not path:
            raise ReproError("path must be non-empty")
        self._files["/" + path.lstrip("/")] = bytes(content)

    def put_files(self, files) -> None:
        for path, content in files.items():
            self.put_file(path, content)

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------

    @rpc_method("ssl.hello")
    def rpc_hello(self) -> dict:
        """ClientHello/ServerHello: return the server certificate."""
        return {"certificate_der": self.certificate_der}

    @rpc_method("ssl.key_exchange")
    def rpc_key_exchange(self, session_id: str, encrypted_premaster: bytes) -> dict:
        """The expensive step: RSA-decrypt the premaster secret."""
        with self._compute():
            premaster = self.keys.decrypt(bytes(encrypted_premaster))
            self._sessions[str(session_id)] = TlsSession.derive(str(session_id), premaster)
        self.handshake_count += 1
        return {"established": True}

    @rpc_method("ssl.get")
    def rpc_get(self, session_id: str, path: str) -> dict:
        session = self._sessions.get(str(session_id))
        if session is None:
            raise CryptoError(f"no TLS session {session_id!r}")
        self.request_count += 1
        normalized = "/" + str(path).lstrip("/")
        content = self._files.get(normalized)
        if content is None:
            return {"status": 404, "record": b""}
        with self._compute():
            record = _encrypt_record(session.enc_key, session.mac_key, content)
        return {
            "status": 200,
            "record": record,
            "content_type": guess_content_type(normalized),
        }

    def rpc_server(self) -> RpcServer:
        server = RpcServer(name=f"https@{self.host}")
        server.register_object(self)
        return server


class SslClient:
    """Client side: handshake once per connection, then encrypted GETs.

    ``compute_context`` charges the client-side RSA encrypt and record
    decryption to the simulated host, symmetrically with the GlobeDoc
    proxy's verification costs.
    """

    def __init__(
        self,
        rpc: RpcClient,
        server_endpoint: Endpoint,
        compute_context=None,
    ) -> None:
        from contextlib import nullcontext

        self.rpc = rpc
        self.endpoint = server_endpoint
        self._compute = compute_context if compute_context is not None else nullcontext
        self._session: Optional[TlsSession] = None
        self._counter = 0

    def handshake(self) -> TlsSession:
        """Run the 2-RTT handshake; returns the established session."""
        hello = self.rpc.call(self.endpoint, "ssl.hello")
        server_key = PublicKey(der=bytes(hello["certificate_der"]))
        self._counter += 1
        session_id = f"sess-{self._counter}-{os.urandom(4).hex()}"
        premaster = os.urandom(48)
        with self._compute():
            encrypted = rsa_encrypt(server_key, premaster)
        self.rpc.call(
            self.endpoint,
            "ssl.key_exchange",
            session_id=session_id,
            encrypted_premaster=encrypted,
        )
        with self._compute():
            self._session = TlsSession.derive(session_id, premaster)
        return self._session

    def get(self, path: str, new_connection: bool = True) -> bytes:
        """Fetch *path*; by default each GET opens a fresh connection
        (fresh handshake), matching wget-over-HTTPS in the paper."""
        if new_connection or self._session is None:
            self.handshake()
        assert self._session is not None
        answer = self.rpc.call(
            self.endpoint, "ssl.get", session_id=self._session.session_id, path=path
        )
        if int(answer["status"]) != 200:
            raise ReproError(f"HTTPS {answer['status']} for {path!r}")
        with self._compute():
            return _decrypt_record(
                self._session.enc_key, self._session.mac_key, bytes(answer["record"])
            )

    def get_many(self, paths, per_request_handshake: bool = True) -> Dict[str, bytes]:
        return {
            path: self.get(path, new_connection=per_request_handshake) for path in paths
        }
