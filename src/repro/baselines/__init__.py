"""Baselines the paper compares against (§4, §5).

* :mod:`~repro.baselines.plainhttp` — the Apache static-file server of
  Figures 5–7 (no security).
* :mod:`~repro.baselines.ssl_channel` — Apache+SSL: a TLS-style channel
  with a real RSA handshake and real symmetric record encryption,
  reproducing the paper's point that SSL's public-key **decrypt** per
  connection is far costlier than GlobeDoc's signature **verify**.
* :mod:`~repro.baselines.rosfs` — the read-only SFS design (ref [6]):
  one Merkle root signature for the whole store, per-element proofs,
  one global freshness interval.
* :mod:`~repro.baselines.gemini` — the Gemini cache-signing design
  (ref [12]): untrusted caches sign what they serve, cheats are caught
  by after-the-fact auditing rather than prevented.
"""

from repro.baselines.plainhttp import StaticHttpServer, PlainHttpClient
from repro.baselines.ssl_channel import SslServer, SslClient, TlsSession
from repro.baselines.rosfs import RosfsStore, RosfsServer, RosfsClient
from repro.baselines.gemini import GeminiCache, GeminiClient, GeminiAuditor

__all__ = [
    "StaticHttpServer",
    "PlainHttpClient",
    "SslServer",
    "SslClient",
    "TlsSession",
    "RosfsStore",
    "RosfsServer",
    "RosfsClient",
    "GeminiCache",
    "GeminiClient",
    "GeminiAuditor",
]
