"""Object servers (§2.1.3, §4).

An object server hosts local representatives of GlobeDoc objects,
provides their contact points, and exposes a remotely accessible admin
interface for replica creation/destruction. Access control follows the
paper's model: the administrator configures a keystore listing the
public keys allowed to create replicas (document owners and peer object
servers, enabling dynamic replication), and each entity may manage only
the replicas it created.
"""

from repro.server.keystore import Keystore
from repro.server.localrep import ReplicaLR, ProxyLR
from repro.server.objectserver import ObjectServer, HostedReplica
from repro.server.admin import AdminClient, AdminCommand
from repro.server.resources import ResourceAccountant, ResourceLimits, UNLIMITED

__all__ = [
    "Keystore",
    "ReplicaLR",
    "ProxyLR",
    "ObjectServer",
    "HostedReplica",
    "AdminClient",
    "AdminCommand",
    "ResourceAccountant",
    "ResourceLimits",
    "UNLIMITED",
]
