"""Authenticated admin commands for the object server.

The paper secures its command interface with TLS plus a keystore of
client public keys. We model the same trust relationship with *signed
commands*: the requester signs ``(op, args, issued_at, nonce)`` with its
private key; the server checks the key against the keystore, the
signature, a freshness window, and a nonce replay set. This gives the
property the experiments need — only keystore entities can create
replicas, and each entity manages only its own replicas — without
modelling the full TLS handshake (the TLS cost model lives with the SSL
baseline, where it is actually measured).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Set, Tuple

from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import sign_payload, verify_payload
from repro.errors import AccessDenied, SignatureError
from repro.net.rpc import RpcClient
from repro.server.keystore import Keystore
from repro.sim.clock import Clock

__all__ = ["AdminCommand", "AdminVerifier", "AdminClient", "FRESHNESS_WINDOW"]

#: Commands older than this (or this far in the future) are rejected.
FRESHNESS_WINDOW = 300.0


@dataclass(frozen=True)
class AdminCommand:
    """A signed admin request."""

    op: str
    args: Mapping[str, Any]
    issued_at: float
    nonce: str
    requester_key_der: bytes
    signature: bytes
    suite_name: str = SHA1.name

    @staticmethod
    def _payload(
        op: str, args: Mapping[str, Any], issued_at: float, nonce: str, key_der: bytes
    ) -> dict:
        return {
            "op": op,
            "args": dict(args),
            "issued_at": issued_at,
            "nonce": nonce,
            "requester_key_der": key_der,
        }

    @classmethod
    def create(
        cls,
        signer: KeyPair,
        op: str,
        args: Mapping[str, Any],
        clock: Clock,
        suite: HashSuite = SHA1,
    ) -> "AdminCommand":
        issued_at = clock.now()
        nonce = secrets.token_hex(16)
        payload = cls._payload(op, args, issued_at, nonce, signer.public.der)
        return cls(
            op=op,
            args=dict(args),
            issued_at=issued_at,
            nonce=nonce,
            requester_key_der=signer.public.der,
            signature=sign_payload(signer, payload, suite=suite),
            suite_name=suite.name,
        )

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "args": dict(self.args),
            "issued_at": self.issued_at,
            "nonce": self.nonce,
            "requester_key_der": self.requester_key_der,
            "signature": self.signature,
            "suite": self.suite_name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdminCommand":
        try:
            return cls(
                op=str(data["op"]),
                args=dict(data["args"]),
                issued_at=float(data["issued_at"]),
                nonce=str(data["nonce"]),
                requester_key_der=bytes(data["requester_key_der"]),
                signature=bytes(data["signature"]),
                suite_name=str(data.get("suite", SHA1.name)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AccessDenied(f"malformed admin command: {exc}") from exc


class AdminVerifier:
    """Server-side verification of admin commands."""

    def __init__(self, keystore: Keystore, clock: Clock) -> None:
        self.keystore = keystore
        self.clock = clock
        self._seen_nonces: Set[str] = set()

    def verify(self, command: AdminCommand) -> Tuple[PublicKey, str]:
        """Return (requester key, keystore label) or raise AccessDenied."""
        key = PublicKey(der=command.requester_key_der)
        label = self.keystore.label_of(key)  # AccessDenied if not authorised
        from repro.crypto.hashes import suite_by_name

        payload = AdminCommand._payload(
            command.op,
            command.args,
            command.issued_at,
            command.nonce,
            command.requester_key_der,
        )
        try:
            verify_payload(
                key, command.signature, payload, suite=suite_by_name(command.suite_name)
            )
        except SignatureError as exc:
            raise AccessDenied(f"admin command signature invalid: {exc}") from exc
        now = self.clock.now()
        if abs(now - command.issued_at) > FRESHNESS_WINDOW:
            raise AccessDenied(
                f"admin command outside freshness window "
                f"(issued_at={command.issued_at}, now={now})"
            )
        if command.nonce in self._seen_nonces:
            raise AccessDenied("admin command nonce replayed")
        self._seen_nonces.add(command.nonce)
        return key, label


class AdminClient:
    """Client-side helper: sign and send admin commands to a server."""

    def __init__(
        self,
        rpc: RpcClient,
        server_target,
        keys: KeyPair,
        clock: Clock,
        suite: HashSuite = SHA1,
    ) -> None:
        self.rpc = rpc
        self.target = server_target
        self.keys = keys
        self.clock = clock
        self.suite = suite

    def execute(self, op: str, **args: Any) -> Any:
        command = AdminCommand.create(self.keys, op, args, self.clock, suite=self.suite)
        return self.rpc.call(self.target, "admin.execute", command=command.to_dict())

    def create_replica(self, document) -> Dict[str, Any]:
        """Install a signed document as a replica; returns id + address."""
        return self.execute("create_replica", document=document.to_dict())

    def destroy_replica(self, replica_id: str) -> Dict[str, Any]:
        return self.execute("destroy_replica", replica_id=replica_id)

    def update_replica(self, document) -> Dict[str, Any]:
        return self.execute("update_replica", document=document.to_dict())

    def list_replicas(self) -> Dict[str, Any]:
        return self.execute("list_replicas")
