"""The object-server keystore (§4).

"The server administrator sets up a Java keystore listing the public
keys for all entities allowed to create GlobeDoc replicas on the server;
such entities can be either GlobeDoc owners (individuals) or other
GlobeDoc object servers (in this way we can support dynamic replication
algorithms)."

Entities are identified by their public key; names are administrative
labels only.

Revocation hooks: removing a key is not just forgetting it — whatever
the entity placed on the server must stop serving too. ``subscribe``
lets the hosting server (and the admin interface) react to every
*effective* revocation; callbacks fire only when a key was actually
removed, keeping :meth:`revoke` idempotent.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.crypto.keys import PublicKey
from repro.errors import AccessDenied

__all__ = ["Keystore"]

#: A revocation observer: ``(label, key)`` of the entity just removed.
RevokeCallback = Callable[[str, PublicKey], None]

#: An authorization observer: ``(label, key)`` of the entity just added.
AuthorizeCallback = Callable[[str, PublicKey], None]


class Keystore:
    """Administrator-maintained registry of authorised public keys."""

    def __init__(self) -> None:
        self._by_key: Dict[bytes, str] = {}
        self._revoke_callbacks: List[RevokeCallback] = []
        self._authorize_callbacks: List[AuthorizeCallback] = []

    def authorize(self, label: str, key: PublicKey) -> None:
        """Authorise *key* under administrative *label*."""
        self._by_key[key.der] = label
        for callback in list(self._authorize_callbacks):
            callback(label, key)

    def subscribe(self, callback: RevokeCallback) -> None:
        """Register an observer fired on every effective revocation."""
        self._revoke_callbacks.append(callback)

    def subscribe_authorize(self, callback: AuthorizeCallback) -> None:
        """Register an observer fired on every authorization (the durable
        backend journals keystore mutations through this hook)."""
        self._authorize_callbacks.append(callback)

    def revoke(self, key: PublicKey) -> bool:
        """Remove *key*; True if it was present (idempotent: a second
        revoke is a no-op and fires no callbacks).

        Callbacks are fired over a snapshot of the subscriber list: a
        callback that subscribes or unsubscribes mid-notification must
        not perturb this iteration (list mutation during iteration
        skips or repeats entries).
        """
        label = self._by_key.pop(key.der, None)
        if label is None:
            return False
        for callback in list(self._revoke_callbacks):
            callback(label, key)
        return True

    def unsubscribe(self, callback: RevokeCallback) -> None:
        """Remove a revocation observer (no-op if absent)."""
        try:
            self._revoke_callbacks.remove(callback)
        except ValueError:
            pass

    def entries(self) -> List[tuple]:
        """``(label, key_der)`` pairs, deterministic order (persistence)."""
        return sorted(
            ((label, der) for der, label in self._by_key.items()),
            key=lambda pair: (pair[0], pair[1]),
        )

    def is_authorized(self, key: PublicKey) -> bool:
        return key.der in self._by_key

    def label_of(self, key: PublicKey) -> str:
        """The label of an authorised key; AccessDenied if unknown."""
        label = self._by_key.get(key.der)
        if label is None:
            raise AccessDenied("key is not in the server keystore")
        return label

    def require(self, key: PublicKey) -> str:
        """Assert authorisation; returns the label."""
        return self.label_of(key)

    @property
    def labels(self) -> List[str]:
        return sorted(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)
