"""Local representatives (§2.1).

Binding to a GlobeDoc installs a *local representative* in the binding
process. It is either a **full replica** holding a copy of the object
state (:class:`ReplicaLR`) or a lightweight **forwarding proxy**
(:class:`ProxyLR`) that relays method invocations to a remote replica.
Both implement :class:`~repro.globedoc.document.GlobeDocInterface`, so
the client proxy is oblivious to which one it got — Globe's replication
transparency.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from repro.crypto.identity import IdentityCertificate
from repro.crypto.keys import PublicKey
from repro.errors import ConsistencyError
from repro.globedoc.document import DocumentState
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.net.address import ContactAddress
from repro.net.rpc import RpcClient

__all__ = ["ReplicaLR", "ProxyLR"]


class ReplicaLR:
    """A stateful local representative: a full copy of the object state.

    This is what object servers host. Note the *server* never verifies
    anything — it simply stores and serves; verification is entirely the
    client proxy's job (the server is untrusted).
    """

    def __init__(self, state: DocumentState) -> None:
        self.state = state
        self.serve_count = 0
        self.bytes_served = 0

    # -- GlobeDocInterface -------------------------------------------------

    def get_public_key(self) -> PublicKey:
        return self.state.public_key

    def get_identity_certificates(self) -> List[IdentityCertificate]:
        return list(self.state.identity_certs)

    def get_integrity_certificate(self) -> IntegrityCertificate:
        if self.state.integrity is None:
            raise ConsistencyError("replica holds no integrity certificate")
        return self.state.integrity

    def get_element(self, name: str) -> PageElement:
        element = self.state.element(name)
        self.serve_count += 1
        self.bytes_served += element.size
        return element

    def list_elements(self) -> List[str]:
        return self.state.element_names

    # -- State updates (owner/coordinator push) ----------------------------

    def update_state(self, state: DocumentState) -> None:
        """Replace the replica state (owner pushed a new version)."""
        self.state = state

    @property
    def version(self) -> int:
        return self.state.integrity.version if self.state.integrity else 0


class ProxyLR:
    """A stateless local representative forwarding to a remote replica.

    Used when binding chose not to (or could not) install a full copy:
    every method is an RPC to the replica's contact address. Payloads
    come back as wire dicts and are re-hydrated here; they remain
    *unverified* — the security pipeline operates on top of either LR
    flavour identically.
    """

    def __init__(self, client: RpcClient, address: ContactAddress) -> None:
        self.client = client
        self.address = address

    def _call(self, op: str, **args: Any) -> Any:
        return self.client.call(
            self.address, op, replica_id=self.address.replica_id, **args
        )

    def get_public_key(self) -> PublicKey:
        der = self._call("globedoc.get_public_key")
        return PublicKey(der=bytes(der))

    def get_identity_certificates(self) -> List[IdentityCertificate]:
        raw = self._call("globedoc.get_identity_certificates")
        return [IdentityCertificate.from_dict(c) for c in raw]

    def get_integrity_certificate(self) -> IntegrityCertificate:
        raw = self._call("globedoc.get_integrity_certificate")
        return IntegrityCertificate.from_dict(raw)

    def get_element(self, name: str) -> PageElement:
        raw = self._call("globedoc.get_element", name=name)
        return PageElement.from_dict(raw)

    def list_elements(self) -> List[str]:
        return list(self._call("globedoc.list_elements"))
