"""Server-side resource limits and accounting (§6 future work).

"Server administrators will be able to specify resource limitations (in
terms of disk space, memory, network bandwidth among other things) for
the replicas they are willing to host, with the object server being
responsible with enforcing these limitations."

:class:`ResourceLimits` is the administrator's declaration;
:class:`ResourceAccountant` meters actual usage (disk per replica,
replica count, bandwidth over a sliding window) and raises
:class:`~repro.errors.ResourceExceeded` when a limit would be crossed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ResourceExceeded
from repro.sim.clock import Clock

__all__ = ["ResourceLimits", "ResourceAccountant", "ResourceExceeded", "UNLIMITED"]

#: Sentinel for "no limit" on a dimension.
UNLIMITED = float("inf")


@dataclass(frozen=True)
class ResourceLimits:
    """Administrator-declared hosting capacity."""

    disk_bytes: float = UNLIMITED
    max_replicas: float = UNLIMITED
    bandwidth_bytes_per_sec: float = UNLIMITED
    bandwidth_window: float = 60.0

    def to_dict(self) -> dict:
        def enc(value: float):
            return None if value == UNLIMITED else value

        return {
            "disk_bytes": enc(self.disk_bytes),
            "max_replicas": enc(self.max_replicas),
            "bandwidth_bytes_per_sec": enc(self.bandwidth_bytes_per_sec),
            "bandwidth_window": self.bandwidth_window,
        }

    @classmethod
    def from_dict(cls, data) -> "ResourceLimits":
        def dec(value):
            return UNLIMITED if value is None else float(value)

        return cls(
            disk_bytes=dec(data.get("disk_bytes")),
            max_replicas=dec(data.get("max_replicas")),
            bandwidth_bytes_per_sec=dec(data.get("bandwidth_bytes_per_sec")),
            bandwidth_window=float(data.get("bandwidth_window", 60.0)),
        )


class ResourceAccountant:
    """Meters replica resource usage against :class:`ResourceLimits`."""

    def __init__(self, limits: ResourceLimits, clock: Clock) -> None:
        self.limits = limits
        self.clock = clock
        self._disk_by_replica: Dict[str, int] = {}
        self._served: Deque[Tuple[float, int]] = deque()
        self.bytes_served_total = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    # Disk / replica-count admission
    # ------------------------------------------------------------------

    @property
    def disk_used(self) -> int:
        return sum(self._disk_by_replica.values())

    @property
    def replica_count(self) -> int:
        return len(self._disk_by_replica)

    def admit_replica(self, replica_id: str, size_bytes: int) -> None:
        """Charge a new replica; raises :class:`ResourceExceeded` first."""
        if self.replica_count + 1 > self.limits.max_replicas:
            self.rejections += 1
            raise ResourceExceeded(
                f"replica cap reached ({int(self.limits.max_replicas)})"
            )
        if self.disk_used + size_bytes > self.limits.disk_bytes:
            self.rejections += 1
            raise ResourceExceeded(
                f"disk limit exceeded: {self.disk_used + size_bytes} > "
                f"{self.limits.disk_bytes:.0f} bytes"
            )
        self._disk_by_replica[replica_id] = size_bytes

    def resize_replica(self, replica_id: str, new_size: int) -> None:
        """Re-charge an updated replica (new document version)."""
        current = self._disk_by_replica.get(replica_id, 0)
        if self.disk_used - current + new_size > self.limits.disk_bytes:
            self.rejections += 1
            raise ResourceExceeded(
                f"disk limit exceeded by update to {replica_id!r}"
            )
        self._disk_by_replica[replica_id] = new_size

    def release_replica(self, replica_id: str) -> None:
        self._disk_by_replica.pop(replica_id, None)

    # ------------------------------------------------------------------
    # Bandwidth metering (sliding window)
    # ------------------------------------------------------------------

    def _window_bytes(self, now: float) -> int:
        cutoff = now - self.limits.bandwidth_window
        while self._served and self._served[0][0] < cutoff:
            self._served.popleft()
        return sum(size for _, size in self._served)

    def bandwidth_in_use(self) -> float:
        """Current mean bytes/second over the window."""
        now = self.clock.now()
        return self._window_bytes(now) / self.limits.bandwidth_window

    def charge_serve(self, nbytes: int) -> None:
        """Account *nbytes* about to be served; raises if over budget."""
        now = self.clock.now()
        budget = self.limits.bandwidth_bytes_per_sec * self.limits.bandwidth_window
        if self._window_bytes(now) + nbytes > budget:
            self.rejections += 1
            raise ResourceExceeded(
                f"bandwidth limit exceeded "
                f"({self.limits.bandwidth_bytes_per_sec:.0f} B/s over "
                f"{self.limits.bandwidth_window:.0f} s window)"
            )
        self._served.append((now, nbytes))
        self.bytes_served_total += nbytes

    # ------------------------------------------------------------------
    # Quoting (for hosting negotiation)
    # ------------------------------------------------------------------

    def quote(self) -> dict:
        """A snapshot of capacity and headroom, for negotiation."""
        limits = self.limits

        def headroom(limit: float, used: float):
            return None if limit == UNLIMITED else max(0.0, limit - used)

        return {
            "limits": limits.to_dict(),
            "disk_used": self.disk_used,
            "disk_free": headroom(limits.disk_bytes, self.disk_used),
            "replicas_hosted": self.replica_count,
            "replica_slots_free": headroom(limits.max_replicas, self.replica_count),
            "bandwidth_in_use": self.bandwidth_in_use()
            if limits.bandwidth_bytes_per_sec != UNLIMITED
            else 0.0,
        }
