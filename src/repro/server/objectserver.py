"""The Globe object server (§2.1.3).

"An object server is a process that provides an address space, contact
points and runtime services to the local representatives that it hosts"
plus "a remotely accessible interface that allows other local
representatives, other Globe object servers, or administrators to
request services from it", i.e. replica creation and destruction.

Two RPC surfaces:

* the **data** interface (``globedoc.*``) — unauthenticated, serves
  replica content to anyone; clients verify everything themselves;
* the **admin** interface (``admin.*``) — authenticated with signed
  commands checked against the keystore (standing in for the paper's
  TLS-with-client-keys channel); each entity may only manage the
  replicas it created.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.crypto.keys import PublicKey
from repro.errors import AccessDenied, ReplicaError, ServerError
from repro.globedoc.owner import SignedDocument
from repro.net.address import ContactAddress, Endpoint
from repro.net.rpc import RpcServer, rpc_method
from repro.revocation.feed import RevocationFeed
from repro.revocation.statement import SCOPE_KEY, RevocationStatement
from repro.server.admin import AdminCommand, AdminVerifier
from repro.server.keystore import Keystore
from repro.server.localrep import ReplicaLR
from repro.sim.clock import Clock, RealClock
from repro.versioning.delta import SignedDelta
from repro.versioning.frontier import FrontierCertificate
from repro.versioning.grant import WriterGrant
from repro.versioning.store import VersionedObjectStore, gossip_once

__all__ = ["ObjectServer", "HostedReplica"]

DEFAULT_SERVICE = "objectserver"


@dataclass
class HostedReplica:
    """A replica plus its hosting metadata."""

    replica_id: str
    oid_hex: str
    lr: ReplicaLR
    creator_label: str
    creator_key_der: bytes


class ObjectServer:
    """Hosts GlobeDoc replicas on one (simulated or real) host."""

    def __init__(
        self,
        host: str,
        site: str,
        keystore: Optional[Keystore] = None,
        clock: Optional[Clock] = None,
        service: str = DEFAULT_SERVICE,
        limits: Optional["ResourceLimits"] = None,
        tracer=None,
        metrics=None,
        data_dir: Optional[str] = None,
        storage_sync: bool = True,
        compute_context=None,
    ) -> None:
        from repro.obs import NOOP_METRICS
        from repro.server.resources import ResourceAccountant, ResourceLimits

        self.host = host
        self.site = site
        self.keystore = keystore if keystore is not None else Keystore()
        self.clock = clock if clock is not None else RealClock()
        self.service = service
        #: Handed to the RPC server so request handling shows up in the
        #: access trace as ``server.handle`` spans.
        self.tracer = tracer
        self._replicas: Dict[str, HostedReplica] = {}
        self._by_oid: Dict[str, str] = {}
        self._verifier = AdminVerifier(self.keystore, self.clock)
        self.resources = ResourceAccountant(
            limits if limits is not None else ResourceLimits(), self.clock
        )
        #: Durable backends (``data_dir`` set): the server journal holds
        #: keystore + replica state, the feed store holds the revocation
        #: log. ``storage_sync=False`` skips per-append fsync (tests).
        self.data_dir = data_dir
        self.state_store = None
        feed_store = None
        if data_dir is not None:
            from repro.server.persistence import ServerStateStore
            from repro.storage.store import DurableStore

            self.state_store = ServerStateStore(
                os.path.join(data_dir, "server"), sync=storage_sync
            )
            feed_store = DurableStore(
                os.path.join(data_dir, "feed"), sync=storage_sync
            )
        #: This server's copy of the replicated revocation feed
        #: (recovers its own log from the feed store when durable).
        self.revocation_feed = RevocationFeed(clock=self.clock, store=feed_store)
        #: Multi-writer surface: per-OID signed delta DAGs, durably
        #: journaled and re-verified on recovery (fail closed).
        versioning_store = None
        if data_dir is not None:
            from repro.storage.store import DurableStore

            versioning_store = DurableStore(
                os.path.join(data_dir, "versioning"), sync=storage_sync
            )
        self.versioning = VersionedObjectStore(
            clock=self.clock,
            store=versioning_store,
            tracer=self.tracer,
            compute_context=compute_context,
        )
        #: Operational events for the admin interface (entity
        #: revocations with the replicas they tore down).
        self.notices: List[Dict[str, Any]] = []
        #: Recovery accounting for the recovery bench gates.
        self.recovered_replicas = 0
        self.reverified_replicas = 0
        self._replaying = False
        if self.state_store is not None:
            self._recover_state()
        # A revoked keystore entity must stop serving, not just stop
        # creating: drop its hosted replicas the moment it is removed.
        self.keystore.subscribe(self._on_entity_revoked)
        if self.state_store is not None:
            # Journal hooks go in *after* recovery so the replay itself
            # is not re-journaled.
            self.keystore.subscribe_authorize(
                lambda label, key: self._journal_keystore("authorize", label, key)
            )
            self.keystore.subscribe(
                lambda label, key: self._journal_keystore("revoke", label, key)
            )
        #: Server-side monitor instruments. Gauges are host-labeled (one
        #: registry watches many servers); the feed head lets the report
        #: derive client serial lag against ``revocation_head_serial``.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_entity_revocations = self.metrics.counter(
            "server_entity_revocations_total",
            "Keystore entities revoked (replicas torn down), by host.",
            labelnames=("host",),
        )
        self._m_replicas = self.metrics.gauge(
            "server_replicas_hosted",
            "Replicas currently hosted, by server host.",
            labelnames=("host",),
        )
        self._m_feed_head = self.metrics.gauge(
            "revocation_feed_head",
            "Highest revocation-feed serial this server has published.",
            labelnames=("host",),
        )
        self.metrics.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------

    def _recover_state(self) -> None:
        """Reload keystore + replicas from disk; every replica has been
        re-verified by the store (signatures checked, fail closed) before
        it is installed here."""
        state = self.state_store.recover()
        self._replaying = True
        try:
            for label, key_der in state.keystore_entries:
                self.keystore.authorize(label, PublicKey(der=key_der))
            for replica in state.replicas:
                self.create_replica(
                    replica.document,
                    PublicKey(der=replica.creator_key_der),
                    replica.creator_label,
                )
        finally:
            self._replaying = False
        self.recovered_replicas = len(state.replicas)
        self.reverified_replicas = state.reverified

    def _journal_keystore(self, op: str, label: str, key: PublicKey) -> None:
        if self._replaying:
            return
        if op == "authorize":
            self.state_store.journal_authorize(label, key.der)
        else:
            self.state_store.journal_revoke(key.der)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        self.state_store.maybe_compact(self._durable_state)

    def _durable_state(self) -> dict:
        """Whole-state snapshot for compaction (rebuilt from live state,
        re-validated by ``SignedDocument.from_state`` on the way out)."""
        return {
            "keystore": [
                [label, key_der] for label, key_der in self.keystore.entries()
            ],
            "replicas": [
                {
                    "replica_id": hosted.replica_id,
                    "document": SignedDocument.from_state(hosted.lr.state).to_dict(),
                    "creator_label": hosted.creator_label,
                    "creator_key_der": hosted.creator_key_der,
                }
                for _, hosted in sorted(self._replicas.items())
            ],
        }

    def close(self) -> None:
        """Flush and close the durable stores (no-op when in-memory)."""
        if self.state_store is not None:
            self.state_store.close()
        if self.revocation_feed.store is not None:
            self.revocation_feed.store.close()
        self.versioning.close()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    def contact_address(self, oid_hex: str) -> ContactAddress:
        """The contact address for the replica of *oid_hex* on this server."""
        replica_id = self._by_oid.get(oid_hex)
        if replica_id is None:
            raise ReplicaError(f"no replica of {oid_hex[:12]}… on {self.host}")
        return ContactAddress(
            endpoint=self.endpoint,
            protocol="globedoc/replica",
            replica_id=replica_id,
        )

    # ------------------------------------------------------------------
    # Replica lifecycle (authenticated admin surface)
    # ------------------------------------------------------------------

    def create_replica(
        self, document: SignedDocument, creator_key: PublicKey, creator_label: str
    ) -> HostedReplica:
        """Install a replica of *document* (internal, pre-authenticated)."""
        oid_hex = document.oid.hex
        if oid_hex in self._by_oid:
            raise ReplicaError(f"replica of {oid_hex[:12]}… already hosted on {self.host}")
        replica_id = f"{oid_hex[:16]}@{self.host}"
        # Admission control: the administrator's declared limits (§6).
        self.resources.admit_replica(replica_id, document.total_size)
        hosted = HostedReplica(
            replica_id=replica_id,
            oid_hex=oid_hex,
            lr=ReplicaLR(document.state()),
            creator_label=creator_label,
            creator_key_der=creator_key.der,
        )
        self._replicas[replica_id] = hosted
        self._by_oid[oid_hex] = replica_id
        if self.state_store is not None and not self._replaying:
            self.state_store.journal_replica_create(
                replica_id, document, creator_label, creator_key.der
            )
            self._maybe_compact()
        return hosted

    def destroy_replica(self, replica_id: str, requester_key: PublicKey) -> None:
        """Remove a replica; only its creator may do so (§4)."""
        hosted = self._replicas.get(replica_id)
        if hosted is None:
            raise ReplicaError(f"no such replica {replica_id!r} on {self.host}")
        if hosted.creator_key_der != requester_key.der:
            raise AccessDenied(
                f"replica {replica_id!r} was created by {hosted.creator_label!r}; "
                "only its creator may destroy it"
            )
        del self._replicas[replica_id]
        self._by_oid.pop(hosted.oid_hex, None)
        self.resources.release_replica(replica_id)
        if self.state_store is not None and not self._replaying:
            self.state_store.journal_replica_destroy(replica_id)
            self._maybe_compact()

    def update_replica(
        self, document: SignedDocument, requester_key: PublicKey
    ) -> HostedReplica:
        """Push a new document version to an existing replica."""
        oid_hex = document.oid.hex
        replica_id = self._by_oid.get(oid_hex)
        if replica_id is None:
            raise ReplicaError(f"no replica of {oid_hex[:12]}… on {self.host}")
        hosted = self._replicas[replica_id]
        if hosted.creator_key_der != requester_key.der:
            raise AccessDenied("only the replica creator may update it")
        self.resources.resize_replica(replica_id, document.total_size)
        hosted.lr.update_state(document.state())
        if self.state_store is not None and not self._replaying:
            self.state_store.journal_replica_update(replica_id, document)
            self._maybe_compact()
        return hosted

    # ------------------------------------------------------------------
    # Revocation
    # ------------------------------------------------------------------

    def revoke_entity(self, key: PublicKey) -> bool:
        """Revoke a keystore entity: key out, its replicas down, admin
        notified. True if the key was present (idempotent)."""
        return self.keystore.revoke(key)

    def _on_entity_revoked(self, label: str, key: PublicKey) -> None:
        """Keystore callback: tear down everything the entity placed
        here (server-administrator authority — the creator-only rule
        guards *peers*, not the host's own housekeeping)."""
        dropped: List[str] = []
        for replica_id, hosted in list(self._replicas.items()):
            if hosted.creator_key_der == key.der:
                del self._replicas[replica_id]
                self._by_oid.pop(hosted.oid_hex, None)
                self.resources.release_replica(replica_id)
                if self.state_store is not None and not self._replaying:
                    self.state_store.journal_replica_destroy(replica_id)
                dropped.append(replica_id)
        self.notices.append(
            {
                "event": "entity_revoked",
                "label": label,
                "at": self.clock.now(),
                "replicas_dropped": sorted(dropped),
            }
        )
        self._m_entity_revocations.labels(host=self.host).inc()

    def _collect_metrics(self) -> None:
        self._m_replicas.labels(host=self.host).set(float(self.replica_count))
        self._m_feed_head.labels(host=self.host).set(
            float(self.revocation_feed.head)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def replica(self, replica_id: str) -> HostedReplica:
        hosted = self._replicas.get(replica_id)
        if hosted is None:
            raise ReplicaError(f"no such replica {replica_id!r} on {self.host}")
        return hosted

    def replica_for_oid(self, oid_hex: str) -> HostedReplica:
        replica_id = self._by_oid.get(oid_hex)
        if replica_id is None:
            raise ReplicaError(f"no replica of {oid_hex[:12]}… on {self.host}")
        return self._replicas[replica_id]

    def hosts_oid(self, oid_hex: str) -> bool:
        return oid_hex in self._by_oid

    @property
    def replica_ids(self) -> List[str]:
        return sorted(self._replicas)

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    # ------------------------------------------------------------------
    # RPC data interface (untrusted surface)
    # ------------------------------------------------------------------

    def _lr(self, replica_id: str) -> ReplicaLR:
        return self.replica(replica_id).lr

    @rpc_method("globedoc.get_public_key")
    def rpc_get_public_key(self, replica_id: str) -> bytes:
        return self._lr(replica_id).get_public_key().der

    @rpc_method("globedoc.get_identity_certificates")
    def rpc_get_identity_certificates(self, replica_id: str) -> list:
        return [c.to_dict() for c in self._lr(replica_id).get_identity_certificates()]

    @rpc_method("globedoc.get_integrity_certificate")
    def rpc_get_integrity_certificate(self, replica_id: str) -> dict:
        return self._lr(replica_id).get_integrity_certificate().to_dict()

    @rpc_method("globedoc.get_element")
    def rpc_get_element(self, replica_id: str, name: str) -> dict:
        element = self._lr(replica_id).get_element(name)
        # Bandwidth enforcement: a serve that would exceed the declared
        # budget is refused (the client fails over to another replica).
        self.resources.charge_serve(element.size)
        return element.to_dict()

    @rpc_method("server.quote")
    def rpc_quote(self) -> dict:
        """Hosting quote for negotiation (§6): limits + current headroom.

        Unauthenticated by design — capacity advertisement is public,
        like any hosting offer.
        """
        return {"host": self.host, "site": self.site, **self.resources.quote()}

    @rpc_method("globedoc.list_elements")
    def rpc_list_elements(self, replica_id: str) -> list:
        return self._lr(replica_id).list_elements()

    # ------------------------------------------------------------------
    # RPC revocation feed (self-authenticating surface)
    # ------------------------------------------------------------------
    #
    # Neither operation needs the admin channel: statements carry their
    # own proof (signed by the key their OID self-certifies), so the
    # server verifies each one on publish and clients re-verify on
    # fetch. Wider distribution of a genuine revocation only helps.

    @rpc_method("revocation.fetch")
    def rpc_revocation_fetch(self, since: int = 0) -> dict:
        return self.revocation_feed.fetch(since=since)

    @rpc_method("revocation.publish")
    def rpc_revocation_publish(self, statement: Mapping[str, Any]) -> dict:
        stmt = RevocationStatement.from_dict(statement)
        added = self.revocation_feed.publish(stmt)  # verifies; raises on garbage
        if added and stmt.scope == SCOPE_KEY:
            # A revoked object key is also a revoked hosting entity:
            # its locally hosted replicas must stop serving now, not at
            # the clients' next revocation check.
            self.revoke_entity(stmt.issuer_key)
        return {"added": added, "head": self.revocation_feed.head}

    # ------------------------------------------------------------------
    # RPC versioning interface (untrusted multi-writer surface)
    # ------------------------------------------------------------------
    #
    # Like the data interface, none of this needs the admin channel:
    # grants and deltas carry their own proof (owner / granted-writer
    # signatures over self-certifying OIDs), the store verifies each
    # artifact on admission, and clients re-verify everything through
    # the frontier check. The server is plumbing, never authority.

    @rpc_method("versioning.register")
    def rpc_versioning_register(self, object_key_der: bytes) -> dict:
        oid_hex = self.versioning.register_object(
            PublicKey(der=bytes(object_key_der))
        )
        return {"oid": oid_hex}

    @rpc_method("versioning.put_grant")
    def rpc_versioning_put_grant(
        self, oid_hex: str, grant: Mapping[str, Any]
    ) -> dict:
        added = self.versioning.put_grant(oid_hex, WriterGrant.from_dict(grant))
        return {"added": added}

    @rpc_method("versioning.publish_delta")
    def rpc_versioning_publish_delta(
        self, oid_hex: str, delta: Mapping[str, Any]
    ) -> dict:
        added = self.versioning.put_delta(oid_hex, SignedDelta.from_dict(delta))
        return {
            "added": added,
            "heads": self.versioning.heads(oid_hex),
            "delta_count": self.versioning.delta_count(oid_hex),
        }

    @rpc_method("versioning.publish_frontier")
    def rpc_versioning_publish_frontier(
        self, oid_hex: str, cert: Mapping[str, Any]
    ) -> dict:
        added = self.versioning.put_frontier_cert(
            oid_hex, FrontierCertificate.from_dict(cert)
        )
        return {"added": added}

    @rpc_method("versioning.fetch")
    def rpc_versioning_fetch(
        self, oid_hex: str, have_ids: Optional[list] = None
    ) -> dict:
        # fetch() already carries peer_delta_ids — the claimed-id list
        # readers need for withholding detection and gossip's push half.
        return self.versioning.fetch(oid_hex, have_ids=have_ids)

    @rpc_method("versioning.delta_ids")
    def rpc_versioning_delta_ids(self, oid_hex: str) -> list:
        return self.versioning.delta_ids(oid_hex)

    def gossip_versioned(self, rpc, peer_endpoint, oid_hex: str) -> dict:
        """One anti-entropy round for *oid_hex* against a peer server."""
        return gossip_once(
            self.versioning, rpc, peer_endpoint, oid_hex, tracer=self.tracer
        )

    # ------------------------------------------------------------------
    # RPC admin interface (authenticated surface)
    # ------------------------------------------------------------------

    @rpc_method("admin.execute")
    def rpc_admin_execute(self, command: Mapping[str, Any]) -> Any:
        """Verify and dispatch a signed admin command."""
        cmd = AdminCommand.from_dict(command)
        requester_key, label = self._verifier.verify(cmd)
        if cmd.op == "create_replica":
            document = SignedDocument.from_dict(cmd.args["document"])
            hosted = self.create_replica(document, requester_key, label)
            return {
                "replica_id": hosted.replica_id,
                "address": self.contact_address(hosted.oid_hex).to_dict(),
            }
        if cmd.op == "destroy_replica":
            self.destroy_replica(str(cmd.args["replica_id"]), requester_key)
            return {"destroyed": True}
        if cmd.op == "update_replica":
            document = SignedDocument.from_dict(cmd.args["document"])
            hosted = self.update_replica(document, requester_key)
            return {"replica_id": hosted.replica_id, "version": hosted.lr.version}
        if cmd.op == "list_replicas":
            return {
                "replicas": [
                    {"replica_id": r, "oid": self._replicas[r].oid_hex}
                    for r in self.replica_ids
                ]
            }
        if cmd.op == "list_notices":
            return {"notices": list(self.notices)}
        raise ServerError(f"unknown admin operation {cmd.op!r}")

    def rpc_server(self) -> RpcServer:
        server = RpcServer(
            name=f"objectserver@{self.host}",
            tracer=self.tracer,
            metrics=self.metrics,
        )
        server.register_object(self)
        return server
