"""Durable backend for an object server: keystore + hosted replicas.

The server journals every admin-surface mutation — keystore
authorizations and revocations, replica create/update/destroy — through
a :class:`~repro.storage.store.DurableStore`, and recovers by reducing
the snapshot-plus-journal back to the final state.

Recovery-time re-verification
-----------------------------
A recovered replica is exactly as untrusted as one fetched off the
wire: before it is allowed to serve a single byte, the loaded document
must prove itself —

1. the embedded public key hashes to the stated OID (self-certification),
2. the integrity certificate's signature verifies under that key,
3. every element's content hash matches its certificate row.

Any failure raises :class:`~repro.errors.RecoveryIntegrityError`: a
CRC-valid record that no longer verifies means tampering at rest, and a
server that "recovered" it would become exactly the malicious replica
the client-side checks exist to catch. Keystore entries carry no
signatures (they are the administrator's local configuration), so for
them the CRC is the integrity story, as for any config file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RecoveryIntegrityError, ReproError
from repro.globedoc.owner import SignedDocument
from repro.storage.store import DurableStore

__all__ = ["ServerStateStore", "RecoveredReplica", "RecoveredServerState"]


@dataclass
class RecoveredReplica:
    """One replica loaded from disk, already re-verified."""

    replica_id: str
    document: SignedDocument
    creator_label: str
    creator_key_der: bytes


@dataclass
class RecoveredServerState:
    """The reduced, verified state handed back to the object server."""

    #: ``(label, key_der)`` keystore entries, insertion order.
    keystore_entries: List[Tuple[str, bytes]] = field(default_factory=list)
    replicas: List[RecoveredReplica] = field(default_factory=list)
    #: Replicas that passed full re-verification (== len(replicas):
    #: recovery fails closed on the first one that does not).
    reverified: int = 0
    torn_bytes_dropped: int = 0
    cold: bool = True


class ServerStateStore:
    """Snapshot + journal persistence for one :class:`ObjectServer`."""

    def __init__(
        self,
        directory,
        sync: bool = True,
        compact_every: Optional[int] = 64,
    ) -> None:
        self.store = DurableStore(
            directory, sync=sync, compact_every=compact_every
        )

    # ------------------------------------------------------------------
    # Journaling (one record per admin-surface mutation)
    # ------------------------------------------------------------------

    def journal_authorize(self, label: str, key_der: bytes) -> None:
        self.store.append({"op": "authorize", "label": label, "key_der": key_der})

    def journal_revoke(self, key_der: bytes) -> None:
        self.store.append({"op": "revoke", "key_der": key_der})

    def journal_replica_create(
        self,
        replica_id: str,
        document: SignedDocument,
        creator_label: str,
        creator_key_der: bytes,
    ) -> None:
        self.store.append(
            {
                "op": "replica.create",
                "replica_id": replica_id,
                "document": document.to_dict(),
                "creator_label": creator_label,
                "creator_key_der": creator_key_der,
            }
        )

    def journal_replica_update(self, replica_id: str, document: SignedDocument) -> None:
        self.store.append(
            {
                "op": "replica.update",
                "replica_id": replica_id,
                "document": document.to_dict(),
            }
        )

    def journal_replica_destroy(self, replica_id: str) -> None:
        self.store.append({"op": "replica.destroy", "replica_id": replica_id})

    def maybe_compact(self, state_fn) -> bool:
        return self.store.maybe_compact(state_fn)

    def compact(self, state: dict) -> None:
        self.store.compact(state)

    def close(self) -> None:
        self.store.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveredServerState:
        """Reduce snapshot + journal to final state; re-verify replicas."""
        recovered = self.store.recover()
        keystore: Dict[bytes, str] = {}
        replicas: Dict[str, dict] = {}
        if recovered.snapshot is not None:
            for label, key_der in recovered.snapshot.get("keystore", []):
                keystore[bytes(key_der)] = str(label)
            for entry in recovered.snapshot.get("replicas", []):
                replicas[str(entry["replica_id"])] = dict(entry)
        for record in recovered.records:
            self._apply(record, keystore, replicas)
        state = RecoveredServerState(
            keystore_entries=[(label, der) for der, label in keystore.items()],
            torn_bytes_dropped=recovered.torn_bytes_dropped,
            cold=recovered.cold,
        )
        for entry in replicas.values():
            state.replicas.append(self._reverify(entry))
            state.reverified += 1
        return state

    @staticmethod
    def _apply(record: dict, keystore: Dict[bytes, str], replicas: Dict[str, dict]) -> None:
        op = record.get("op")
        if op == "authorize":
            keystore[bytes(record["key_der"])] = str(record["label"])
        elif op == "revoke":
            keystore.pop(bytes(record["key_der"]), None)
        elif op == "replica.create":
            replicas[str(record["replica_id"])] = dict(record)
        elif op == "replica.update":
            replica = replicas.get(str(record["replica_id"]))
            if replica is not None:
                replica["document"] = record["document"]
        elif op == "replica.destroy":
            replicas.pop(str(record["replica_id"]), None)
        else:
            raise RecoveryIntegrityError(
                f"server journal holds an unknown operation {op!r} — "
                "refusing to guess at state it would have produced"
            )

    @staticmethod
    def _reverify(entry: dict) -> RecoveredReplica:
        """Prove a loaded replica genuine before it may serve (see
        module docstring for the three checks)."""
        replica_id = str(entry["replica_id"])
        try:
            document = SignedDocument.from_dict(entry["document"])
        except Exception as exc:
            raise RecoveryIntegrityError(
                f"recovered replica {replica_id!r} does not decode: {exc}"
            ) from exc
        if not document.oid.matches_key(document.public_key):
            raise RecoveryIntegrityError(
                f"recovered replica {replica_id!r} embeds a public key that "
                "does not hash to its OID — tampered at rest"
            )
        try:
            # Signature of the integrity certificate under the object
            # key (clock=None: authenticity, not freshness — expiry is
            # enforced per-access by the client pipeline), then every
            # element hash against its certificate row.
            document.integrity.verify_signature(document.public_key, clock=None)
            document.state()
        except ReproError as exc:
            raise RecoveryIntegrityError(
                f"recovered replica {replica_id!r} failed re-verification — "
                f"refusing to serve unproven bytes: {exc}"
            ) from exc
        return RecoveredReplica(
            replica_id=replica_id,
            document=document,
            creator_label=str(entry["creator_label"]),
            creator_key_der=bytes(entry["creator_key_der"]),
        )
