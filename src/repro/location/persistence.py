"""Durable backend for the location service: contact-address records.

The location service is untrusted *hint* infrastructure — clients
verify everything they fetch against the self-certifying OID — so its
records carry no signatures to re-check. What a restart must not lose
is *availability*: a location tree that comes back empty strands every
OID until replicas re-register, which under dynamic replication can be
never (the coordinator only issues deltas). The journal therefore
captures every accepted ``insert``/``delete``/``move`` and recovery
reduces them to the final address set, guarded by the storage layer's
frame checksums (the same integrity story as any routing table).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RecoveryIntegrityError, ReproError
from repro.net.address import ContactAddress
from repro.storage.store import DurableStore

__all__ = ["DurableLocationStore"]


class DurableLocationStore:
    """Journals a :class:`~repro.location.service.LocationService`'s
    mutations and replays the reduced address set into a fresh tree."""

    def __init__(
        self, directory, sync: bool = True, compact_every: Optional[int] = 256
    ) -> None:
        self.store = DurableStore(directory, sync=sync, compact_every=compact_every)
        #: Reduced view: (oid, site) → list of address wire dicts.
        self._entries: Dict[Tuple[str, str], List[dict]] = {}
        self.recovered_addresses = 0

    def bind(self, service) -> None:
        """Replay persisted addresses into *service*, then journal
        through it. Call after the domain tree's sites are attached."""
        recovered = self.store.recover()
        if recovered.snapshot is not None:
            for entry in recovered.snapshot.get("entries", []):
                key = (str(entry["oid"]), str(entry["site"]))
                self._entries.setdefault(key, []).append(dict(entry["address"]))
        for record in recovered.records:
            self._reduce(record)
        for (oid, site), addresses in sorted(self._entries.items()):
            for address in addresses:
                try:
                    service.tree.insert(oid, site, ContactAddress.from_dict(address))
                except ReproError as exc:
                    raise RecoveryIntegrityError(
                        f"recovered location record for OID {oid[:12]}… was "
                        f"refused by the live tree: {exc}"
                    ) from exc
                self.recovered_addresses += 1
        service.journal = self._journal

    def _reduce(self, record: dict) -> None:
        op = record.get("op")
        if op == "insert":
            key = (str(record["oid"]), str(record["site"]))
            self._entries.setdefault(key, []).append(dict(record["address"]))
        elif op == "delete":
            key = (str(record["oid"]), str(record["site"]))
            addresses = self._entries.get(key, [])
            try:
                addresses.remove(dict(record["address"]))
            except ValueError:
                pass
            if not addresses:
                self._entries.pop(key, None)
        elif op == "move":
            self._reduce(
                {
                    "op": "delete",
                    "oid": record["oid"],
                    "site": record["from_site"],
                    "address": record["address"],
                }
            )
            self._reduce(
                {
                    "op": "insert",
                    "oid": record["oid"],
                    "site": record["to_site"],
                    "address": record["address"],
                }
            )
        else:
            raise RecoveryIntegrityError(
                f"location journal holds an unknown operation {op!r}"
            )

    def _journal(self, record: dict) -> None:
        self._reduce(record)
        self.store.append(record)
        self.store.maybe_compact(self._snapshot_state)

    def _snapshot_state(self) -> dict:
        return {
            "entries": [
                {"oid": oid, "site": site, "address": address}
                for (oid, site), addresses in sorted(self._entries.items())
                for address in addresses
            ]
        }

    def compact(self) -> None:
        self.store.compact(self._snapshot_state())

    def close(self) -> None:
        self.store.close()
