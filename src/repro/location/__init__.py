"""The Globe Location Service (§2.1.2).

Maps OIDs onto contact addresses through a distributed search tree over
a hierarchy of domains (site → region → … → root). An object is
recorded at each site where it has a contact address and, recursively,
in every enclosing domain up to the root: site-level records hold the
actual addresses, higher-level records hold pointers to the next level
down. Lookups expand ring by ring from the client's site, so a nearby
replica is found without touching the root.

The service is **untrusted** by design: a lying answer can cause at most
denial of service because the proxy's self-certifying-OID check rejects
any replica that is not part of the requested object (§3.1.2).
"""

from repro.location.tree import DomainTree, DomainNode
from repro.location.service import LocationService, LocationClient, LookupResult
from repro.location.cache import AddressCache

__all__ = [
    "DomainTree",
    "DomainNode",
    "LocationService",
    "LocationClient",
    "LookupResult",
    "AddressCache",
]
