"""The Location Service RPC front end and client.

The server walks the domain tree on behalf of the querying proxy and
reports, along with the addresses, the number of tree nodes the search
visited — the cost metric used by the location ablation bench (the paper
argues expanding-ring search scales where DNS-style flat records do
not). Besides lookup, the interface supports the insertion, deletion and
move of contact-address mappings used by the replication coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional

from repro.errors import LocationError
from repro.globedoc.oid import ObjectId
from repro.location.cache import AddressCache
from repro.location.tree import DomainTree
from repro.net.address import ContactAddress
from repro.net.rpc import RpcClient, RpcServer, rpc_method
from repro.sim.clock import Clock

__all__ = ["LocationService", "LocationClient", "LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """Addresses for an OID, closest-domain first, plus search cost."""

    oid_hex: str
    addresses: List[ContactAddress]
    nodes_visited: int
    from_cache: bool = False

    @property
    def closest(self) -> ContactAddress:
        if not self.addresses:
            raise LocationError("lookup result holds no addresses")
        return self.addresses[0]


class LocationService:
    """Server side: owns the domain tree.

    Holds no secrets and signs nothing — by design the proxy treats its
    answers as hints to be verified against the self-certifying OID.
    """

    def __init__(self, tree: Optional[DomainTree] = None) -> None:
        self.tree = tree if tree is not None else DomainTree()
        #: Durable-journal hook (set by DurableLocationStore.bind):
        #: called with one dict per accepted mutation.
        self.journal = None

    def add_site(self, path: str) -> None:
        self.tree.add_site(path)

    # ------------------------------------------------------------------
    # RPC interface
    # ------------------------------------------------------------------

    @rpc_method("location.lookup")
    def lookup(self, oid: str, origin_site: str) -> dict:
        addresses, visited = self.tree.lookup(oid, origin_site)
        return {
            "oid": oid,
            "addresses": [a.to_dict() for a in addresses],
            "nodes_visited": visited,
        }

    @rpc_method("location.lookup_all")
    def lookup_all(self, oid: str, origin_site: str) -> dict:
        """Widened lookup: every address in the tree, closest ring first.

        Used by clients on failover, after the closest replica turned
        out broken or malicious — the recovery path behind the paper's
        "temporary denial of service" bound.
        """
        near, visited = self.tree.lookup(oid, origin_site)  # raises if none
        rest = [a for a in self.tree.all_addresses(oid) if a not in near]
        return {
            "oid": oid,
            "addresses": [a.to_dict() for a in near + rest],
            "nodes_visited": visited + self.tree.total_records(),
        }

    @rpc_method("location.insert")
    def insert(self, oid: str, site: str, address: Mapping[str, Any]) -> int:
        result = self.tree.insert(oid, site, ContactAddress.from_dict(address))
        if self.journal is not None:
            self.journal(
                {"op": "insert", "oid": oid, "site": site, "address": dict(address)}
            )
        return result

    @rpc_method("location.delete")
    def delete(self, oid: str, site: str, address: Mapping[str, Any]) -> int:
        result = self.tree.delete(oid, site, ContactAddress.from_dict(address))
        if self.journal is not None:
            self.journal(
                {"op": "delete", "oid": oid, "site": site, "address": dict(address)}
            )
        return result

    @rpc_method("location.move")
    def move(
        self, oid: str, address: Mapping[str, Any], from_site: str, to_site: str
    ) -> int:
        result = self.tree.move(
            oid, ContactAddress.from_dict(address), from_site, to_site
        )
        if self.journal is not None:
            self.journal(
                {
                    "op": "move",
                    "oid": oid,
                    "address": dict(address),
                    "from_site": from_site,
                    "to_site": to_site,
                }
            )
        return result

    def rpc_server(self, tracer=None) -> RpcServer:
        server = RpcServer(name="location", tracer=tracer)
        server.register_object(self)
        return server


class LocationClient:
    """Client side: queries the service, caches addresses with a TTL.

    The cache matters for the paper's model — replica addresses change
    frequently under dynamic replication, so the TTL is short by default
    and a failed bind should :meth:`invalidate` the entry.
    """

    def __init__(
        self,
        client: RpcClient,
        service_target,
        origin_site: str,
        clock: Optional[Clock] = None,
        cache_ttl: float = 60.0,
    ) -> None:
        self.client = client
        self.target = service_target
        self.origin_site = origin_site
        self.cache = AddressCache(clock=clock, ttl=cache_ttl)

    def lookup(self, oid: ObjectId, widen: bool = False) -> LookupResult:
        """Find contact addresses for *oid*.

        ``widen=True`` performs the exhaustive all-rings lookup used for
        failover; widened results are not cached (they reflect a failure
        condition, not the steady state).
        """
        if not widen:
            cached = self.cache.get(oid.hex)
            if cached is not None:
                return LookupResult(
                    oid_hex=oid.hex, addresses=cached, nodes_visited=0, from_cache=True
                )
        op = "location.lookup_all" if widen else "location.lookup"
        answer = self.client.call(
            self.target, op, oid=oid.hex, origin_site=self.origin_site
        )
        addresses = [ContactAddress.from_dict(a) for a in answer["addresses"]]
        result = LookupResult(
            oid_hex=oid.hex,
            addresses=addresses,
            nodes_visited=int(answer["nodes_visited"]),
        )
        if not widen:
            self.cache.put(oid.hex, addresses)
        return result

    def register_replica(self, oid: ObjectId, site: str, address: ContactAddress) -> int:
        """Insert a contact address (replication coordinator path)."""
        self.cache.invalidate(oid.hex)
        return int(
            self.client.call(
                self.target,
                "location.insert",
                oid=oid.hex,
                site=site,
                address=address.to_dict(),
            )
        )

    def unregister_replica(self, oid: ObjectId, site: str, address: ContactAddress) -> int:
        self.cache.invalidate(oid.hex)
        return int(
            self.client.call(
                self.target,
                "location.delete",
                oid=oid.hex,
                site=site,
                address=address.to_dict(),
            )
        )

    def invalidate(self, oid: ObjectId) -> None:
        """Drop the cached addresses after a failed bind."""
        self.cache.invalidate(oid.hex)
