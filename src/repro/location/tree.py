"""The distributed search tree underlying the Location Service.

Domains form a tree; leaves are *sites*. Each node keeps, per OID,
either a set of contact addresses (at a site) or the set of child
domains through which addresses are reachable (at interior nodes).
Inserting an address at a site therefore updates O(depth) nodes, and
deleting the last address in a subtree cleans the pointers back up —
the invariants the property tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import LocationError, ObjectNotFound
from repro.net.address import ContactAddress

__all__ = ["DomainNode", "DomainTree"]


@dataclass
class DomainNode:
    """One domain in the hierarchy."""

    name: str
    parent: Optional["DomainNode"] = None
    children: Dict[str, "DomainNode"] = field(default_factory=dict)
    #: site level: oid hex -> contact addresses
    addresses: Dict[str, Set[ContactAddress]] = field(default_factory=dict)
    #: interior level: oid hex -> names of children that lead to addresses
    pointers: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def is_site(self) -> bool:
        """Sites are the leaves where actual addresses live."""
        return not self.children

    @property
    def path(self) -> str:
        parts = []
        node: Optional[DomainNode] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def record_count(self) -> int:
        return len(self.addresses) + len(self.pointers)


class DomainTree:
    """The full domain hierarchy with insert/delete/lookup operations.

    Build it from site paths (``"root/europe/nl-vu"``); every interior
    domain is created on demand. All operations count the nodes they
    touch so the harness can charge realistic lookup costs.
    """

    def __init__(self, root_name: str = "root") -> None:
        self.root = DomainNode(name=root_name)
        self._sites: Dict[str, DomainNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_site(self, path: str) -> DomainNode:
        """Ensure the domain chain for *path* exists; return the site node.

        *path* must start with the root domain name.
        """
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != self.root.name:
            raise LocationError(
                f"site path must start with root {self.root.name!r}: {path!r}"
            )
        node = self.root
        for part in parts[1:]:
            nxt = node.children.get(part)
            if nxt is None:
                if node.addresses:
                    raise LocationError(
                        f"cannot grow tree below site {node.path!r} holding addresses"
                    )
                nxt = DomainNode(name=part, parent=node)
                node.children[part] = nxt
            node = nxt
        self._sites[node.path] = node
        return node

    def site(self, path: str) -> DomainNode:
        node = self._sites.get(path)
        if node is None:
            raise LocationError(f"unknown site {path!r}")
        return node

    @property
    def site_paths(self) -> List[str]:
        return sorted(self._sites)

    def depth_of(self, path: str) -> int:
        return len([p for p in path.split("/") if p]) - 1

    # ------------------------------------------------------------------
    # Record maintenance
    # ------------------------------------------------------------------

    def insert(self, oid_hex: str, site_path: str, address: ContactAddress) -> int:
        """Record *address* for *oid_hex* at *site_path*.

        Returns the number of tree nodes touched (the update cost).
        """
        site = self.site(site_path)
        site.addresses.setdefault(oid_hex, set()).add(address)
        touched = 1
        child, node = site, site.parent
        while node is not None:
            node.pointers.setdefault(oid_hex, set()).add(child.name)
            touched += 1
            child, node = node, node.parent
        return touched

    def delete(self, oid_hex: str, site_path: str, address: ContactAddress) -> int:
        """Remove one address; prune empty pointers up the chain."""
        site = self.site(site_path)
        addrs = site.addresses.get(oid_hex)
        if addrs is None or address not in addrs:
            raise ObjectNotFound(
                f"address {address} not recorded for {oid_hex[:12]}… at {site_path!r}"
            )
        addrs.discard(address)
        touched = 1
        if addrs:
            return touched
        del site.addresses[oid_hex]
        child, node = site, site.parent
        while node is not None:
            pointers = node.pointers.get(oid_hex)
            if pointers is None:
                break
            # Does the child still lead anywhere for this OID?
            if self._subtree_has(child, oid_hex):
                break
            pointers.discard(child.name)
            touched += 1
            if pointers:
                break
            del node.pointers[oid_hex]
            child, node = node, node.parent
        return touched

    def move(
        self,
        oid_hex: str,
        address: ContactAddress,
        from_site: str,
        to_site: str,
    ) -> int:
        """Relocate an address between sites (replica migration)."""
        touched = self.delete(oid_hex, from_site, address)
        touched += self.insert(oid_hex, to_site, address)
        return touched

    def _subtree_has(self, node: DomainNode, oid_hex: str) -> bool:
        if node.is_site:
            return bool(node.addresses.get(oid_hex))
        return bool(node.pointers.get(oid_hex))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, oid_hex: str, origin_site: str) -> Tuple[List[ContactAddress], int]:
        """Expanding-ring search from *origin_site*.

        Starts at the origin site, then its region, then each higher
        domain up to the root; at the first level holding a record,
        follows pointers down to sites and collects addresses. Returns
        ``(addresses, nodes_visited)``; addresses found in the smallest
        enclosing domain come first (they are network-closest).
        """
        origin = self.site(origin_site)
        visited = 0
        excluded: Optional[DomainNode] = None
        node: Optional[DomainNode] = origin
        while node is not None:
            visited += 1
            found, down_visits = self._collect(node, oid_hex, excluded)
            visited += down_visits
            if found:
                return found, visited
            excluded, node = node, node.parent
        raise ObjectNotFound(f"no contact address for OID {oid_hex[:12]}…")

    def _collect(
        self,
        node: DomainNode,
        oid_hex: str,
        excluded: Optional[DomainNode],
    ) -> Tuple[List[ContactAddress], int]:
        """Gather all addresses under *node*, skipping the *excluded*
        child (already searched in the previous ring)."""
        if node.is_site:
            return sorted(node.addresses.get(oid_hex, ()), key=str), 0
        result: List[ContactAddress] = []
        visits = 0
        for child_name in sorted(node.pointers.get(oid_hex, ())):
            child = node.children.get(child_name)
            if child is None or child is excluded:
                continue
            visits += 1
            found, sub_visits = self._collect(child, oid_hex, None)
            visits += sub_visits
            result.extend(found)
        return result, visits

    def addresses_at(self, oid_hex: str, site_path: str) -> List[ContactAddress]:
        """Addresses recorded for *oid_hex* directly at *site_path*."""
        return sorted(self.site(site_path).addresses.get(oid_hex, ()), key=str)

    def all_addresses(self, oid_hex: str) -> List[ContactAddress]:
        """Every address recorded anywhere for *oid_hex*."""
        out: List[ContactAddress] = []
        for site in self._sites.values():
            out.extend(site.addresses.get(oid_hex, ()))
        return sorted(set(out), key=str)

    def total_records(self) -> int:
        """Total node-records in the tree (storage-cost metric)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += node.record_count()
            stack.extend(node.children.values())
        return count
