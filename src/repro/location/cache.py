"""TTL cache for OID → contact-address mappings (client side).

Deliberately small and explicit: bounded size with oldest-put-first
eviction (refreshing an entry moves it to the back of the queue), TTL
expiry against the injected clock, and explicit invalidation for failed
binds. The location ablation bench uses hit-rate accounting to show the
cache/TTL trade-off under replica churn.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.net.address import ContactAddress
from repro.sim.clock import Clock, RealClock

__all__ = ["AddressCache"]


class AddressCache:
    """Bounded TTL cache keyed by OID hex."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        ttl: float = 60.0,
        max_entries: int = 1024,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"cache TTL must be positive, got {ttl}")
        if max_entries <= 0:
            raise ValueError(f"cache size must be positive, got {max_entries}")
        self.clock = clock if clock is not None else RealClock()
        self.ttl = ttl
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Tuple[float, List[ContactAddress]]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, oid_hex: str) -> Optional[List[ContactAddress]]:
        entry = self._entries.get(oid_hex)
        if entry is None:
            self.misses += 1
            return None
        expires, addresses = entry
        if self.clock.now() >= expires:
            del self._entries[oid_hex]
            self.misses += 1
            return None
        self.hits += 1
        return list(addresses)

    def put(self, oid_hex: str, addresses: List[ContactAddress]) -> None:
        entry = (self.clock.now() + self.ttl, list(addresses))
        if oid_hex in self._entries:
            # Refresh: overwrite in place and move to the back of the
            # eviction order — re-put entries are the freshest, and an
            # update must never evict an unrelated key.
            self._entries[oid_hex] = entry
            self._entries.move_to_end(oid_hex)
            return
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
        self._entries[oid_hex] = entry

    def invalidate(self, oid_hex: str) -> None:
        self._entries.pop(oid_hex, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
