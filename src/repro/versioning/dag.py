"""The content-addressed version DAG and its causal frontier.

Deltas hash-link their parents (UStore-style), so holding a delta id
commits to the exact bytes of its whole ancestry. A :class:`DeltaDag`
only ever admits a delta whose parents are already present — insertion
order is therefore a topological order, and *membership of a head
implies membership of its entire branch*. That closure property is what
makes branch-withholding detection a set-membership test: a replica that
serves a frontier lacking any head the client already verified is hiding
a branch (:class:`~repro.errors.BranchWithholdingError` at the check).

The :class:`Frontier` (the set of heads — deltas no other delta names as
a parent) replaces the single version counter of the one-writer design:
two frontiers are comparable by DAG containment rather than integer
order, which is exactly the partial order of causal histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import VersioningError
from repro.versioning.delta import SignedDelta

__all__ = ["DeltaDag", "Frontier"]


@dataclass(frozen=True)
class Frontier:
    """A causal frontier: the sorted tuple of head delta ids."""

    heads: Tuple[str, ...]

    @classmethod
    def of(cls, heads: Iterable[str]) -> "Frontier":
        return cls(heads=tuple(sorted(set(heads))))

    @classmethod
    def empty(cls) -> "Frontier":
        return cls(heads=())

    @property
    def is_empty(self) -> bool:
        return not self.heads

    def to_list(self) -> List[str]:
        return list(self.heads)

    @classmethod
    def from_list(cls, data: Iterable[str]) -> "Frontier":
        return cls.of(str(h) for h in data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Frontier({[h[:8] for h in self.heads]})"


class DeltaDag:
    """Hash-linked delta DAG for one object.

    Admission is parents-first (:meth:`add` refuses a dangling parent),
    so the internal insertion order doubles as a topological order for
    serving and journaling. Verification is the *caller's* job — the
    DAG stores what it is given and maintains structure only.
    """

    def __init__(self) -> None:
        self._deltas: Dict[str, SignedDelta] = {}
        self._children: Dict[str, Set[str]] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, delta: SignedDelta) -> bool:
        """Admit *delta*; False if already present (idempotent).

        Raises :class:`~repro.errors.VersioningError` when a parent is
        missing — callers with out-of-order batches use :meth:`add_all`,
        which resolves ordering and reports genuinely dangling parents.
        """
        delta_id = delta.delta_id
        if delta_id in self._deltas:
            return False
        missing = [p for p in delta.parents if p not in self._deltas]
        if missing:
            raise VersioningError(
                f"delta {delta_id[:12]}… names missing parent(s) "
                f"{[p[:12] for p in missing]} — ancestry must be admitted first"
            )
        self._deltas[delta_id] = delta
        self._order.append(delta_id)
        for parent in delta.parents:
            self._children.setdefault(parent, set()).add(delta_id)
        return True

    def add_all(self, deltas: Iterable[SignedDelta]) -> int:
        """Admit a batch in any order; returns the number newly added.

        Iterates to a fixpoint so children may precede parents in the
        input. Deltas whose ancestry never materializes raise
        :class:`~repro.errors.VersioningError` — a served batch with
        dangling parents is a withheld ancestor.
        """
        pending = list(deltas)
        added = 0
        while pending:
            progressed = False
            still: List[SignedDelta] = []
            for delta in pending:
                if delta.delta_id in self._deltas:
                    continue
                if all(p in self._deltas for p in delta.parents):
                    if self.add(delta):
                        added += 1
                    progressed = True
                else:
                    still.append(delta)
            if not still:
                return added
            if not progressed:
                missing = sorted(
                    {
                        p
                        for delta in still
                        for p in delta.parents
                        if p not in self._deltas
                    }
                )
                raise VersioningError(
                    f"{len(still)} delta(s) reference parent(s) absent from "
                    f"the batch and the DAG: {[p[:12] for p in missing]}"
                )
            pending = still
        return added

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._deltas)

    def __contains__(self, delta_id: str) -> bool:
        return delta_id in self._deltas

    def get(self, delta_id: str) -> SignedDelta:
        return self._deltas[delta_id]

    @property
    def delta_ids(self) -> List[str]:
        """All delta ids in admission (= topological) order."""
        return list(self._order)

    @property
    def deltas(self) -> List[SignedDelta]:
        """All deltas in admission (= topological) order."""
        return [self._deltas[delta_id] for delta_id in self._order]

    def heads(self) -> List[str]:
        """Delta ids no admitted delta names as a parent (sorted)."""
        return sorted(
            delta_id
            for delta_id in self._deltas
            if not self._children.get(delta_id)
        )

    def frontier(self) -> Frontier:
        return Frontier.of(self.heads())

    def lamport_max(self) -> int:
        return max((d.lamport for d in self._deltas.values()), default=0)

    def ancestors(self, delta_ids: Sequence[str]) -> Set[str]:
        """The ancestor closure of *delta_ids* (inclusive)."""
        seen: Set[str] = set()
        stack = [d for d in delta_ids if d in self._deltas]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._deltas[current].parents)
        return seen

    def missing_from(self, known_ids: Iterable[str]) -> List[SignedDelta]:
        """Deltas absent from *known_ids*, topologically ordered — the
        anti-entropy payload one replica ships another."""
        known = set(known_ids)
        return [
            self._deltas[delta_id]
            for delta_id in self._order
            if delta_id not in known
        ]

    def dominates(self, frontier: Frontier) -> bool:
        """Does this DAG contain everything below *frontier*?

        Because admission is parents-first, holding a head implies
        holding its whole branch, so containment of the heads is
        containment of the history.
        """
        return all(head in self._deltas for head in frontier.heads)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaDag({len(self._deltas)} deltas, heads={len(self.heads())})"
