"""Writer grants: owner-signed write authority over one object.

The paper's trust model has exactly one signing authority per object —
the key the OID self-certifies. Multi-writer documents keep that root of
trust: the owner signs, with the *object key*, a grant binding a writer
id to a writer public key for this OID. A delta is then trustworthy iff
its certificate verifies under a writer key that some verified grant
names — the grant chain replaces per-delta owner countersignatures.

Grants are revocable through the existing revocation feed: a
``writer``-scope :class:`~repro.revocation.statement.RevocationStatement`
names the writer id, and the frontier check then fails closed on any
served state containing that writer's deltas — past or future
(:class:`~repro.errors.RevokedWriterError`). Revocation is retroactive
by design; see
:meth:`~repro.revocation.statement.RevocationStatement.revoke_writer`.

Grants also accumulate: the owner may re-key a writer by issuing a new
grant binding the same writer id to a new key. Earlier grants stay
valid for the deltas published under them — verifiers accept a delta
covered by *any* verified grant for its writer id — so a re-key never
orphans history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import AuthenticityError, CertificateError, UnauthorizedWriterError
from repro.globedoc.oid import ObjectId

__all__ = ["WriterGrant", "WRITER_GRANT_CERT_TYPE"]

WRITER_GRANT_CERT_TYPE = "globedoc/writer-grant"


@dataclass(frozen=True)
class WriterGrant:
    """An owner-signed statement: *writer_key* may write to *oid*."""

    certificate: Certificate

    # ------------------------------------------------------------------
    # Issuing
    # ------------------------------------------------------------------

    @classmethod
    def issue(
        cls,
        owner_keys: KeyPair,
        oid: ObjectId,
        writer_id: str,
        writer_key: PublicKey,
        granted_at: float,
        not_after: Optional[float] = None,
        suite: HashSuite = SHA1,
    ) -> "WriterGrant":
        """Sign a grant with the object key (must self-certify *oid*)."""
        if not writer_id:
            raise CertificateError("writer grant needs a non-empty writer id")
        if not oid.matches_key(owner_keys.public):
            raise AuthenticityError(
                "refusing to issue a writer grant the OID cannot self-certify: "
                "signing key does not hash to the stated OID"
            )
        body = {
            "oid": oid.to_dict(),
            "writer_id": str(writer_id),
            "writer_key_der": writer_key.der,
            "granted_at": float(granted_at),
        }
        certificate = Certificate.issue(
            owner_keys,
            WRITER_GRANT_CERT_TYPE,
            body,
            not_before=granted_at,
            not_after=not_after,
            suite=suite,
        )
        return cls(certificate)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def oid(self) -> ObjectId:
        return ObjectId.from_dict(self.certificate.body["oid"])

    @property
    def oid_hex(self) -> str:
        return self.oid.hex

    @property
    def writer_id(self) -> str:
        return str(self.certificate.body["writer_id"])

    @property
    def writer_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["writer_key_der"]))

    @property
    def granted_at(self) -> float:
        return float(self.certificate.body["granted_at"])

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(
        self,
        object_key: PublicKey,
        oid: ObjectId,
        clock=None,
        cache=None,
    ) -> "WriterGrant":
        """Validate the grant for *oid* under *object_key*; returns self.

        The object key is expected to have already passed the
        self-certification check (``check_public_key``), but the grant
        re-checks it — a grant verified against an unproven key would be
        an authority bypass. Any failure is
        :class:`~repro.errors.UnauthorizedWriterError`: a grant that does
        not check out confers no authority.
        """
        if not oid.matches_key(object_key):
            raise UnauthorizedWriterError(
                "writer grant checked against a key that does not hash to "
                f"OID {oid.hex[:12]}…"
            )
        try:
            grant_oid = self.oid
        except Exception as exc:
            raise UnauthorizedWriterError(
                f"writer grant body has no parseable OID: {exc}"
            ) from exc
        if grant_oid.hex != oid.hex:
            raise UnauthorizedWriterError(
                f"writer grant for {self.writer_id!r} was issued for object "
                f"{grant_oid.hex[:12]}…, not {oid.hex[:12]}… — grant replay"
            )
        try:
            self.certificate.verify(
                object_key,
                clock=clock,
                expected_type=WRITER_GRANT_CERT_TYPE,
                cache=cache,
            )
        except Exception as exc:
            raise UnauthorizedWriterError(
                f"writer grant for {self.writer_id!r} on OID {oid.hex[:12]}… "
                f"is not signed by the object owner: {exc}"
            ) from exc
        if not self.writer_id:
            raise UnauthorizedWriterError("writer grant names an empty writer id")
        return self

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WriterGrant":
        return cls(Certificate.from_dict(data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriterGrant({self.writer_id!r} on {self.oid_hex[:12]}…)"
