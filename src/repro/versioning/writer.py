"""Authoring tooling for granted writers.

A :class:`DocumentWriter` wraps one writer's key pair and identity and
turns "change these elements" into a correctly threaded signed delta:
Lamport timestamp one past everything the writer has seen, parents =
the writer's current verified frontier. The writer extends *its own
view* — convergence with concurrent writers it has not seen is the
merge discipline's job, not the author's.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair
from repro.globedoc.oid import ObjectId
from repro.sim.clock import Clock
from repro.versioning.dag import DeltaDag
from repro.versioning.delta import OP_DELETE, OP_PUT, DeltaOp, SignedDelta
from repro.versioning.frontier import FrontierCertificate
from repro.versioning.merge import MergedDocument

__all__ = ["DocumentWriter"]


class DocumentWriter:
    """One granted writer authoring deltas against a local DAG view."""

    def __init__(
        self,
        keys: KeyPair,
        writer_id: str,
        oid: ObjectId,
        clock: Clock,
        suite: HashSuite = SHA1,
    ) -> None:
        self.keys = keys
        self.writer_id = str(writer_id)
        self.oid = oid
        self.clock = clock
        self.suite = suite

    def compose(self, dag: DeltaDag, ops: Iterable[DeltaOp]) -> SignedDelta:
        """Sign a delta extending *dag*'s current frontier."""
        delta = SignedDelta.build(
            self.keys,
            self.oid,
            self.writer_id,
            lamport=dag.lamport_max() + 1,
            parents=dag.heads(),
            ops=list(ops),
            issued_at=self.clock.now(),
            suite=self.suite,
        )
        dag.add(delta)
        return delta

    def put(
        self,
        dag: DeltaDag,
        name: str,
        content: bytes,
        content_type: str = "text/html",
    ) -> SignedDelta:
        """Author a single-element update."""
        return self.compose(
            dag, [DeltaOp(OP_PUT, name, content, content_type)]
        )

    def delete(self, dag: DeltaDag, name: str) -> SignedDelta:
        """Author a single-element removal."""
        return self.compose(dag, [DeltaOp(OP_DELETE, name)])

    def certify_frontier(
        self, merged: MergedDocument, issued_at: Optional[float] = None
    ) -> FrontierCertificate:
        """Sign a frontier certificate over a locally merged state."""
        return FrontierCertificate.build(
            self.keys,
            self.oid,
            merged.frontier.heads,
            merged.digest,
            merged.lamport,
            issued_at=issued_at if issued_at is not None else self.clock.now(),
            signer_id=self.writer_id,
            suite=self.suite,
        )
