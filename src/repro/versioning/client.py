"""The verified multi-writer reader.

:class:`VersionedReader` is the client half of the versioning
subsystem: it fetches an object's delta bundle from an (untrusted)
server, runs the full check pipeline — self-certifying key, revocation
freshness, then the eighth check
(:meth:`~repro.proxy.checks.SecurityChecker.check_frontier`) — and only
then *binds* the result: the verified DAG becomes the reader's
withholding baseline and the merged elements become servable.

Two fail-closed properties fall out of the binding discipline:

* state is updated **only after** every check passes — a rejected
  response leaves the previously verified frontier (and the cache)
  untouched, so an attacker gains nothing by serving garbage;
* when a *strictly newer* frontier is bound, every
  :class:`~repro.proxy.contentcache.ContentCache` entry for the object
  is purged before the new merge is cached — a reader can never serve a
  stale pre-merge element alongside a newer verified state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.keys import PublicKey
from repro.globedoc.oid import ObjectId
from repro.proxy.checks import SecurityChecker, VerifiedFrontier
from repro.proxy.contentcache import ContentCache
from repro.proxy.metrics import AccessTimer
from repro.versioning.dag import DeltaDag, Frontier
from repro.versioning.delta import SignedDelta
from repro.versioning.frontier import FrontierCertificate
from repro.versioning.grant import WriterGrant
from repro.versioning.merge import MergedDocument

__all__ = ["VersionedReader", "VersionedAccess"]


@dataclass
class VersionedAccess:
    """One verified read: the merged document plus access accounting."""

    merged: MergedDocument
    timer: AccessTimer
    #: Deltas fetched over the wire this access (0 on a no-news read).
    deltas_fetched: int = 0
    #: Cache entries purged because a strictly newer frontier bound.
    cache_purged: int = 0


class VersionedReader:
    """Reads multi-writer objects, trusting only what it verified."""

    def __init__(
        self,
        rpc,
        checker: SecurityChecker,
        content_cache: Optional[ContentCache] = None,
    ) -> None:
        self.rpc = rpc
        self.checker = checker
        self.content_cache = content_cache
        #: Per-OID verified baseline: the DAG and frontier this reader
        #: has proven once and will not let a server roll back.
        self._dags: Dict[str, DeltaDag] = {}
        self._frontiers: Dict[str, Frontier] = {}

    # ------------------------------------------------------------------
    # Introspection (tests, withholding baseline)
    # ------------------------------------------------------------------

    def known_frontier(self, oid_hex: str) -> Optional[Frontier]:
        return self._frontiers.get(oid_hex)

    def known_dag(self, oid_hex: str) -> Optional[DeltaDag]:
        return self._dags.get(oid_hex)

    # ------------------------------------------------------------------
    # The verified read
    # ------------------------------------------------------------------

    def read(self, endpoint, oid: ObjectId) -> VersionedAccess:
        """Fetch, verify, and bind one object's multi-writer state.

        Raises the exact :class:`~repro.errors.SecurityError` subclass
        for whatever is wrong with the response; on any raise the
        reader's verified baseline is untouched.
        """
        timer = AccessTimer(self.checker.clock)
        known_dag = self._dags.get(oid.hex)
        have_ids = known_dag.delta_ids if known_dag is not None else None

        with timer.phase("fetch_bundle"):
            bundle = self.rpc.call(
                endpoint, "versioning.fetch", oid_hex=oid.hex, have_ids=have_ids
            )
        object_key = PublicKey(der=bytes(bundle["object_key_der"]))
        grants = [WriterGrant.from_dict(g) for g in bundle.get("grants", [])]
        new_deltas = [SignedDelta.from_dict(d) for d in bundle.get("deltas", [])]
        cert_dict = bundle.get("frontier_cert")
        frontier_cert = (
            FrontierCertificate.from_dict(cert_dict)
            if cert_dict is not None
            else None
        )

        # Checks 1 and 7 first: a key that is not this object's, or an
        # OID the feed condemns (or cannot prove fresh), fails before
        # any delta verification CPU is spent.
        self.checker.check_public_key(oid, object_key, timer)
        self.checker.check_revocation(oid, timer)

        # The eighth check runs over the union of the retained verified
        # DAG and the newly fetched deltas: incremental fetches stay
        # cheap while withholding is still judged against everything
        # this reader has ever proven.
        deltas = list(known_dag.deltas) if known_dag is not None else []
        deltas.extend(new_deltas)
        # What the server claims to serve — judged as such for the
        # withholding comparison. The union with retained local state
        # must NOT be used here, or a rolled-back server hides behind
        # this reader's own copy of the branch it dropped. A bundle
        # without the claimed-id list (a bare store, not the RPC
        # surface) falls back to served_ids=None — DAG membership —
        # rather than an empty claim, which would condemn every
        # incremental no-news read as withholding.
        peer_ids = bundle.get("peer_delta_ids")
        if peer_ids is None:
            served_ids = None
        else:
            served_ids = set(peer_ids)
            served_ids.update(d.delta_id for d in new_deltas)
        verified: VerifiedFrontier = self.checker.check_frontier(
            oid,
            object_key,
            grants,
            deltas,
            timer,
            known_frontier=self._frontiers.get(oid.hex),
            frontier_cert=frontier_cert,
            served_ids=served_ids,
        )

        purged = self._bind(oid.hex, verified)
        return VersionedAccess(
            merged=verified.merged,
            timer=timer,
            deltas_fetched=len(new_deltas),
            cache_purged=purged,
        )

    def _bind(self, oid_hex: str, verified: VerifiedFrontier) -> int:
        """Adopt a verified frontier; purge the cache if strictly newer."""
        previous = self._frontiers.get(oid_hex)
        current = verified.merged.frontier
        self._dags[oid_hex] = verified.dag
        self._frontiers[oid_hex] = current
        purged = 0
        if (
            self.content_cache is not None
            and previous is not None
            and current != previous
        ):
            # check_frontier proved `current` contains every head of
            # `previous`, so a differing frontier is strictly newer —
            # everything cached under the old merge is now stale.
            purged = self.content_cache.invalidate_object(oid_hex)
        if self.content_cache is not None:
            expiry = self.checker.clock.now() + self.content_cache.ttl
            for element in verified.merged.elements.values():
                self.content_cache.put(oid_hex, element, expiry)
        return purged

    def cached_element(self, oid_hex: str, name: str):
        """A still-valid verified element from the cache, or None."""
        if self.content_cache is None:
            return None
        return self.content_cache.get(oid_hex, name)
