"""Server-side versioned-object store: accept, persist, gossip deltas.

The store is the object server's multi-writer surface. Like every other
GlobeDoc server component it is *untrusted infrastructure*: it verifies
grants and deltas on admission only to keep garbage out of its own log
(clients re-verify everything through the frontier check), and it
journals every accepted artifact through a
:class:`~repro.storage.store.DurableStore` before acknowledging it.

Recovery follows the storage contract: bytes read back from disk are as
untrusted as bytes from the network, so every recovered grant and delta
goes through the full admission discipline — owner-signature check on
grants, writer-signature + structure check on deltas, parents-first DAG
admission — and any record that no longer proves out aborts recovery
with :class:`~repro.errors.RecoveryIntegrityError` (fail closed).

Anti-entropy (:func:`gossip_once`) is pull+push over the ``versioning.*``
RPCs: each side ships the deltas the other lacks, receiving ends
re-verify on admission, and both converge to the same DAG — the server
half of the convergence story the harness gates.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.keys import PublicKey
from repro.errors import (
    RecoveryIntegrityError,
    ReplicaError,
    ReproError,
    UnauthorizedWriterError,
)
from repro.globedoc.oid import ObjectId
from repro.obs import NOOP_TRACER
from repro.versioning.dag import DeltaDag
from repro.versioning.delta import SignedDelta
from repro.versioning.frontier import FrontierCertificate
from repro.versioning.grant import WriterGrant

__all__ = ["VersionedObjectStore", "gossip_once"]


@dataclass
class _ObjectState:
    """One object's multi-writer state on this server."""

    oid: ObjectId
    object_key: PublicKey
    dag: DeltaDag = field(default_factory=DeltaDag)
    #: Every grant ever admitted, keyed by (writer_id, writer_key DER).
    #: Historical grants are retained on writer re-key so deltas signed
    #: under a writer's earlier key stay verifiable forever.
    grants: Dict[Tuple[str, bytes], WriterGrant] = field(default_factory=dict)
    frontier_cert: Optional[FrontierCertificate] = None


class VersionedObjectStore:
    """Per-OID delta DAGs with admission checks and durable journaling.

    ``tracer`` (optional) records ``versioning.put_delta`` spans around
    full delta admission (signature + grant + DAG checks — the "merge"
    cost bucket of the critical-path profiler) and ``storage.journal``
    spans around durable appends.

    ``compute_context`` (optional) follows the
    :class:`~repro.proxy.checks.SecurityChecker` idiom: admission crypto
    and journal writes run inside it so a simulated host charges their
    measured CPU to the shared clock (see :meth:`SimHost.compute`).
    Without one the operations are free, as before.
    """

    def __init__(
        self, clock=None, store=None, tracer=None, compute_context=None
    ) -> None:
        self.clock = clock
        self.store = store
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._compute = compute_context if compute_context is not None else nullcontext
        self._objects: Dict[str, _ObjectState] = {}
        #: Recovery accounting for the convergence bench gates.
        self.recovered_deltas = 0
        self.reverified_deltas = 0
        self.recovered_grants = 0
        if store is not None:
            self._recover()

    # ------------------------------------------------------------------
    # Recovery (fail closed)
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal through the full admission discipline."""
        recovered = self.store.recover()
        records: List[dict] = []
        if recovered.snapshot is not None:
            for obj in recovered.snapshot.get("objects", []):
                records.append({"op": "register", "key_der": obj["key_der"]})
                for grant in obj.get("grants", []):
                    records.append(
                        {"op": "grant", "oid": obj["oid"], "grant": grant}
                    )
                for delta in obj.get("deltas", []):
                    records.append(
                        {"op": "delta", "oid": obj["oid"], "delta": delta}
                    )
                if obj.get("frontier") is not None:
                    records.append(
                        {"op": "frontier", "oid": obj["oid"], "cert": obj["frontier"]}
                    )
        records.extend(recovered.records)
        replaying, self._replaying = getattr(self, "_replaying", False), True
        try:
            for record in records:
                try:
                    op = record.get("op")
                    if op == "register":
                        self.register_object(PublicKey(der=bytes(record["key_der"])))
                    elif op == "grant":
                        added = self.put_grant(
                            str(record["oid"]), WriterGrant.from_dict(record["grant"])
                        )
                        if added:
                            self.recovered_grants += 1
                    elif op == "delta":
                        added = self.put_delta(
                            str(record["oid"]), SignedDelta.from_dict(record["delta"])
                        )
                        if added:
                            self.recovered_deltas += 1
                            self.reverified_deltas += 1
                    elif op == "frontier":
                        self.put_frontier_cert(
                            str(record["oid"]),
                            FrontierCertificate.from_dict(record["cert"]),
                        )
                except ReproError as exc:
                    raise RecoveryIntegrityError(
                        "versioning store holds a record that no longer "
                        f"verifies — failing recovery closed: {exc}"
                    ) from exc
        finally:
            self._replaying = replaying

    def _journal(self, record: dict) -> None:
        if self.store is None or getattr(self, "_replaying", False):
            return
        with self.tracer.span("storage.journal", op=str(record.get("op", ""))):
            with self._compute():
                self.store.append(record)
                self.store.maybe_compact(self._snapshot_state)

    def _snapshot_state(self) -> dict:
        return {
            "objects": [
                {
                    "oid": oid_hex,
                    "key_der": state.object_key.der,
                    "grants": [
                        g.to_dict() for _, g in sorted(state.grants.items())
                    ],
                    "deltas": [d.to_dict() for d in state.dag.deltas],
                    "frontier": (
                        state.frontier_cert.to_dict()
                        if state.frontier_cert is not None
                        else None
                    ),
                }
                for oid_hex, state in sorted(self._objects.items())
            ]
        }

    # ------------------------------------------------------------------
    # Admission (the untrusted write surface)
    # ------------------------------------------------------------------

    def _require(self, oid_hex: str) -> _ObjectState:
        state = self._objects.get(oid_hex)
        if state is None:
            raise ReplicaError(
                f"no versioned object {oid_hex[:12]}… registered on this server"
            )
        return state

    def register_object(self, object_key: PublicKey) -> str:
        """Open a versioning namespace for the object *object_key* owns.

        Unauthenticated by design, like replica content serving: the OID
        is derived from the key (self-certifying), so registering a
        namespace grants no authority — only grants signed by this very
        key admit writers. Idempotent; returns the OID hex.
        """
        oid = ObjectId.from_public_key(object_key)
        if oid.hex not in self._objects:
            self._objects[oid.hex] = _ObjectState(oid=oid, object_key=object_key)
            self._journal({"op": "register", "key_der": object_key.der})
        return oid.hex

    def put_grant(self, oid_hex: str, grant: WriterGrant) -> bool:
        """Admit an owner-signed writer grant; False if already held.

        Grants accumulate per (writer id, writer key): a grant naming a
        new key for an existing writer id is an owner re-key and is
        *added alongside* the earlier grant, never in its place.
        Retaining the history keeps every delta the writer published
        under an earlier key verifiable — by clients reading the fetch
        bundle and by recovery replaying the journal.
        """
        state = self._require(oid_hex)
        # During journal replay, freshness is not re-judged: a genuine
        # grant whose not_after lapsed since admission must not brick
        # recovery (the signature is still proven; clients decide what
        # a lapsed grant authorizes). Live admission keeps the clock.
        grant.verify(
            state.object_key,
            state.oid,
            clock=None if getattr(self, "_replaying", False) else self.clock,
        )
        slot = (grant.writer_id, grant.writer_key.der)
        existing = state.grants.get(slot)
        if (
            existing is not None
            and existing.certificate.envelope.signature
            == grant.certificate.envelope.signature
        ):
            return False
        state.grants[slot] = grant
        self._journal({"op": "grant", "oid": oid_hex, "grant": grant.to_dict()})
        return True

    def put_delta(self, oid_hex: str, delta: SignedDelta) -> bool:
        """Admit one signed delta; False if already in the DAG.

        Full admission: structure + signature (``delta.verify``), then a
        grant must cover the writer key, then parents-first DAG
        admission (a delta with absent ancestry is refused — gossip
        ships ancestries in order).
        """
        state = self._require(oid_hex)
        if delta.delta_id in state.dag:
            return False
        with self.tracer.span(
            "versioning.put_delta", oid=oid_hex[:16], writer=delta.writer_id
        ) as span:
            with self._compute():
                delta.verify(state.oid)
                if (delta.writer_id, delta.writer_key.der) not in state.grants:
                    raise UnauthorizedWriterError(
                        f"delta {delta.delta_id[:12]}… from writer "
                        f"{delta.writer_id!r} has no covering grant on this server"
                    )
                added = state.dag.add(delta)
            span.set_attribute("added", added)
            if added:
                self._journal({"op": "delta", "oid": oid_hex, "delta": delta.to_dict()})
        return added

    def put_frontier_cert(self, oid_hex: str, cert: FrontierCertificate) -> bool:
        """Admit a frontier certificate for the object; keeps the newest.

        The signer must be the object key or a granted writer key, and
        every claimed head must be in the local DAG (a server never
        vouches for heads it does not hold). Certificates with a lower
        Lamport bound than the held one are dropped (stale), not
        errors. Equal-Lamport ties break deterministically (see
        :meth:`_cert_supersedes`), so which certificate a server holds
        never depends on arrival order.
        """
        state = self._require(oid_hex)
        cert.verify(state.oid)
        signer = cert.signer_key.der
        authorized = signer == state.object_key.der or any(
            g.writer_key.der == signer for g in state.grants.values()
        )
        if not authorized:
            raise UnauthorizedWriterError(
                f"frontier certificate for {oid_hex[:12]}… signed by a key "
                "with no grant on this server"
            )
        if not state.dag.dominates(cert.frontier):
            raise ReplicaError(
                f"frontier certificate names heads this server does not "
                f"hold for {oid_hex[:12]}… (publish the deltas first)"
            )
        held = state.frontier_cert
        if held is not None:
            if cert.lamport < held.lamport:
                return False
            if cert.lamport == held.lamport and not self._cert_supersedes(
                state.dag, cert, held
            ):
                return False
        state.frontier_cert = cert
        self._journal({"op": "frontier", "oid": oid_hex, "cert": cert.to_dict()})
        return True

    @staticmethod
    def _cert_supersedes(
        dag: DeltaDag, cert: FrontierCertificate, held: FrontierCertificate
    ) -> bool:
        """Equal-Lamport tie-break: does *cert* replace *held*?

        A certificate wins a tie only when its frontier dominates the
        held one (every held head sits in the new heads' ancestor
        closure — strictly more history); a dominated (stale, pre-
        gossip) frontier never displaces the held one; and two
        genuinely concurrent frontiers compare by their sorted head
        tuples, so every server holding the same DAG settles on the
        same certificate regardless of arrival order.
        """
        if cert.frontier == held.frontier:
            return False
        new_closure = dag.ancestors(cert.frontier.heads)
        if all(head in new_closure for head in held.frontier.heads):
            return True
        held_closure = dag.ancestors(held.frontier.heads)
        if all(head in held_closure for head in cert.frontier.heads):
            return False
        return cert.frontier.heads > held.frontier.heads

    # ------------------------------------------------------------------
    # Serving (wire bundles)
    # ------------------------------------------------------------------

    def has_object(self, oid_hex: str) -> bool:
        return oid_hex in self._objects

    def delta_ids(self, oid_hex: str) -> List[str]:
        return self._require(oid_hex).dag.delta_ids

    def delta_count(self, oid_hex: str) -> int:
        return len(self._require(oid_hex).dag)

    def heads(self, oid_hex: str) -> List[str]:
        return self._require(oid_hex).dag.heads()

    def fetch(self, oid_hex: str, have_ids: Optional[List[str]] = None) -> dict:
        """The wire bundle the reader (or a gossiping peer) verifies.

        ``have_ids`` turns the response into a delta sync: only DAG
        entries the caller lacks are shipped (topological order), while
        grants and the frontier certificate always travel whole.
        ``peer_delta_ids`` is the full id list this server claims to
        serve — always present, because readers judge branch
        withholding against the claim, never against their own retained
        copy of a branch the server may have dropped.
        """
        state = self._require(oid_hex)
        deltas = (
            state.dag.deltas
            if have_ids is None
            else state.dag.missing_from(have_ids)
        )
        return {
            "oid": oid_hex,
            "object_key_der": state.object_key.der,
            "grants": [g.to_dict() for _, g in sorted(state.grants.items())],
            "deltas": [d.to_dict() for d in deltas],
            "heads": state.dag.heads(),
            "peer_delta_ids": state.dag.delta_ids,
            "frontier_cert": (
                state.frontier_cert.to_dict()
                if state.frontier_cert is not None
                else None
            ),
        }

    def close(self) -> None:
        if self.store is not None:
            self.store.close()


def gossip_once(
    store: VersionedObjectStore, rpc, peer_endpoint, oid_hex: str, tracer=None
) -> dict:
    """One anti-entropy round against a peer server: pull, then push.

    Pulls the peer's grants and the deltas this store lacks (re-verified
    on admission — the peer is as untrusted as any replica), then pushes
    back everything the peer reported missing. After one round with a
    reachable, honest peer both DAGs are equal; the convergence bench
    asserts exactly that. Returns {pulled, pushed} counts.

    ``tracer`` (optional) wraps the round in a ``gossip.run`` span —
    the root of a gossip trace, with every peer RPC (and, through the
    propagated context, the peer's ``server.handle`` work) as its
    descendants.
    """
    tracer = tracer if tracer is not None else NOOP_TRACER
    with tracer.span("gossip.run", oid=oid_hex[:16], peer=str(peer_endpoint)) as span:
        result = _gossip_round(store, rpc, peer_endpoint, oid_hex)
        span.set_attribute("pulled", result["pulled"])
        span.set_attribute("pushed", result["pushed"])
        return result


def _gossip_round(
    store: VersionedObjectStore, rpc, peer_endpoint, oid_hex: str
) -> dict:
    answer = rpc.call(
        peer_endpoint,
        "versioning.fetch",
        oid_hex=oid_hex,
        have_ids=store.delta_ids(oid_hex),
    )
    pulled = 0
    for grant_dict in answer.get("grants", []):
        store.put_grant(oid_hex, WriterGrant.from_dict(grant_dict))
    for delta_dict in answer.get("deltas", []):
        if store.put_delta(oid_hex, SignedDelta.from_dict(delta_dict)):
            pulled += 1
    cert_dict = answer.get("frontier_cert")
    if cert_dict is not None:
        try:
            store.put_frontier_cert(
                oid_hex, FrontierCertificate.from_dict(cert_dict)
            )
        except ReproError:
            # A stale or unverifiable peer certificate never blocks the
            # delta exchange itself; readers verify certs end to end.
            pass

    their_ids = set(answer.get("peer_delta_ids", []))
    if not their_ids:
        their_ids = set(
            rpc.call(peer_endpoint, "versioning.delta_ids", oid_hex=oid_hex)
        )
    # Push grants first: a pushed delta from a writer the peer has never
    # heard of would otherwise be refused as unauthorized. The peer
    # re-verifies each grant under the object key, so this confers no
    # authority the owner did not sign.
    their_grants = set()
    for grant_dict in answer.get("grants", []):
        grant = WriterGrant.from_dict(grant_dict)
        their_grants.add((grant.writer_id, grant.writer_key.der))
    for slot, grant in sorted(store._require(oid_hex).grants.items()):
        if slot not in their_grants:
            rpc.call(
                peer_endpoint,
                "versioning.put_grant",
                oid_hex=oid_hex,
                grant=grant.to_dict(),
            )
    pushed = 0
    for delta in store._require(oid_hex).dag.missing_from(their_ids):
        result = rpc.call(
            peer_endpoint,
            "versioning.publish_delta",
            oid_hex=oid_hex,
            delta=delta.to_dict(),
        )
        if result.get("added"):
            pushed += 1
    return {"pulled": pulled, "pushed": pushed}
