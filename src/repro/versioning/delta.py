"""Signed deltas: the unit of multi-writer document change.

A delta is one writer's atomic batch of element operations (put /
delete), wrapped in a certificate signed with the *writer's* key — not
the object key. The owner never countersigns individual deltas; instead
an owner-signed :class:`~repro.versioning.grant.WriterGrant` authorizes
the writer key once, and every delta carries enough context to be
verified in isolation:

* the target OID (so a genuine delta cannot be replayed into another
  object's DAG — :class:`~repro.errors.DeltaReplayError`);
* the writer id and writer public key (checked against the grant);
* a Lamport timestamp and the set of parent delta ids (the hash links
  that form the version DAG);
* the operations plus a Merkle root over them (reusing
  :mod:`repro.crypto.merkle` for the content-addressed structure).

The **delta id** is the digest of the certificate's canonical signed
payload, which makes the DAG content-addressed: two deltas with the same
id are byte-identical statements, and a parent link commits to the exact
bytes of the ancestor, UStore-style. Deltas carry no expiry — like
revocation statements they are permanent facts; freshness in the
multi-writer world is a property of the *frontier*, not of any delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence, Tuple

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1, suite_by_name
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.merkle import MerkleTree
from repro.errors import CertificateError, DeltaForgeryError, DeltaReplayError
from repro.globedoc.element import validate_element_name
from repro.globedoc.oid import ObjectId
from repro.util.encoding import canonical_bytes

__all__ = ["DeltaOp", "SignedDelta", "DELTA_CERT_TYPE", "OP_PUT", "OP_DELETE"]

DELTA_CERT_TYPE = "globedoc/delta"

OP_PUT = "put"
OP_DELETE = "delete"


@dataclass(frozen=True)
class DeltaOp:
    """One element operation inside a delta."""

    op: str
    name: str
    content: bytes = b""
    content_type: str = ""

    def __post_init__(self) -> None:
        if self.op not in (OP_PUT, OP_DELETE):
            raise CertificateError(f"unknown delta op {self.op!r}")
        validate_element_name(self.name)
        object.__setattr__(self, "content", bytes(self.content))
        if self.op == OP_DELETE and self.content:
            raise CertificateError("delete op must not carry content")

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "name": self.name,
            "content": self.content,
            "content_type": self.content_type,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeltaOp":
        return cls(
            op=str(data["op"]),
            name=str(data["name"]),
            content=bytes(data.get("content", b"")),
            content_type=str(data.get("content_type", "")),
        )

    @property
    def leaf_bytes(self) -> bytes:
        """Canonical encoding, the Merkle leaf for the ops root."""
        return canonical_bytes(self.to_dict())


def ops_merkle_root(ops: Sequence[DeltaOp], suite: HashSuite) -> bytes:
    """Merkle root over the ops' canonical encodings (content address)."""
    return MerkleTree([op.leaf_bytes for op in ops], suite=suite).root


@dataclass(frozen=True)
class SignedDelta:
    """A writer-signed, content-addressed batch of element operations."""

    certificate: Certificate

    # ------------------------------------------------------------------
    # Issuing
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        writer_keys: KeyPair,
        oid: ObjectId,
        writer_id: str,
        lamport: int,
        parents: Iterable[str],
        ops: Sequence[DeltaOp],
        issued_at: float,
        suite: HashSuite = SHA1,
    ) -> "SignedDelta":
        """Mint and sign one delta under the writer's key."""
        if not writer_id:
            raise CertificateError("delta needs a non-empty writer id")
        if lamport < 1:
            raise CertificateError(f"lamport timestamp must be >= 1, got {lamport}")
        ops = list(ops)
        if not ops:
            raise CertificateError("a delta must carry at least one operation")
        parent_ids = sorted(set(str(p) for p in parents))
        body = {
            "oid": oid.to_dict(),
            "writer_id": str(writer_id),
            "writer_key_der": writer_keys.public.der,
            "lamport": int(lamport),
            "parents": parent_ids,
            "ops": [op.to_dict() for op in ops],
            "ops_root": ops_merkle_root(ops, suite),
            "issued_at": float(issued_at),
        }
        # No validity window: a delta is a permanent fact in the DAG.
        certificate = Certificate.issue(writer_keys, DELTA_CERT_TYPE, body, suite=suite)
        return cls(certificate)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def oid(self) -> ObjectId:
        return ObjectId.from_dict(self.certificate.body["oid"])

    @property
    def oid_hex(self) -> str:
        return self.oid.hex

    @property
    def writer_id(self) -> str:
        return str(self.certificate.body["writer_id"])

    @property
    def writer_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["writer_key_der"]))

    @property
    def lamport(self) -> int:
        return int(self.certificate.body["lamport"])

    @property
    def parents(self) -> Tuple[str, ...]:
        return tuple(str(p) for p in self.certificate.body["parents"])

    @property
    def ops(self) -> Tuple[DeltaOp, ...]:
        cached = self.__dict__.get("_ops")
        if cached is None:
            cached = tuple(
                DeltaOp.from_dict(data) for data in self.certificate.body["ops"]
            )
            self.__dict__["_ops"] = cached
        return cached

    @property
    def issued_at(self) -> float:
        return float(self.certificate.body["issued_at"])

    @property
    def suite(self) -> HashSuite:
        return suite_by_name(self.certificate.envelope.suite_name)

    @property
    def delta_id(self) -> str:
        """Digest of the canonical signed payload — the content address.

        Memoized: the certificate is frozen, and the envelope already
        memoizes its canonical encoding, so repeated DAG operations pay
        one hash at most.
        """
        cached = self.__dict__.get("_delta_id")
        if cached is None:
            cached = self.certificate.envelope.payload_digest(self.suite).hex()
            self.__dict__["_delta_id"] = cached
        return cached

    @property
    def order_key(self) -> Tuple[int, str, str]:
        """Total order for the LWW merge: (lamport, writer_id, delta_id).

        Lamport timestamps order causally-related deltas; the writer id
        and content address break concurrent ties deterministically, so
        every replica agrees on the winner without coordination.
        """
        return (self.lamport, self.writer_id, self.delta_id)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(
        self,
        oid: ObjectId,
        cache=None,
    ) -> "SignedDelta":
        """Validate the delta for *oid*'s DAG; returns self.

        Checks, in order: the signed body names *oid* (else the delta is
        a cross-object replay — :class:`~repro.errors.DeltaReplayError`),
        the certificate signature verifies under the embedded writer key,
        the structure is sound (positive lamport, well-formed parents),
        and the ops Merkle root recomputes from the ops. Everything else
        — whether the writer key is *authorized* — is the grant's job,
        not the delta's.
        """
        try:
            delta_oid = self.oid
        except Exception as exc:
            raise DeltaForgeryError(f"delta body has no parseable OID: {exc}") from exc
        if delta_oid.hex != oid.hex:
            raise DeltaReplayError(
                f"delta {self.delta_id[:12]}… was signed for object "
                f"{delta_oid.hex[:12]}…, not {oid.hex[:12]}… — cross-object replay"
            )
        try:
            writer_key = self.writer_key
            self.certificate.verify(
                writer_key, clock=None, expected_type=DELTA_CERT_TYPE, cache=cache
            )
        except Exception as exc:
            raise DeltaForgeryError(
                f"delta {self.delta_id[:12]}… does not verify under its "
                f"stated writer key: {exc}"
            ) from exc
        try:
            lamport = self.lamport
            parents = self.parents
            ops = self.ops
        except Exception as exc:
            raise DeltaForgeryError(f"delta body is malformed: {exc}") from exc
        if lamport < 1:
            raise DeltaForgeryError(f"delta lamport must be >= 1, got {lamport}")
        if list(parents) != sorted(set(parents)):
            raise DeltaForgeryError("delta parent ids must be sorted and unique")
        if not ops:
            raise DeltaForgeryError("delta carries no operations")
        if ops_merkle_root(ops, self.suite) != bytes(
            self.certificate.body["ops_root"]
        ):
            raise DeltaForgeryError(
                f"delta {self.delta_id[:12]}… ops root does not recompute "
                "from its operations"
            )
        return self

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SignedDelta":
        return cls(Certificate.from_dict(data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SignedDelta({self.delta_id[:12]}…, writer={self.writer_id}, "
            f"lamport={self.lamport}, ops={len(self.ops)})"
        )
