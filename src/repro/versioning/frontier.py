"""Frontier certificates: the DAG-aware integrity certificate.

The one-writer design's integrity certificate pins a single version
counter; with multiple writers there is no single counter — there is a
**causal frontier** (the set of verified head delta ids) and the merged
state it determines. A frontier certificate signs, under a granted
writer key (or the owner key itself):

* the sorted head ids (committing, via hash links, to the whole DAG),
* the merged state digest those heads must merge to,
* the maximum Lamport timestamp (monotonicity diagnostics).

A replica serves its current frontier certificate alongside the deltas;
the client's eighth check verifies the signature, re-merges the verified
deltas, and requires both heads and state digest to match — a replica
cannot claim a frontier its served DAG does not produce. Note what the
certificate is *not*: proof of completeness. Withholding detection comes
from the client's own known frontier (it never trusts the server's word
for what it has seen before).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import CertificateError, DeltaForgeryError
from repro.globedoc.oid import ObjectId
from repro.versioning.dag import Frontier

__all__ = ["FrontierCertificate", "FRONTIER_CERT_TYPE"]

FRONTIER_CERT_TYPE = "globedoc/frontier"


@dataclass(frozen=True)
class FrontierCertificate:
    """A signed claim: these heads merge to this state digest."""

    certificate: Certificate

    @classmethod
    def build(
        cls,
        signer_keys: KeyPair,
        oid: ObjectId,
        heads: Iterable[str],
        digest: bytes,
        lamport: int,
        issued_at: float,
        signer_id: str = "",
        suite: HashSuite = SHA1,
    ) -> "FrontierCertificate":
        """Sign a frontier claim (writer tooling / server republish)."""
        head_ids = sorted(set(str(h) for h in heads))
        if not head_ids:
            raise CertificateError("a frontier certificate needs at least one head")
        body = {
            "oid": oid.to_dict(),
            "heads": head_ids,
            "state_digest": bytes(digest),
            "lamport": int(lamport),
            "signer_id": str(signer_id),
            "signer_key_der": signer_keys.public.der,
            "issued_at": float(issued_at),
        }
        certificate = Certificate.issue(
            signer_keys, FRONTIER_CERT_TYPE, body, suite=suite
        )
        return cls(certificate)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def oid(self) -> ObjectId:
        return ObjectId.from_dict(self.certificate.body["oid"])

    @property
    def oid_hex(self) -> str:
        return self.oid.hex

    @property
    def frontier(self) -> Frontier:
        return Frontier.from_list(self.certificate.body["heads"])

    @property
    def state_digest(self) -> bytes:
        return bytes(self.certificate.body["state_digest"])

    @property
    def lamport(self) -> int:
        return int(self.certificate.body["lamport"])

    @property
    def signer_id(self) -> str:
        return str(self.certificate.body.get("signer_id", ""))

    @property
    def signer_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["signer_key_der"]))

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self, oid: ObjectId, cache=None) -> "FrontierCertificate":
        """Signature + structure + OID binding; returns self.

        Verifies under the *embedded* signer key only — whether that key
        is the object key or a granted, unrevoked writer key is the
        frontier check's decision (it holds the grants; this module does
        not). A certificate that fails here is a forgery:
        :class:`~repro.errors.DeltaForgeryError`.
        """
        try:
            cert_oid = self.oid
        except Exception as exc:
            raise DeltaForgeryError(
                f"frontier certificate has no parseable OID: {exc}"
            ) from exc
        if cert_oid.hex != oid.hex:
            raise DeltaForgeryError(
                f"frontier certificate was issued for object "
                f"{cert_oid.hex[:12]}…, not {oid.hex[:12]}…"
            )
        try:
            self.certificate.verify(
                self.signer_key,
                clock=None,
                expected_type=FRONTIER_CERT_TYPE,
                cache=cache,
            )
        except Exception as exc:
            raise DeltaForgeryError(
                f"frontier certificate does not verify under its stated "
                f"signer key: {exc}"
            ) from exc
        if not self.frontier.heads:
            raise DeltaForgeryError("frontier certificate names no heads")
        return self

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FrontierCertificate":
        return cls(Certificate.from_dict(data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrontierCertificate({self.oid_hex[:12]}…, "
            f"{len(self.frontier.heads)} heads, lamport={self.lamport})"
        )
