"""Multi-writer versioning: signed delta DAGs with verified convergence.

The one-writer GlobeDoc signs a linear version history under the object
key. This subsystem opens the concurrent-update scenario while keeping
the paper's fail-closed integrity discipline:

* :mod:`~repro.versioning.grant` — owner-signed writer grants (the
  object key stays the only root of trust);
* :mod:`~repro.versioning.delta` — writer-signed, content-addressed
  deltas with hash-linked parents;
* :mod:`~repro.versioning.dag` — the version DAG and causal frontier;
* :mod:`~repro.versioning.merge` — the deterministic LWW merge
  (commutative / associative / idempotent ⇒ strong eventual
  consistency);
* :mod:`~repro.versioning.frontier` — the DAG-aware integrity
  certificate over a causal frontier;
* :mod:`~repro.versioning.store` — the server-side delta store with
  durable journaling and fail-closed recovery re-verification;
* :mod:`~repro.versioning.writer` / :mod:`~repro.versioning.client` —
  authoring and verified-reading stacks.
"""

from repro.versioning.dag import DeltaDag, Frontier
from repro.versioning.delta import DELTA_CERT_TYPE, DeltaOp, SignedDelta
from repro.versioning.frontier import FRONTIER_CERT_TYPE, FrontierCertificate
from repro.versioning.grant import WRITER_GRANT_CERT_TYPE, WriterGrant
from repro.versioning.merge import MergedDocument, merge_deltas, state_digest
from repro.versioning.store import VersionedObjectStore, gossip_once
from repro.versioning.writer import DocumentWriter

__all__ = [
    "DeltaDag",
    "Frontier",
    "DeltaOp",
    "SignedDelta",
    "DELTA_CERT_TYPE",
    "FrontierCertificate",
    "FRONTIER_CERT_TYPE",
    "WriterGrant",
    "WRITER_GRANT_CERT_TYPE",
    "MergedDocument",
    "merge_deltas",
    "state_digest",
    "VersionedObjectStore",
    "gossip_once",
    "DocumentWriter",
    "VersionedReader",
    "VersionedAccess",
]


def __getattr__(name):
    # The reader pulls in repro.proxy.checks, which itself imports this
    # package's submodules; loading it lazily keeps either import order
    # working.
    if name in ("VersionedReader", "VersionedAccess"):
        from repro.versioning import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
