"""Deterministic CRDT-style merge of a verified delta set.

The merge discipline is a last-writer-wins register per element, with
the total order ``(lamport, writer_id, delta_id, op_index)`` — Lamport
timestamps order causally-related writes, writer id and content address
break concurrent ties, and the op index orders ops *within* one delta.
Because the winner per element is simply the **maximum over a set**, the
merge is commutative, associative, and idempotent by construction (the
SEC obligation of Gomes et al.); the property tests in
``tests/versioning/test_merge_laws.py`` check those laws over seeded
random histories rather than trusting the argument.

Two replicas holding the same verified delta set therefore compute the
same winners, the same elements, and — because :func:`state_digest`
hashes a canonical encoding of the result — byte-identical documents,
checkable by comparing one digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.crypto.hashes import HashSuite, SHA1
from repro.errors import VersioningError
from repro.globedoc.element import PageElement
from repro.util.encoding import canonical_bytes
from repro.versioning.dag import Frontier
from repro.versioning.delta import OP_PUT, DeltaOp, SignedDelta

__all__ = ["MergedDocument", "merge_deltas", "state_digest"]


@dataclass
class MergedDocument:
    """The convergent result of merging one verified delta set."""

    oid_hex: str
    elements: Dict[str, PageElement]
    frontier: Frontier
    lamport: int
    delta_count: int
    digest: bytes = b""
    #: Which delta won each element (diagnostics / tests).
    winners: Dict[str, str] = field(default_factory=dict)

    @property
    def digest_hex(self) -> str:
        return self.digest.hex()

    def element(self, name: str) -> PageElement:
        element = self.elements.get(name)
        if element is None:
            raise VersioningError(
                f"merged document {self.oid_hex[:12]}… has no element {name!r}"
            )
        return element


def state_digest(elements: Dict[str, PageElement], suite: HashSuite = SHA1) -> bytes:
    """Digest of the merged document's canonical byte representation.

    Hashes the sorted ``name -> (content, content_type)`` map through
    the canonical encoder, so two replicas agree on this digest iff
    their merged documents are byte-identical.
    """
    return suite.digest(
        canonical_bytes(
            [
                [name, element.content, element.content_type]
                for name, element in sorted(elements.items())
            ]
        )
    )


def merge_deltas(
    deltas: Iterable[SignedDelta],
    suite: HashSuite = SHA1,
    oid_hex: Optional[str] = None,
) -> MergedDocument:
    """Merge a set of (already verified) deltas into one document.

    Pure function of the delta *set*: duplicates are collapsed by
    content address and input order is irrelevant. Raises when the set
    mixes objects — merging across OIDs is always a bug upstream.
    """
    by_id: Dict[str, SignedDelta] = {}
    for delta in deltas:
        by_id[delta.delta_id] = delta
        if oid_hex is None:
            oid_hex = delta.oid_hex
        elif delta.oid_hex != oid_hex:
            raise VersioningError(
                f"merge mixes objects: {delta.oid_hex[:12]}… vs {oid_hex[:12]}…"
            )

    # Per-element LWW register: the winner is max over the total order.
    winners: Dict[str, Tuple[Tuple[int, str, str, int], DeltaOp]] = {}
    for delta in by_id.values():
        for index, op in enumerate(delta.ops):
            key = (delta.lamport, delta.writer_id, delta.delta_id, index)
            incumbent = winners.get(op.name)
            if incumbent is None or key > incumbent[0]:
                winners[op.name] = (key, op)

    elements: Dict[str, PageElement] = {}
    winner_ids: Dict[str, str] = {}
    for name, (key, op) in winners.items():
        winner_ids[name] = key[2]
        if op.op == OP_PUT:
            elements[name] = PageElement(
                name=name, content=op.content, content_type=op.content_type
            )

    # Heads of the merged set: deltas no *other member* names as parent.
    referenced = {p for delta in by_id.values() for p in delta.parents}
    heads = [delta_id for delta_id in by_id if delta_id not in referenced]

    merged = MergedDocument(
        oid_hex=oid_hex or "",
        elements=elements,
        frontier=Frontier.of(heads),
        lamport=max((d.lamport for d in by_id.values()), default=0),
        delta_count=len(by_id),
        winners=winner_ids,
    )
    merged.digest = state_digest(elements, suite)
    return merged
