"""Per-document replication (§2).

Globe lets every object carry its own distribution strategy; the paper
leans on ref [13] (Pierre et al.) showing per-document strategies beat
any one-size-fits-all choice. This package provides the strategy
catalogue, the coordinator that turns strategy decisions into replica
placements (via the object-server admin interface and the location
service), consistency maintenance for updates, and flash-crowd
detection.
"""

from repro.replication.policy import (
    PlacementAction,
    ReplicationPolicy,
    RequestObservation,
    SiteStats,
)
from repro.replication.strategies import (
    NoReplication,
    StaticReplication,
    HotspotReplication,
    TtlCacheStrategy,
    STRATEGY_CATALOGUE,
    best_strategy_for,
)
from repro.replication.coordinator import ReplicationCoordinator, ManagedDocument
from repro.replication.consistency import (
    ConsistencyModel,
    TtlConsistency,
    PushInvalidation,
    StalenessTracker,
)
from repro.replication.flashcrowd import FlashCrowdDetector
from repro.replication.audit import (
    ReplicaAuditor,
    ReplicaVerdict,
    ReplicaHealth,
    AuditSummary,
)
from repro.replication.negotiation import (
    QosRequirements,
    OfferEvaluation,
    evaluate_offer,
    choose_site,
    HostingAgreement,
)

__all__ = [
    "PlacementAction",
    "ReplicationPolicy",
    "RequestObservation",
    "SiteStats",
    "NoReplication",
    "StaticReplication",
    "HotspotReplication",
    "TtlCacheStrategy",
    "STRATEGY_CATALOGUE",
    "best_strategy_for",
    "ReplicationCoordinator",
    "ManagedDocument",
    "ConsistencyModel",
    "TtlConsistency",
    "PushInvalidation",
    "StalenessTracker",
    "FlashCrowdDetector",
    "QosRequirements",
    "OfferEvaluation",
    "evaluate_offer",
    "choose_site",
    "HostingAgreement",
    "ReplicaAuditor",
    "ReplicaVerdict",
    "ReplicaHealth",
    "AuditSummary",
]
