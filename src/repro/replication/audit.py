"""Replica auditing — the operational side of §3.3.

"If attackers are able to corrupt some of the LS's servers, this can be
easily detected, and appropriate measures (rebooting servers, restoring
the original data content from backups, etc.) can be taken."

:class:`ReplicaAuditor` is that detector, run by owners or operators:
enumerate every contact address registered for an OID, fetch key /
certificate / elements from each, and run the *same* checks a client
proxy runs. The output classifies each replica — healthy, corrupt (with
the specific violation), or unreachable — and an operator can then
evict the bad address from the location service
(:meth:`ReplicaAuditor.evict`), restoring the healthy steady state.

The auditor needs no privileged access: it uses exactly the public data
surface clients use, so it works against replicas it does not control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.errors import (
    AuthenticityError,
    ConsistencyError,
    FreshnessError,
    ReproError,
    SecurityError,
)
from repro.globedoc.oid import ObjectId
from repro.location.service import LocationClient
from repro.net.address import ContactAddress
from repro.net.health import ReplicaHealthTracker
from repro.net.rpc import RpcClient
from repro.server.localrep import ProxyLR
from repro.sim.clock import Clock

__all__ = ["ReplicaAuditor", "ReplicaVerdict", "ReplicaHealth", "AuditSummary"]


class ReplicaHealth(str, Enum):
    """Classification of one audited replica."""

    HEALTHY = "healthy"
    CORRUPT = "corrupt"
    UNREACHABLE = "unreachable"


@dataclass(frozen=True)
class ReplicaVerdict:
    """Audit outcome for one contact address."""

    address: ContactAddress
    health: ReplicaHealth
    violation: str = ""
    elements_checked: int = 0
    version: Optional[int] = None


@dataclass
class AuditSummary:
    """All verdicts for one object."""

    oid_hex: str
    verdicts: List[ReplicaVerdict] = field(default_factory=list)

    @property
    def healthy(self) -> List[ReplicaVerdict]:
        return [v for v in self.verdicts if v.health is ReplicaHealth.HEALTHY]

    @property
    def corrupt(self) -> List[ReplicaVerdict]:
        return [v for v in self.verdicts if v.health is ReplicaHealth.CORRUPT]

    @property
    def unreachable(self) -> List[ReplicaVerdict]:
        return [v for v in self.verdicts if v.health is ReplicaHealth.UNREACHABLE]

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.unreachable


class ReplicaAuditor:
    """Sweeps every registered replica of an object with client checks."""

    def __init__(
        self,
        rpc: RpcClient,
        location: LocationClient,
        clock: Clock,
        health: Optional[ReplicaHealthTracker] = None,
    ) -> None:
        self.rpc = rpc
        self.location = location
        self.clock = clock
        #: Optional tracker shared with the client-side binder: audit
        #: verdicts feed it, and the eviction sweep may act on addresses
        #: the *clients* quarantined even if this audit caught them on a
        #: good round trip.
        self.health = health

    # ------------------------------------------------------------------

    def audit(self, oid: ObjectId, sample_elements: Optional[int] = None) -> AuditSummary:
        """Audit every contact address registered for *oid*.

        *sample_elements* bounds how many elements are content-checked
        per replica (None = all — a full sweep).
        """
        summary = AuditSummary(oid_hex=oid.hex)
        try:
            lookup = self.location.lookup(oid, widen=True)
            addresses = lookup.addresses
        except ReproError:
            return summary  # nothing registered, nothing to audit
        for address in addresses:
            summary.verdicts.append(self._audit_one(oid, address, sample_elements))
        return summary

    def _audit_one(
        self,
        oid: ObjectId,
        address: ContactAddress,
        sample_elements: Optional[int],
    ) -> ReplicaVerdict:
        lr = ProxyLR(self.rpc, address)
        checked = 0
        try:
            key = oid.check_key(lr.get_public_key())
            integrity = lr.get_integrity_certificate()
            integrity.verify_signature(key)
            if integrity.oid_hex != oid.hex:
                raise AuthenticityError("certificate issued for another object")
            names = integrity.element_names
            if sample_elements is not None:
                names = names[:sample_elements]
            for name in names:
                element = lr.get_element(name)
                integrity.check_element(name, element, self.clock)
                checked += 1
            # The replica must also *claim* exactly the certified set.
            claimed = set(lr.list_elements())
            certified = set(integrity.element_names)
            if claimed != certified:
                raise ConsistencyError(
                    f"replica claims elements {sorted(claimed ^ certified)} "
                    "outside its certificate"
                )
        except SecurityError as exc:
            self._note(address, healthy=False)
            return ReplicaVerdict(
                address=address,
                health=ReplicaHealth.CORRUPT,
                violation=f"{type(exc).__name__}: {exc}",
                elements_checked=checked,
            )
        except ReproError as exc:
            self._note(address, healthy=False)
            return ReplicaVerdict(
                address=address,
                health=ReplicaHealth.UNREACHABLE,
                violation=f"{type(exc).__name__}: {exc}",
                elements_checked=checked,
            )
        self._note(address, healthy=True)
        return ReplicaVerdict(
            address=address,
            health=ReplicaHealth.HEALTHY,
            elements_checked=checked,
            version=integrity.version,
        )

    def _note(self, address: ContactAddress, healthy: bool) -> None:
        if self.health is None:
            return
        if healthy:
            # One good audit round trip must not clear a quarantine the
            # clients earned with many failures — a flapping replica
            # often answers the auditor between outages. Only client
            # (half-open probe) successes close the breaker.
            if not self.health.is_quarantined(str(address)):
                self.health.record_success(str(address))
        else:
            self.health.record_failure(str(address))

    # ------------------------------------------------------------------

    def evict(self, oid: ObjectId, verdict: ReplicaVerdict, site: str) -> None:
        """Remove a corrupt/unreachable replica's address from the
        location service — the 'appropriate measure' of §3.3."""
        if verdict.health is ReplicaHealth.HEALTHY:
            raise ReproError("refusing to evict a healthy replica")
        self.location.unregister_replica(oid, site, verdict.address)

    def audit_and_evict(
        self,
        oid: ObjectId,
        site_of: Dict[str, str],
        sample_elements: Optional[int] = None,
        evict_quarantined: bool = False,
    ) -> AuditSummary:
        """Full cycle: audit, then evict everything unhealthy.

        *site_of* maps address host → location-tree site (the operator
        knows where each server is registered). With
        ``evict_quarantined`` and a shared health tracker, the sweep
        also evicts replicas whose circuit the *clients* opened
        (flapping servers can pass a single audit round trip while still
        dropping most production traffic).
        """
        summary = self.audit(oid, sample_elements=sample_elements)
        for verdict in summary.corrupt + summary.unreachable:
            site = site_of.get(verdict.address.host)
            if site is not None:
                self.evict(oid, verdict, site)
        if evict_quarantined and self.health is not None:
            for verdict in summary.healthy:
                site = site_of.get(verdict.address.host)
                if site is not None and self.health.is_quarantined(
                    str(verdict.address)
                ):
                    # Deliberately bypasses evict()'s healthy-verdict
                    # guard: the audit saw one good round trip, but the
                    # client-side breaker says the replica is flapping.
                    self.location.unregister_replica(oid, site, verdict.address)
        return summary
