"""Flash-crowd detection (§1).

"When a Web document suddenly becomes very popular (a phenomenon known
as a flash crowd), clients experience long delays … The single hosting
server simply cannot cope." The detector watches the aggregate request
rate of a document and flags the crowd when the short-window rate
exceeds a multiple of the long-window baseline — the trigger the
hotspot replication strategy (and the flash-crowd example) reacts to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.errors import ReplicationError

__all__ = ["FlashCrowdDetector", "CrowdEvent"]


@dataclass(frozen=True)
class CrowdEvent:
    """A detected state change in a document's popularity."""

    time: float
    kind: str  # "onset" | "subsided"
    short_rate: float
    baseline_rate: float


@dataclass
class FlashCrowdDetector:
    """Two-window rate comparator.

    ``short_window`` captures the surge, ``long_window`` the baseline.
    Onset fires when ``short_rate >= surge_factor * max(baseline,
    min_baseline)``; subsidence when it drops back below half that. The
    hysteresis prevents flapping on bursty traces.
    """

    short_window: float = 10.0
    long_window: float = 300.0
    surge_factor: float = 5.0
    min_baseline: float = 0.2  # req/s assumed even for quiet documents
    _times: Deque[float] = field(default_factory=deque)
    _active: bool = False
    events: List[CrowdEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.short_window >= self.long_window:
            raise ReplicationError("short window must be shorter than long window")
        if self.surge_factor <= 1.0:
            raise ReplicationError("surge factor must exceed 1")

    @property
    def active(self) -> bool:
        """Is a flash crowd currently in progress?"""
        return self._active

    def observe(self, time: float) -> Optional[CrowdEvent]:
        """Feed one request timestamp; returns an event on state change."""
        self._times.append(time)
        cutoff = time - self.long_window
        while self._times and self._times[0] < cutoff:
            self._times.popleft()

        short_count = sum(1 for t in self._times if t >= time - self.short_window)
        short_rate = short_count / self.short_window
        baseline_rate = max(len(self._times) / self.long_window, self.min_baseline)

        threshold = self.surge_factor * baseline_rate
        event: Optional[CrowdEvent] = None
        if not self._active and short_rate >= threshold:
            self._active = True
            event = CrowdEvent(
                time=time, kind="onset", short_rate=short_rate, baseline_rate=baseline_rate
            )
        elif self._active and short_rate < threshold / 2:
            self._active = False
            event = CrowdEvent(
                time=time,
                kind="subsided",
                short_rate=short_rate,
                baseline_rate=baseline_rate,
            )
        if event is not None:
            self.events.append(event)
        return event

    def rates(self, now: float) -> Tuple[float, float]:
        """(short_rate, baseline_rate) without recording a request."""
        short_count = sum(1 for t in self._times if t >= now - self.short_window)
        baseline = max(len(self._times) / self.long_window, self.min_baseline)
        return short_count / self.short_window, baseline
