"""The replication coordinator: policies → placements.

The coordinator is the owner-side automation that makes GlobeDoc's
"replication strategy inside the object" concrete. It tracks the
request stream per managed document (fed back by object servers or the
experiment driver), asks the document's policy for placement actions,
and executes them: pushing the signed state to the target site's object
server through the *authenticated* admin interface and registering the
new contact address in the location service.

Note what is *not* here: no key material beyond the owner's admin
credentials, and no trust in the target servers — they receive exactly
the signed bytes any client can verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReplicationError
from repro.globedoc.oid import ObjectId
from repro.globedoc.owner import DocumentOwner, SignedDocument
from repro.location.service import LocationClient
from repro.net.address import ContactAddress
from repro.obs import NOOP_METRICS
from repro.replication.consistency import ConsistencyModel, PushInvalidation
from repro.replication.policy import (
    ActionKind,
    PlacementAction,
    ReplicationPolicy,
    RequestObservation,
)
from repro.server.admin import AdminClient

__all__ = ["ReplicationCoordinator", "ManagedDocument", "SitePort"]


@dataclass
class SitePort:
    """How the coordinator reaches one site: the admin client for that
    site's object server, plus the location-tree site path."""

    site: str
    admin: AdminClient

    def __post_init__(self) -> None:
        if not self.site:
            raise ReplicationError("site path must be non-empty")

    def quote(self) -> dict:
        """Fetch the server's hosting quote (public, unauthenticated)."""
        return self.admin.rpc.call(self.admin.target, "server.quote")


@dataclass
class ManagedDocument:
    """Coordinator state for one document."""

    owner: DocumentOwner
    policy: ReplicationPolicy
    home_site: str
    current: SignedDocument
    replica_ids: Dict[str, str] = field(default_factory=dict)  # site -> replica id
    placements: int = 0
    removals: int = 0

    @property
    def oid(self) -> ObjectId:
        return self.owner.oid

    @property
    def sites(self) -> List[str]:
        """Replica sites, home first (the policy contract)."""
        others = sorted(s for s in self.replica_ids if s != self.home_site)
        return [self.home_site] + others


class ReplicationCoordinator:
    """Drives replica placement for a set of managed documents."""

    def __init__(
        self,
        location: LocationClient,
        consistency: Optional[ConsistencyModel] = None,
        metrics=None,
    ) -> None:
        self.location = location
        self.consistency = consistency if consistency is not None else PushInvalidation()
        self._ports: Dict[str, SitePort] = {}
        self._documents: Dict[str, ManagedDocument] = {}
        #: Owner-side monitor instruments: placement churn and the
        #: fan-out lag of pushing one revocation/update to every site
        #: (clock-charged seconds per publish, sites reached/skipped).
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_placements = self.metrics.counter(
            "replication_placements_total", "Replicas placed by the coordinator."
        )
        self._m_removals = self.metrics.counter(
            "replication_removals_total", "Replicas destroyed by the coordinator."
        )
        self._m_fanout_sites = self.metrics.counter(
            "replication_publish_fanout_total",
            "Per-site outcomes of revocation/update fan-outs.",
            labelnames=("kind", "outcome"),
        )
        self._m_fanout_lag = self.metrics.histogram(
            "replication_publish_fanout_seconds",
            "Clock time one publish needed to reach every site.",
            labelnames=("kind",),
        )

    # ------------------------------------------------------------------
    # Topology / document registration
    # ------------------------------------------------------------------

    def add_site(self, port: SitePort) -> None:
        self._ports[port.site] = port

    @property
    def known_sites(self) -> List[str]:
        return sorted(self._ports)

    def manage(
        self,
        owner: DocumentOwner,
        document: SignedDocument,
        policy: ReplicationPolicy,
        home_site: str,
    ) -> ManagedDocument:
        """Start managing *document*: place it at its home site and at
        the policy's initial sites."""
        if home_site not in self._ports:
            raise ReplicationError(f"no object server registered at site {home_site!r}")
        managed = ManagedDocument(
            owner=owner, policy=policy, home_site=home_site, current=document
        )
        self._documents[owner.oid.hex] = managed
        self._place(managed, home_site)
        for site in policy.initial_sites(home_site, self.known_sites):
            if site in self._ports:
                self._place(managed, site)
        return managed

    def document(self, oid: ObjectId) -> ManagedDocument:
        managed = self._documents.get(oid.hex)
        if managed is None:
            raise ReplicationError(f"document {oid.hex[:12]}… is not managed")
        return managed

    # ------------------------------------------------------------------
    # Request feedback loop
    # ------------------------------------------------------------------

    def observe_request(self, oid: ObjectId, observation: RequestObservation) -> List[PlacementAction]:
        """Feed one request into the document's policy; execute actions."""
        managed = self.document(oid)
        actions = managed.policy.on_request(observation, managed.sites)
        for action in actions:
            self._execute(managed, action)
        return actions

    def _execute(self, managed: ManagedDocument, action: PlacementAction) -> None:
        if action.kind is ActionKind.CREATE:
            if action.site in managed.replica_ids:
                return  # already there; policies may race with themselves
            if action.site not in self._ports:
                return  # no server capacity at that site
            self._place(managed, action.site)
        elif action.kind is ActionKind.DESTROY:
            if action.site == managed.home_site:
                raise ReplicationError("policies must never destroy the home replica")
            self._remove(managed, action.site)

    # ------------------------------------------------------------------
    # Placement primitives
    # ------------------------------------------------------------------

    def _place(self, managed: ManagedDocument, site: str) -> None:
        port = self._ports[site]
        result = port.admin.create_replica(managed.current)
        address = ContactAddress.from_dict(result["address"])
        self.location.register_replica(managed.oid, site, address)
        managed.replica_ids[site] = str(result["replica_id"])
        managed.placements += 1
        self._m_placements.inc()

    def _remove(self, managed: ManagedDocument, site: str) -> None:
        replica_id = managed.replica_ids.get(site)
        if replica_id is None:
            return
        port = self._ports[site]
        # Unregister from location first so no new binds land on it.
        address = self._address_for(port, replica_id)
        self.location.unregister_replica(managed.oid, site, address)
        port.admin.destroy_replica(replica_id)
        del managed.replica_ids[site]
        managed.removals += 1
        self._m_removals.inc()

    @staticmethod
    def _address_for(port: SitePort, replica_id: str) -> ContactAddress:
        target = port.admin.target
        endpoint = target.endpoint if isinstance(target, ContactAddress) else target
        return ContactAddress(
            endpoint=endpoint,
            protocol="globedoc/replica",
            replica_id=replica_id,
        )

    # ------------------------------------------------------------------
    # Hosting negotiation (§6 future work)
    # ------------------------------------------------------------------

    def negotiate_placement(
        self,
        oid: ObjectId,
        requirements: "QosRequirements",
        candidate_sites: Optional[Sequence[str]] = None,
    ):
        """Negotiate and execute one placement under *requirements*.

        Collects hosting quotes from the candidate sites (default: every
        registered site without a replica), picks the best acceptable
        offer, places the replica there, and returns the concluded
        :class:`~repro.replication.negotiation.HostingAgreement`.
        Raises :class:`~repro.errors.ReplicationError` with the rejection
        reasons when no server can satisfy the requirements.
        """
        from dataclasses import replace

        from repro.replication.negotiation import (
            HostingAgreement,
            QosRequirements,
            choose_site,
        )

        managed = self.document(oid)
        if requirements.disk_bytes <= 0:
            requirements = replace(
                requirements, disk_bytes=managed.current.total_size
            )
        if candidate_sites is None:
            candidate_sites = [
                site for site in self.known_sites if site not in managed.replica_ids
            ]
        quotes = [self._ports[site].quote() for site in candidate_sites]
        chosen = choose_site(requirements, quotes)
        self._place(managed, chosen.site)
        return HostingAgreement(
            site=chosen.site,
            host=chosen.host,
            requirements=requirements,
            quote=next(q for q in quotes if q.get("site") == chosen.site),
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def publish_revocation(self, statement) -> List[str]:
        """Push a signed revocation statement to every registered site's
        feed; returns the sites reached.

        Distribution uses the same admin ports as placement, but the
        target RPC is the *unauthenticated* feed surface — the statement
        authenticates itself. Sites that cannot be reached are skipped
        (their clients hit the staleness window and fail closed, so an
        unreachable site degrades to denial of service only).
        """
        from repro.errors import NetworkError

        wire = statement.to_dict()
        reached: List[str] = []
        started = self.metrics.clock.now() if self.metrics.enabled else 0.0
        for site in sorted(self._ports):
            port = self._ports[site]
            try:
                port.admin.rpc.call(
                    port.admin.target, "revocation.publish", statement=wire
                )
            except NetworkError:
                self._m_fanout_sites.labels(
                    kind="revocation", outcome="skipped"
                ).inc()
                continue
            self._m_fanout_sites.labels(kind="revocation", outcome="reached").inc()
            reached.append(site)
        if self.metrics.enabled:
            self._m_fanout_lag.labels(kind="revocation").observe(
                self.metrics.clock.now() - started
            )
        return reached

    def publish_update(self, oid: ObjectId, document: SignedDocument) -> List[str]:
        """A new version from the owner: propagate per consistency model."""
        managed = self.document(oid)
        if document.version <= managed.current.version:
            raise ReplicationError(
                f"version {document.version} is not newer than {managed.current.version}"
            )
        managed.current = document

        def push(site: str, doc: SignedDocument) -> None:
            self._ports[site].admin.update_replica(doc)
            self._m_fanout_sites.labels(kind="update", outcome="reached").inc()

        started = self.metrics.clock.now() if self.metrics.enabled else 0.0
        pushed = self.consistency.on_publish(document, managed.sites, push)
        if self.metrics.enabled:
            self._m_fanout_lag.labels(kind="update").observe(
                self.metrics.clock.now() - started
            )
        return pushed
