"""Replication policy interface and request accounting.

A policy observes the request stream for one document and emits
placement actions (create/destroy a replica at a site). Policies are
pure decision logic — the coordinator owns all side effects — so
strategies can be unit-tested on synthetic observation streams and
compared fairly in the ablation bench.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Protocol, Sequence

__all__ = [
    "ActionKind",
    "PlacementAction",
    "RequestObservation",
    "SiteStats",
    "ReplicationPolicy",
]


class ActionKind(str, Enum):
    """What the coordinator should do at a site."""

    CREATE = "create"
    DESTROY = "destroy"


@dataclass(frozen=True)
class PlacementAction:
    """One placement decision for one site."""

    kind: ActionKind
    site: str

    @classmethod
    def create(cls, site: str) -> "PlacementAction":
        return cls(kind=ActionKind.CREATE, site=site)

    @classmethod
    def destroy(cls, site: str) -> "PlacementAction":
        return cls(kind=ActionKind.DESTROY, site=site)


@dataclass(frozen=True)
class RequestObservation:
    """One client request as seen by the policy."""

    site: str
    time: float
    bytes_served: int = 0


@dataclass
class SiteStats:
    """Sliding-window request statistics for one site.

    The window is time-based; :meth:`rate` reports requests/second over
    the window, the quantity hotspot policies threshold on.
    """

    window: float = 60.0
    _times: Deque[float] = field(default_factory=deque)

    def observe(self, time: float) -> None:
        self._times.append(time)
        self._expire(time)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        while self._times and self._times[0] < cutoff:
            self._times.popleft()

    def count(self, now: float) -> int:
        self._expire(now)
        return len(self._times)

    def rate(self, now: float) -> float:
        """Requests per second over the window ending at *now*."""
        return self.count(now) / self.window if self.window > 0 else 0.0


class ReplicationPolicy(Protocol):
    """Decision logic for one document's replica placement."""

    name: str

    def on_request(
        self,
        observation: RequestObservation,
        current_sites: Sequence[str],
    ) -> List[PlacementAction]:
        """React to one request. *current_sites* lists sites that already
        hold a replica (including the owner's home site, always first).
        Returned actions must be consistent (no CREATE at a current
        site, no DESTROY of the home site)."""
        ...

    def initial_sites(self, home_site: str, known_sites: Sequence[str]) -> List[str]:
        """Sites to populate at publication time (besides *home_site*)."""
        ...
