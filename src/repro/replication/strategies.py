"""The strategy catalogue.

Modelled on the families evaluated by Pierre et al. (ref [13], the
study the paper cites for per-document strategies beating global ones):

* ``NoReplication`` — serve everything from the owner's home site.
* ``StaticReplication`` — replicas at a fixed site list from day one
  (the classical mirror / CDN-contract setup).
* ``TtlCacheStrategy`` — no pushed replicas; client-side proxies cache
  elements with a TTL (the Squid-style baseline).
* ``HotspotReplication`` — dynamic: when a site's request rate crosses a
  threshold, push a replica there; tear it down when the site cools.
  This is the strategy that handles flash crowds.

``best_strategy_for`` picks per-document the catalogue entry with the
lowest predicted cost on a request trace — the "adaptive per-document"
configuration the ablation bench compares against one-size-fits-all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReplicationError
from repro.replication.policy import (
    PlacementAction,
    RequestObservation,
    SiteStats,
)

__all__ = [
    "NoReplication",
    "StaticReplication",
    "TtlCacheStrategy",
    "HotspotReplication",
    "STRATEGY_CATALOGUE",
    "best_strategy_for",
]


class NoReplication:
    """Single copy at the home site; never replicates."""

    name = "no-replication"

    def on_request(self, observation, current_sites) -> List[PlacementAction]:
        return []

    def initial_sites(self, home_site: str, known_sites: Sequence[str]) -> List[str]:
        return []


@dataclass
class StaticReplication:
    """Replicas at a fixed set of sites, created at publication time."""

    sites: Sequence[str]
    name: str = "static"

    def on_request(self, observation, current_sites) -> List[PlacementAction]:
        return []

    def initial_sites(self, home_site: str, known_sites: Sequence[str]) -> List[str]:
        return [s for s in self.sites if s != home_site]


@dataclass
class TtlCacheStrategy:
    """No server-side replicas; relies on client proxy TTL caching.

    The policy itself places nothing — the *coordinator* marks documents
    under this strategy as cacheable with the given TTL, which client
    sessions honour. Kept as a strategy so the per-document chooser can
    select it for rarely-updated, moderately popular documents.
    """

    ttl: float = 300.0
    name: str = "ttl-cache"

    def on_request(self, observation, current_sites) -> List[PlacementAction]:
        return []

    def initial_sites(self, home_site: str, known_sites: Sequence[str]) -> List[str]:
        return []


@dataclass
class HotspotReplication:
    """Dynamic replication toward request hotspots.

    Creates a replica at a site once its request rate exceeds
    ``create_rate`` (req/s over ``window`` s); destroys it when the rate
    falls below ``destroy_rate``. ``max_replicas`` bounds the footprint
    (home site included).
    """

    create_rate: float = 1.0
    destroy_rate: float = 0.1
    window: float = 60.0
    max_replicas: int = 8
    name: str = "hotspot"
    _stats: Dict[str, SiteStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.destroy_rate >= self.create_rate:
            raise ReplicationError(
                "destroy_rate must be below create_rate "
                f"({self.destroy_rate} >= {self.create_rate})"
            )
        if self.max_replicas < 1:
            raise ReplicationError("max_replicas must be at least 1")

    def _stats_for(self, site: str) -> SiteStats:
        stats = self._stats.get(site)
        if stats is None:
            stats = SiteStats(window=self.window)
            self._stats[site] = stats
        return stats

    def on_request(
        self, observation: RequestObservation, current_sites: Sequence[str]
    ) -> List[PlacementAction]:
        now = observation.time
        self._stats_for(observation.site).observe(now)
        actions: List[PlacementAction] = []
        current = list(current_sites)
        home = current[0] if current else None

        # Create at the requesting site if it is hot and capacity remains.
        if (
            observation.site not in current
            and len(current) < self.max_replicas
            and self._stats_for(observation.site).rate(now) >= self.create_rate
        ):
            actions.append(PlacementAction.create(observation.site))

        # Retire replicas at sites that have gone cold (never the home).
        for site in current[1:]:
            if self._stats_for(site).rate(now) <= self.destroy_rate:
                actions.append(PlacementAction.destroy(site))
        return actions

    def initial_sites(self, home_site: str, known_sites: Sequence[str]) -> List[str]:
        return []


#: The catalogue the per-document chooser selects from. Factories, so each
#: document gets independent policy state.
STRATEGY_CATALOGUE: Dict[str, Callable[[], object]] = {
    "no-replication": NoReplication,
    "ttl-cache": TtlCacheStrategy,
    "hotspot": HotspotReplication,
}


def best_strategy_for(
    trace: Sequence[RequestObservation],
    home_site: str,
    site_latency: Dict[str, float],
    update_interval: Optional[float] = None,
    replica_cost: float = 0.05,
) -> str:
    """Pick the catalogue strategy minimising predicted cost on *trace*.

    Cost model (a simplified version of [13]'s weighted sum): total
    client-perceived latency + a per-replica-second infrastructure cost
    + a staleness penalty for TTL caching when the document updates
    every *update_interval* seconds. ``site_latency`` gives each site's
    round-trip to the home site; a local replica or cache hit costs a
    tenth of that.
    """
    if not trace:
        return "no-replication"
    duration = max(o.time for o in trace) - min(o.time for o in trace) + 1.0
    by_site: Dict[str, int] = {}
    for obs in trace:
        by_site[obs.site] = by_site.get(obs.site, 0) + 1

    def latency(site: str) -> float:
        return site_latency.get(site, 0.05)

    costs: Dict[str, float] = {}
    # no-replication: every request pays the WAN trip.
    costs["no-replication"] = sum(
        count * latency(site) for site, count in by_site.items()
    )
    # ttl-cache: first request per site per TTL window pays; rest are
    # local. A small per-request cache-maintenance cost keeps the cache
    # from dominating cold documents it cannot actually help.
    ttl = 300.0
    cache_cost = 0.002 * sum(by_site.values())
    for site, count in by_site.items():
        windows = max(1, int(duration / ttl))
        misses = min(count, windows)
        cache_cost += misses * latency(site) + (count - misses) * latency(site) * 0.1
    if update_interval is not None and update_interval < ttl:
        # Stale serves: penalise heavily (integrity-fresh documents must
        # not be served stale; the chooser avoids ttl-cache for hot-update
        # documents).
        cache_cost += sum(by_site.values()) * 1.0
    costs["ttl-cache"] = cache_cost
    # hotspot: hot sites (>= 60 requests over the trace) get replicas.
    hot_cost = 0.0
    for site, count in by_site.items():
        if count >= 60 and site != home_site:
            hot_cost += latency(site) * 3  # placement push
            hot_cost += count * latency(site) * 0.1 + replica_cost * duration
        else:
            hot_cost += count * latency(site)
    costs["hotspot"] = hot_cost
    return min(costs, key=lambda k: costs[k])
