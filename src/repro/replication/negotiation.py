"""Hosting negotiation (§6 future work).

"We are working on the design of a policy language that would allow
object owners to express quality of service requirements before
instantiating new object replicas. At the same time server
administrators will be able to specify resource limitations … for the
replicas they are willing to host."

Owner side: :class:`QosRequirements` — a declarative statement of what
a replica placement needs. Server side: the hosting *quote* produced by
:meth:`ObjectServer.rpc_quote` (limits + headroom). The pure function
:func:`evaluate_offer` decides whether a quote satisfies requirements
(returning the reasons when it does not), and :func:`choose_site` ranks
acceptable quotes. The coordinator consults these before placement, so
a replica is only ever pushed to a server that agreed to carry it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReplicationError

__all__ = [
    "QosRequirements",
    "OfferEvaluation",
    "evaluate_offer",
    "choose_site",
    "HostingAgreement",
]


@dataclass(frozen=True)
class QosRequirements:
    """What the owner demands of a hosting server for one document.

    ``disk_bytes`` should be at least the document size (the coordinator
    fills it in automatically); the rest are service-quality demands.
    """

    disk_bytes: int = 0
    min_bandwidth_bytes_per_sec: float = 0.0
    required_sites: Tuple[str, ...] = ()
    forbidden_sites: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "disk_bytes": self.disk_bytes,
            "min_bandwidth_bytes_per_sec": self.min_bandwidth_bytes_per_sec,
            "required_sites": list(self.required_sites),
            "forbidden_sites": list(self.forbidden_sites),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QosRequirements":
        return cls(
            disk_bytes=int(data.get("disk_bytes", 0)),
            min_bandwidth_bytes_per_sec=float(
                data.get("min_bandwidth_bytes_per_sec", 0.0)
            ),
            required_sites=tuple(data.get("required_sites", ())),
            forbidden_sites=tuple(data.get("forbidden_sites", ())),
        )


@dataclass(frozen=True)
class OfferEvaluation:
    """Outcome of matching one quote against requirements."""

    site: str
    host: str
    acceptable: bool
    reasons: Tuple[str, ...] = ()
    #: Larger is better among acceptable offers (free disk headroom).
    score: float = 0.0


def evaluate_offer(
    requirements: QosRequirements, quote: Mapping[str, Any]
) -> OfferEvaluation:
    """Does *quote* (an ``ObjectServer.rpc_quote`` result) satisfy
    *requirements*? Never raises on a rejectable offer — rejection
    reasons are data, so the owner can report why placement failed."""
    site = str(quote.get("site", ""))
    host = str(quote.get("host", ""))
    reasons: List[str] = []

    if requirements.required_sites and site not in requirements.required_sites:
        reasons.append(f"site {site!r} not in required sites")
    if site in requirements.forbidden_sites:
        reasons.append(f"site {site!r} is forbidden")

    disk_free = quote.get("disk_free")
    if disk_free is not None and disk_free < requirements.disk_bytes:
        reasons.append(
            f"insufficient disk: need {requirements.disk_bytes}, free {disk_free:.0f}"
        )
    slots_free = quote.get("replica_slots_free")
    if slots_free is not None and slots_free < 1:
        reasons.append("no replica slots free")

    limits = quote.get("limits", {})
    bandwidth_limit = limits.get("bandwidth_bytes_per_sec")
    if (
        requirements.min_bandwidth_bytes_per_sec > 0
        and bandwidth_limit is not None
    ):
        headroom = bandwidth_limit - float(quote.get("bandwidth_in_use", 0.0))
        if headroom < requirements.min_bandwidth_bytes_per_sec:
            reasons.append(
                f"insufficient bandwidth headroom: need "
                f"{requirements.min_bandwidth_bytes_per_sec:.0f} B/s, have {headroom:.0f}"
            )

    score = 0.0
    if not reasons:
        score = disk_free if disk_free is not None else float("inf")
    return OfferEvaluation(
        site=site,
        host=host,
        acceptable=not reasons,
        reasons=tuple(reasons),
        score=score,
    )


def choose_site(
    requirements: QosRequirements, quotes: Sequence[Mapping[str, Any]]
) -> OfferEvaluation:
    """The best acceptable offer among *quotes*.

    Raises :class:`~repro.errors.ReplicationError` carrying every
    rejection reason when no offer qualifies.
    """
    evaluations = [evaluate_offer(requirements, quote) for quote in quotes]
    acceptable = [e for e in evaluations if e.acceptable]
    if not acceptable:
        detail = "; ".join(
            f"{e.site}: {', '.join(e.reasons)}" for e in evaluations
        ) or "no quotes offered"
        raise ReplicationError(f"no hosting offer satisfies the requirements ({detail})")
    return max(acceptable, key=lambda e: e.score)


@dataclass(frozen=True)
class HostingAgreement:
    """A concluded negotiation: where the replica goes and under what
    terms — recorded by the coordinator for audit."""

    site: str
    host: str
    requirements: QosRequirements
    quote: Mapping[str, Any]
