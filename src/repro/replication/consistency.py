"""Consistency maintenance across replicas.

When the owner publishes a new document version, replicas must converge.
Two models, matching the design space the paper's object model admits:

* :class:`PushInvalidation` — the coordinator pushes the new signed
  state to every replica immediately (master/slave, strong-ish);
* :class:`TtlConsistency` — replicas keep serving until their elements'
  integrity-certificate validity expires, then must refresh (weak, but
  *safe*: the security pipeline turns staleness into a detectable
  freshness failure rather than silent wrong data).

:class:`StalenessTracker` measures how stale served content was —
the metric the consistency ablation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.globedoc.owner import SignedDocument
from repro.sim.clock import Clock

__all__ = [
    "ConsistencyModel",
    "PushInvalidation",
    "TtlConsistency",
    "StalenessTracker",
]

#: Callback that pushes a signed document version to the replica at a site.
PushFn = Callable[[str, SignedDocument], None]


class ConsistencyModel(Protocol):
    """How a new version propagates to existing replicas."""

    name: str

    def on_publish(
        self,
        document: SignedDocument,
        replica_sites: Sequence[str],
        push: PushFn,
    ) -> List[str]:
        """Handle a new version; returns the sites updated eagerly."""
        ...


class PushInvalidation:
    """Eagerly push every new version to every replica."""

    name = "push-invalidation"

    def on_publish(
        self,
        document: SignedDocument,
        replica_sites: Sequence[str],
        push: PushFn,
    ) -> List[str]:
        updated = []
        for site in replica_sites:
            push(site, document)
            updated.append(site)
        return updated


@dataclass
class TtlConsistency:
    """Let replicas age out; push nothing.

    ``refresh_sites`` may name sites that still get eager pushes (e.g.
    the home site), everything else converges at certificate expiry.
    """

    refresh_sites: Sequence[str] = ()
    name: str = "ttl"

    def on_publish(
        self,
        document: SignedDocument,
        replica_sites: Sequence[str],
        push: PushFn,
    ) -> List[str]:
        updated = []
        for site in replica_sites:
            if site in self.refresh_sites:
                push(site, document)
                updated.append(site)
        return updated


@dataclass
class StalenessTracker:
    """Records, per serve, how far behind the latest version it was."""

    clock: Clock
    latest_version: int = 0
    published_at: Dict[int, float] = field(default_factory=dict)
    stale_serves: int = 0
    fresh_serves: int = 0
    total_staleness: float = 0.0

    def on_publish(self, version: int) -> None:
        self.latest_version = max(self.latest_version, version)
        self.published_at[version] = self.clock.now()

    def on_serve(self, version: int) -> None:
        if version >= self.latest_version:
            self.fresh_serves += 1
            return
        self.stale_serves += 1
        newer = min(
            (v for v in self.published_at if v > version),
            default=self.latest_version,
        )
        published = self.published_at.get(newer)
        if published is not None:
            self.total_staleness += max(0.0, self.clock.now() - published)

    @property
    def serves(self) -> int:
        return self.fresh_serves + self.stale_serves

    @property
    def stale_fraction(self) -> float:
        return self.stale_serves / self.serves if self.serves else 0.0

    @property
    def mean_staleness(self) -> float:
        """Mean seconds-behind across stale serves (0 if none)."""
        return self.total_staleness / self.stale_serves if self.stale_serves else 0.0
