"""Synthetic content generation.

Deterministic (seeded) element bytes, whole documents from
:class:`~repro.workloads.sizes.ObjectSpec` blueprints, and multi-page
linked websites for the publishing example and link-model tests.
Content is pseudorandom, not compressible zeros — hash timing must see
realistic bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.crypto.keys import KeyPair
from repro.sim.clock import Clock
from repro.sim.random import derive_seed, make_rng
from repro.workloads.sizes import ObjectSpec, validate_spec

__all__ = ["make_element", "make_document_owner", "make_website", "WebsiteSpec"]


def make_content(size: int, rng: Optional[np.random.Generator] = None) -> bytes:
    """*size* pseudorandom bytes (deterministic under a seeded rng)."""
    rng = make_rng(rng)
    if size == 0:
        return b""
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def make_element(
    name: str,
    size: int,
    rng: Optional[np.random.Generator] = None,
    content_type: str = "",
) -> PageElement:
    """A page element with *size* bytes of deterministic content."""
    return PageElement(name=name, content=make_content(size, rng), content_type=content_type)


def make_document_owner(
    spec: ObjectSpec,
    seed: int = 0,
    clock: Optional[Clock] = None,
    keys: Optional[KeyPair] = None,
) -> DocumentOwner:
    """Materialise a blueprint into an owner with elements staged.

    The content depends only on ``(seed, spec.name, element name)``, so
    two runs generate byte-identical documents — which keeps simulated
    transfer sizes and hashes reproducible across benches.
    """
    validate_spec(spec)
    owner = DocumentOwner(spec.name, keys=keys, clock=clock)
    for name, size in spec.elements:
        rng = make_rng(derive_seed(seed, spec.name, name))
        owner.put_element(make_element(name, size, rng))
    return owner


@dataclass(frozen=True)
class WebsiteSpec:
    """Blueprint for a synthetic linked website.

    ``pages`` HTML documents, each linking to ``links_per_page`` other
    pages (absolute GlobeDoc links once published) and embedding
    ``images_per_page`` images (relative links to sibling elements).
    """

    site_name: str
    pages: int = 5
    links_per_page: int = 2
    images_per_page: int = 2
    image_size: int = 2048


def make_website(
    spec: WebsiteSpec,
    seed: int = 0,
    clock: Optional[Clock] = None,
) -> List[DocumentOwner]:
    """Build one GlobeDoc per page: HTML element plus its images.

    Inter-page links are left as site-relative ``/page<N>`` hrefs; the
    publishing example rewrites them to ``globe://`` hybrid URLs after
    OIDs exist (you cannot know an OID before generating its key pair).
    """
    owners: List[DocumentOwner] = []
    rng = make_rng(derive_seed(seed, spec.site_name))
    for page_index in range(spec.pages):
        doc_name = f"{spec.site_name}/page{page_index}"
        owner = DocumentOwner(doc_name, clock=clock)
        links = []
        for _ in range(spec.links_per_page):
            target = int(rng.integers(0, spec.pages))
            links.append(f'<a href="/page{target}">page {target}</a>')
        images = []
        image_elements = []
        for img_index in range(spec.images_per_page):
            img_name = f"img/pic{img_index}.png"
            images.append(f'<img src="{img_name}">')
            image_elements.append(
                make_element(
                    img_name,
                    spec.image_size,
                    make_rng(derive_seed(seed, doc_name, img_name)),
                )
            )
        html = (
            f"<html><head><title>{doc_name}</title></head><body>"
            f"<h1>Page {page_index}</h1>"
            + "".join(links)
            + "".join(images)
            + "</body></html>"
        ).encode("utf-8")
        owner.put_element(PageElement("index.html", html))
        for element in image_elements:
            owner.put_element(element)
        owners.append(owner)
    return owners
