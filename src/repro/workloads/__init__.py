"""Workload construction: the paper's objects, synthetic sites, traces."""

from repro.workloads.sizes import (
    FIG4_ELEMENT_SIZES,
    FIG567_OBJECT_SPECS,
    ObjectSpec,
    fig4_objects,
    fig567_objects,
)
from repro.workloads.generator import (
    make_element,
    make_document_owner,
    make_website,
    WebsiteSpec,
)
from repro.workloads.trace import (
    RequestEvent,
    TraceConfig,
    generate_trace,
    inject_flash_crowd,
)

__all__ = [
    "FIG4_ELEMENT_SIZES",
    "FIG567_OBJECT_SPECS",
    "ObjectSpec",
    "fig4_objects",
    "fig567_objects",
    "make_element",
    "make_document_owner",
    "make_website",
    "WebsiteSpec",
    "RequestEvent",
    "TraceConfig",
    "generate_trace",
    "inject_flash_crowd",
]
