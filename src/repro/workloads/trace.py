"""Request traces: who asks for what, from where, when.

Poisson arrivals, Zipf document popularity, a configurable site mix —
the standard web-workload assumptions — plus flash-crowd injection (a
burst of requests for one document from one site, §1's motivating
scenario). Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.sim.random import make_rng

__all__ = ["RequestEvent", "TraceConfig", "generate_trace", "inject_flash_crowd"]


@dataclass(frozen=True)
class RequestEvent:
    """One client request in a trace."""

    time: float
    document: str
    site: str
    element: str = "index.html"


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of a synthetic request trace."""

    documents: Tuple[str, ...]
    sites: Tuple[str, ...]
    duration: float = 600.0
    rate: float = 5.0  # mean requests/second overall (Poisson)
    zipf_s: float = 1.1  # document popularity skew (s > 1)
    site_weights: Optional[Tuple[float, ...]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.documents:
            raise WorkloadError("trace needs at least one document")
        if not self.sites:
            raise WorkloadError("trace needs at least one site")
        if self.duration <= 0 or self.rate <= 0:
            raise WorkloadError("duration and rate must be positive")
        if self.zipf_s <= 1.0:
            raise WorkloadError("zipf_s must exceed 1.0")
        if self.site_weights is not None and len(self.site_weights) != len(self.sites):
            raise WorkloadError("site_weights length must match sites")


def _zipf_probabilities(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-s)
    return weights / weights.sum()


def generate_trace(config: TraceConfig) -> List[RequestEvent]:
    """A time-ordered list of requests under *config*."""
    rng = make_rng(config.seed)
    expected = config.rate * config.duration
    count = int(rng.poisson(expected))
    times = np.sort(rng.uniform(0.0, config.duration, size=count))
    doc_probs = _zipf_probabilities(len(config.documents), config.zipf_s)
    doc_choices = rng.choice(len(config.documents), size=count, p=doc_probs)
    if config.site_weights is not None:
        site_probs = np.asarray(config.site_weights, dtype=float)
        site_probs = site_probs / site_probs.sum()
    else:
        site_probs = np.full(len(config.sites), 1.0 / len(config.sites))
    site_choices = rng.choice(len(config.sites), size=count, p=site_probs)
    return [
        RequestEvent(
            time=float(times[i]),
            document=config.documents[int(doc_choices[i])],
            site=config.sites[int(site_choices[i])],
        )
        for i in range(count)
    ]


def inject_flash_crowd(
    trace: Sequence[RequestEvent],
    document: str,
    site: str,
    start: float,
    duration: float,
    rate: float,
    seed: int = 1,
) -> List[RequestEvent]:
    """Overlay a burst for *document* from *site* onto *trace*.

    Returns a new, time-sorted trace. The burst is Poisson at *rate*
    req/s over [start, start+duration) — the sudden-popularity event the
    hotspot strategy must absorb.
    """
    if duration <= 0 or rate <= 0:
        raise WorkloadError("flash crowd duration and rate must be positive")
    rng = make_rng(seed)
    count = int(rng.poisson(rate * duration))
    times = rng.uniform(start, start + duration, size=count)
    burst = [
        RequestEvent(time=float(t), document=document, site=site) for t in times
    ]
    merged = list(trace) + burst
    merged.sort(key=lambda e: e.time)
    return merged
