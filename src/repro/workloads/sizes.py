"""The exact object configurations of the paper's evaluation (§4).

Experiment 1 (Fig. 4): "four GlobeDoc objects, each consisting of one
page element (image), of sizes 1KB, 10KB, 100KB, 300KB, 600KB, and 1MB
respectively" (the text says four but lists six sizes; we reproduce all
six, matching the figure's x-axis).

Experiment 2 (Figs. 5–7): "three GlobeDoc objects, each consisting of
11 page elements. One of the page elements was always a 5KB text file.
The other 10 elements are images, of size 1KB each for the first
object, 10KB each for the second, and 100KB each for the third. Thus
the total size for the first object is 15KB, for the second 105KB, and
for the third 1005KB."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.util.sizes import KB, MB, format_size

__all__ = [
    "FIG4_ELEMENT_SIZES",
    "FIG567_OBJECT_SPECS",
    "ObjectSpec",
    "fig4_objects",
    "fig567_objects",
]

#: Fig. 4 x-axis: single-element (image) object sizes in bytes.
FIG4_ELEMENT_SIZES: Tuple[int, ...] = (
    1 * KB,
    10 * KB,
    100 * KB,
    300 * KB,
    600 * KB,
    1 * MB,
)


@dataclass(frozen=True)
class ObjectSpec:
    """A document blueprint: named elements with sizes."""

    name: str
    elements: Tuple[Tuple[str, int], ...]  # (element name, size in bytes)

    @property
    def total_size(self) -> int:
        return sum(size for _, size in self.elements)

    @property
    def element_names(self) -> List[str]:
        return [name for name, _ in self.elements]

    @property
    def label(self) -> str:
        return f"{self.name} ({format_size(self.total_size)})"


def _image_name(index: int) -> str:
    return f"img/image{index:02d}.png"


def fig4_objects() -> List[ObjectSpec]:
    """The six single-element objects of Experiment 1."""
    return [
        ObjectSpec(
            name=f"vu.nl/fig4/{format_size(size)}",
            elements=(("image.png", size),),
        )
        for size in FIG4_ELEMENT_SIZES
    ]


def fig567_objects() -> List[ObjectSpec]:
    """The three 11-element objects of Experiment 2 (15KB/105KB/1005KB)."""
    specs = []
    for image_size in (1 * KB, 10 * KB, 100 * KB):
        elements: List[Tuple[str, int]] = [("story.txt", 5 * KB)]
        elements.extend((_image_name(i), image_size) for i in range(10))
        total = 5 * KB + 10 * image_size
        specs.append(
            ObjectSpec(
                name=f"vu.nl/fig567/{format_size(total)}",
                elements=tuple(elements),
            )
        )
    return specs


#: Pre-built Fig. 5–7 specs keyed by their paper label.
FIG567_OBJECT_SPECS: Dict[str, ObjectSpec] = {
    spec.label.split(" ")[0].split("/")[1]: spec for spec in fig567_objects()
}


def validate_spec(spec: ObjectSpec) -> None:
    """Sanity-check a blueprint (used by the generator)."""
    if not spec.elements:
        raise WorkloadError(f"object spec {spec.name!r} has no elements")
    names = [n for n, _ in spec.elements]
    if len(set(names)) != len(names):
        raise WorkloadError(f"object spec {spec.name!r} has duplicate element names")
    for name, size in spec.elements:
        if size < 0:
            raise WorkloadError(f"element {name!r} has negative size {size}")
