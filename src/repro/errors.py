"""Exception hierarchy for the GlobeDoc reproduction.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing security violations (which must never be silently
swallowed) from operational failures (which a resilient client may retry
against another replica).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "EncodingError",
    "CryptoError",
    "SignatureError",
    "CertificateError",
    "SecurityError",
    "AuthenticityError",
    "FreshnessError",
    "ConsistencyError",
    "RevocationError",
    "RevokedKeyError",
    "RevokedElementError",
    "RevocationStalenessError",
    "FeedRegressionError",
    "VersioningError",
    "DeltaForgeryError",
    "UnauthorizedWriterError",
    "RevokedWriterError",
    "BranchWithholdingError",
    "DeltaReplayError",
    "StorageError",
    "RecoveryIntegrityError",
    "NamingError",
    "NameNotFound",
    "ZoneValidationError",
    "LocationError",
    "ObjectNotFound",
    "NetworkError",
    "TransportError",
    "RpcError",
    "ServerError",
    "AccessDenied",
    "ReplicaError",
    "ResourceExceeded",
    "BindingError",
    "UrlError",
    "ReplicationError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class EncodingError(ReproError):
    """A value could not be canonically encoded or decoded."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A digital signature failed to verify."""


class CertificateError(CryptoError):
    """A certificate is malformed, expired, or untrusted."""


class SecurityError(ReproError):
    """Base class for violations of the GlobeDoc security properties.

    These indicate a *hostile* condition (tampering, replay, swap) —
    never an ordinary operational failure — and correspond to the paper's
    "Security Check Failed" page.
    """


class AuthenticityError(SecurityError):
    """Retrieved data was not created by the object owner (§3.2.1)."""


class FreshnessError(SecurityError):
    """Retrieved data is genuine but outside its validity interval (§3.2.1)."""


class ConsistencyError(SecurityError):
    """Retrieved data is genuine and fresh but not what was requested (§3.2.1)."""


class RevocationError(SecurityError):
    """Base class for revocation-subsystem security violations.

    Raised by the seventh security check (``check_revocation``): the
    data may be genuine, fresh, and consistent, yet must not be served
    because the issuing key or element certificate has been revoked —
    or because the client cannot prove it has *not* been.
    """


class RevokedKeyError(RevocationError):
    """The object's key has been revoked; nothing it signed is servable."""


class RevokedElementError(RevocationError):
    """The element's integrity-certificate row has been revoked."""


class RevocationStalenessError(RevocationError):
    """The revocation feed could not be refreshed within the configured
    max-staleness window — the proxy fails closed for the affected OID
    rather than serve content it cannot prove unrevoked."""


class FeedRegressionError(RevocationError):
    """The revocation feed's head moved *backwards* relative to this
    consumer's synced cursor — a feed that restarted empty (losing
    statements) or a malicious rollback. Either way the consumer can no
    longer prove anything unrevoked and must fail closed immediately,
    not wait out the staleness window."""


class VersioningError(SecurityError):
    """Base class for multi-writer versioning security violations.

    Raised by the eighth security check (``check_frontier``): the
    delta DAG a replica served must be made of signed deltas from
    authorized, unrevoked writers, and must extend — never hide — the
    causal frontier the client already verified.
    """


class DeltaForgeryError(VersioningError):
    """A delta's certificate does not verify under its stated writer
    key, or its content-addressed structure (ops root, parent links)
    does not match the signed body — the delta was forged or tampered."""


class UnauthorizedWriterError(VersioningError):
    """A delta was signed by a key the object owner never granted write
    authority to (no owner-signed writer grant covers it)."""


class RevokedWriterError(VersioningError):
    """The delta's writer grant was revoked through the revocation feed;
    nothing that writer signed may merge into the document anymore."""


class BranchWithholdingError(VersioningError):
    """A replica served a causal frontier that hides a branch below the
    client's known frontier — the multi-writer variant of stale replay.
    Every head the client has already verified must stay reachable."""


class DeltaReplayError(VersioningError):
    """A genuine delta was replayed into a different object's DAG (the
    signed body names another OID)."""


class StorageError(ReproError):
    """A durable-storage operation failed (unwritable log, snapshot
    corruption outside the recoverable torn tail, misuse of a closed
    store)."""


class RecoveryIntegrityError(SecurityError):
    """Recovered state failed re-verification on load.

    Bytes read back from disk are as untrusted as bytes fetched from
    the network: a CRC-valid record whose *signature* no longer checks
    means the store was tampered with at rest, and recovery must fail
    closed rather than serve it."""


class NamingError(ReproError):
    """Base class for naming-service failures."""


class NameNotFound(NamingError):
    """The naming service has no record for the requested name."""


class ZoneValidationError(NamingError):
    """A DNSsec-style zone signature chain failed to validate."""


class LocationError(ReproError):
    """Base class for location-service failures."""


class ObjectNotFound(LocationError):
    """The location service has no contact address for the OID."""


class NetworkError(ReproError):
    """Base class for transport/RPC failures."""


class TransportError(NetworkError):
    """A message could not be delivered."""


class RpcError(NetworkError):
    """The remote peer returned an error response."""


class ServerError(ReproError):
    """Base class for object-server failures."""


class AccessDenied(ServerError):
    """The caller's key is not authorised for the requested admin operation."""


class ReplicaError(ServerError):
    """A replica is missing, duplicated, or in an invalid state."""


class ResourceExceeded(ServerError):
    """A replica operation would exceed the server's declared resource
    limits (§6: disk space, replica slots, bandwidth)."""


class BindingError(ReproError):
    """The client proxy failed to bind to a GlobeDoc object."""


class UrlError(ReproError):
    """A hybrid URL could not be parsed or constructed."""


class ReplicationError(ReproError):
    """A replication policy or coordinator operation failed."""


class WorkloadError(ReproError):
    """A workload description is invalid."""
