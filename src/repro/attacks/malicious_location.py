"""A lying Location Service (§3.1.2, §3.3).

"A malicious Location Service server can return false contact points to
its clients, making these clients bind to replicas which are not part
of the objects they want to contact. However … the most harm a
malicious Location Service server can do is a temporary denial of
service." This subclass redirects lookups for selected OIDs to an
attacker-chosen address; the attack test shows the proxy rejects the
impostor replica (key/OID mismatch) and fails over or reports a
*binding* failure — never serves wrong content.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.location.service import LocationService
from repro.location.tree import DomainTree
from repro.net.address import ContactAddress
from repro.net.rpc import rpc_method

__all__ = ["LyingLocationService"]


class LyingLocationService(LocationService):
    """Redirects (or prepends) false contact addresses per OID."""

    def __init__(self, tree: Optional[DomainTree] = None) -> None:
        super().__init__(tree)
        self._lies: Dict[str, List[ContactAddress]] = {}
        self._suppress_truth: Dict[str, bool] = {}
        self.lie_count = 0

    def lie_about(
        self,
        oid_hex: str,
        false_addresses: List[ContactAddress],
        suppress_truth: bool = True,
    ) -> None:
        """Answer lookups for *oid_hex* with *false_addresses*.

        With ``suppress_truth=False`` the genuine addresses are appended
        after the false ones — the case where the client can still
        recover by failover.
        """
        self._lies[oid_hex] = list(false_addresses)
        self._suppress_truth[oid_hex] = suppress_truth

    def _lying_answer(self, oid: str, origin_site: str, honest_fn) -> dict:
        self.lie_count += 1
        addresses = [a.to_dict() for a in self._lies[oid]]
        if not self._suppress_truth.get(oid, True):
            try:
                honest = honest_fn(oid, origin_site)
                addresses.extend(honest["addresses"])
            except Exception:
                pass
        return {"oid": oid, "addresses": addresses, "nodes_visited": 1}

    @rpc_method("location.lookup")
    def lookup(self, oid: str, origin_site: str) -> dict:
        if oid not in self._lies:
            return super().lookup(oid, origin_site)
        return self._lying_answer(oid, origin_site, super().lookup)

    @rpc_method("location.lookup_all")
    def lookup_all(self, oid: str, origin_site: str) -> dict:
        # A consistent adversary lies on the widened failover path too.
        if oid not in self._lies:
            return super().lookup_all(oid, origin_site)
        return self._lying_answer(oid, origin_site, super().lookup_all)
