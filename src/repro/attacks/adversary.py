"""Attack probes: drive the proxy against an adversary, classify the outcome.

``run_attack_probe`` asks a proxy for a URL and reduces the result to an
:class:`AttackOutcome`, giving the attack tests and the security-matrix
bench one vocabulary: did the attack *succeed* (wrong bytes accepted),
was it *detected* (security failure page), or did it cause *denial of
service* (binding/lookup failure)?
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.proxy.clientproxy import GlobeDocProxy, ProxyResponse

__all__ = ["AttackOutcome", "ProbeResult", "run_attack_probe"]


class AttackOutcome(str, Enum):
    """How an attacked access ended, from the attacker's perspective."""

    #: The client accepted bytes different from the owner's content.
    SUCCEEDED = "succeeded"
    #: The client got the owner's genuine, current content (attack moot).
    SERVED_GENUINE = "served-genuine"
    #: The security pipeline rejected the data ("Security Check Failed").
    DETECTED = "detected"
    #: The access failed operationally (lookup/binding error): DoS only.
    DENIAL_OF_SERVICE = "denial-of-service"


@dataclass(frozen=True)
class ProbeResult:
    """The classified outcome plus the raw response for assertions."""

    outcome: AttackOutcome
    response: ProxyResponse
    failure_type: str = ""


def run_attack_probe(
    proxy: GlobeDocProxy,
    url: str,
    genuine_content: Optional[bytes],
) -> ProbeResult:
    """Fetch *url* through *proxy* and classify against *genuine_content*.

    *genuine_content* is what the owner actually published for that
    element (None if the probe does not check bytes, e.g. pure-DoS
    scenarios).
    """
    response = proxy.handle(url)
    if response.status == 200:
        if genuine_content is None or response.content == genuine_content:
            return ProbeResult(outcome=AttackOutcome.SERVED_GENUINE, response=response)
        return ProbeResult(outcome=AttackOutcome.SUCCEEDED, response=response)
    if response.status == 403 and response.security_failure:
        return ProbeResult(
            outcome=AttackOutcome.DETECTED,
            response=response,
            failure_type=response.security_failure,
        )
    return ProbeResult(outcome=AttackOutcome.DENIAL_OF_SERVICE, response=response)
