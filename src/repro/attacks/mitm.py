"""A man-in-the-middle on the transport (§3.2.1).

"An active attacker intercepts the client's request, and answers with
his own document." :class:`MitmTransport` wraps any client transport
and rewrites response frames — corrupting element content, injecting a
payload, or replaying a canned response. The attack tests show that
against GlobeDoc the tampering is detected by the hash check, whereas
against the plain-HTTP baseline the client happily accepts the bogus
bytes (the vulnerability the paper opens with).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.address import Endpoint
from repro.net.message import Response
from repro.net.transport import TransferStats, Transport

__all__ = ["MitmTransport"]

FrameRewriter = Callable[[Endpoint, bytes], bytes]


class MitmTransport:
    """Wraps a transport; rewrites responses through an attacker hook."""

    def __init__(self, inner: Transport, rewrite: Optional[FrameRewriter] = None) -> None:
        self.inner = inner
        self.rewrite = rewrite
        self.stats = TransferStats()
        self.intercepted = 0

    def request(self, endpoint: Endpoint, frame: bytes) -> bytes:
        response = self.inner.request(endpoint, frame)
        if self.rewrite is not None:
            rewritten = self.rewrite(endpoint, response)
            if rewritten != response:
                self.intercepted += 1
            response = rewritten
        self.stats.record(sent=len(frame), received=len(response))
        return response

    # ------------------------------------------------------------------
    # Ready-made attacker hooks
    # ------------------------------------------------------------------

    @staticmethod
    def content_injector(payload: bytes) -> FrameRewriter:
        """Rewriter that appends *payload* to any element/file content in
        a successful response (works on GlobeDoc elements and plain-HTTP
        bodies alike)."""

        def rewrite(endpoint: Endpoint, frame: bytes) -> bytes:
            try:
                response = Response.from_bytes(frame)
            except Exception:
                return frame
            if not response.ok or not isinstance(response.value, dict):
                return frame
            value = dict(response.value)
            changed = False
            if isinstance(value.get("content"), bytes):  # GlobeDoc element
                value["content"] = value["content"] + payload
                changed = True
            if isinstance(value.get("body"), bytes):  # plain HTTP body
                value["body"] = value["body"] + payload
                changed = True
            if not changed:
                return frame
            return Response.success(value).to_bytes()

        return rewrite

    @staticmethod
    def response_replayer(canned: bytes) -> FrameRewriter:
        """Rewriter that replaces every response with a canned frame."""

        def rewrite(endpoint: Endpoint, frame: bytes) -> bytes:
            return canned

        return rewrite
