"""Adversaries for the GlobeDoc threat model (§3).

The security architecture's claims are only meaningful against live
attacks, so this package implements them: replicas that tamper, replay
stale versions, or swap elements; a location service that lies; and a
man-in-the-middle on the wire. The attack tests assert that every one
of them is *detected* by the proxy's checks (or, for the lying location
service, degrades to denial of service only).
"""

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_server import (
    MaliciousReplica,
    TamperBehavior,
    StaleReplayBehavior,
    ElementSwapBehavior,
    ElementSwapRenamedBehavior,
    ImpostorBehavior,
    HonestBehavior,
)
from repro.attacks.malicious_location import LyingLocationService
from repro.attacks.mitm import MitmTransport
from repro.attacks.scenarios import (
    SCENARIOS,
    Scenario,
    World,
    build_world,
    run_matrix,
    run_scenario,
)

__all__ = [
    "AttackOutcome",
    "run_attack_probe",
    "SCENARIOS",
    "Scenario",
    "World",
    "build_world",
    "run_matrix",
    "run_scenario",
    "MaliciousReplica",
    "TamperBehavior",
    "StaleReplayBehavior",
    "ElementSwapBehavior",
    "ElementSwapRenamedBehavior",
    "ImpostorBehavior",
    "HonestBehavior",
    "LyingLocationService",
    "MitmTransport",
]
