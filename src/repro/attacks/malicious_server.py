"""Malicious replicas.

A :class:`MaliciousReplica` serves a GlobeDoc object like an honest
replica but applies a *behaviour* to its responses. Behaviours map to
the three properties of §3.2.1:

* :class:`TamperBehavior` — violates **authenticity**: modified bytes.
* :class:`StaleReplayBehavior` — violates **freshness**: a genuine but
  superseded version, complete with its (genuinely signed!) old
  certificate.
* :class:`ElementSwapBehavior` — violates **consistency**: a genuine,
  fresh element of the *same* object, different from the one requested.
* :class:`ImpostorBehavior` — not part of the object at all: serves a
  different object's key/state (what a lying location service or
  content-masquerading host would deliver).

None of these can forge the owner's signature — that is the point: the
only attack surface is serving the wrong (bytes, version, element,
object), and each is caught by a specific check.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from repro.crypto.identity import IdentityCertificate
from repro.crypto.keys import PublicKey
from repro.errors import ConsistencyError
from repro.globedoc.document import DocumentState
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.net.address import Endpoint
from repro.net.rpc import RpcServer, rpc_method
from repro.globedoc.owner import SignedDocument

__all__ = [
    "ReplicaBehavior",
    "HonestBehavior",
    "TamperBehavior",
    "StaleReplayBehavior",
    "ElementSwapBehavior",
    "ImpostorBehavior",
    "MaliciousReplica",
]


class ReplicaBehavior(Protocol):
    """Hooks a malicious replica applies to each response."""

    def public_key(self, state: DocumentState) -> PublicKey: ...

    def integrity(self, state: DocumentState) -> IntegrityCertificate: ...

    def element(self, state: DocumentState, name: str) -> PageElement: ...


class HonestBehavior:
    """The identity behaviour — useful as a control in tests."""

    def public_key(self, state: DocumentState) -> PublicKey:
        return state.public_key

    def integrity(self, state: DocumentState) -> IntegrityCertificate:
        assert state.integrity is not None
        return state.integrity

    def element(self, state: DocumentState, name: str) -> PageElement:
        return state.element(name)


class TamperBehavior(HonestBehavior):
    """Serve modified content for selected elements (content masquerade).

    The classic CDN attack: the host injects its own payload (ads,
    malware, defacement) into the documents it replicates.
    """

    def __init__(self, target: str, payload: bytes = b"<!-- pwned -->") -> None:
        self.target = target
        self.payload = payload

    def element(self, state: DocumentState, name: str) -> PageElement:
        element = state.element(name)
        if name == self.target:
            return element.with_content(element.content + self.payload)
        return element


class StaleReplayBehavior(HonestBehavior):
    """Serve an old, genuinely signed version of the whole object.

    Both the old elements *and* the old integrity certificate are
    served, so every signature verifies — only the validity interval
    betrays the replay.
    """

    def __init__(self, stale: SignedDocument) -> None:
        self._stale_state = stale.state()

    def integrity(self, state: DocumentState) -> IntegrityCertificate:
        assert self._stale_state.integrity is not None
        return self._stale_state.integrity

    def element(self, state: DocumentState, name: str) -> PageElement:
        return self._stale_state.element(name)


class ElementSwapBehavior(HonestBehavior):
    """Answer a request for one element with another genuine element.

    E.g. swap a news story for a retraction page — both authentic, both
    fresh, but not what the client asked for (§3.2.1 "Consistency").
    """

    def __init__(self, when_asked_for: str, serve_instead: str) -> None:
        self.when_asked_for = when_asked_for
        self.serve_instead = serve_instead

    def element(self, state: DocumentState, name: str) -> PageElement:
        if name == self.when_asked_for:
            return state.element(self.serve_instead)
        return state.element(name)


class ElementSwapRenamedBehavior(ElementSwapBehavior):
    """A smarter swap: relabel the substituted element with the
    requested name, defeating the *name* check so only the hash check
    can catch it. Used to prove the checks are independently load-
    bearing."""

    def element(self, state: DocumentState, name: str) -> PageElement:
        if name == self.when_asked_for:
            substitute = state.element(self.serve_instead)
            return PageElement(
                name=name,
                content=substitute.content,
                content_type=substitute.content_type,
            )
        return state.element(name)


class ImpostorBehavior:
    """Serve an entirely different object (content masquerading via a
    lying directory): different key, different state."""

    def __init__(self, impostor: SignedDocument) -> None:
        self._state = impostor.state()

    def public_key(self, state: DocumentState) -> PublicKey:
        return self._state.public_key

    def integrity(self, state: DocumentState) -> IntegrityCertificate:
        assert self._state.integrity is not None
        return self._state.integrity

    def element(self, state: DocumentState, name: str) -> PageElement:
        try:
            return self._state.element(name)
        except ConsistencyError:
            # Serve *something* plausible for unknown names.
            first = self._state.element_names[0]
            return self._state.element(first)


class MaliciousReplica:
    """An object-server-shaped host applying a behaviour to one object.

    Speaks the same ``globedoc.*`` RPC surface as a real
    :class:`~repro.server.objectserver.ObjectServer`, so proxies cannot
    tell it apart by protocol — only by the security checks.
    """

    def __init__(
        self,
        host: str,
        document: SignedDocument,
        behavior: ReplicaBehavior,
        service: str = "objectserver",
        replica_id: str = "evil",
    ) -> None:
        self.host = host
        self.service = service
        self.replica_id = replica_id
        self.state = document.state()
        self.behavior = behavior
        self.requests_served = 0

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(host=self.host, service=self.service)

    def contact_address(self):
        from repro.net.address import ContactAddress

        return ContactAddress(
            endpoint=self.endpoint,
            protocol="globedoc/replica",
            replica_id=self.replica_id,
        )

    @rpc_method("globedoc.get_public_key")
    def rpc_get_public_key(self, replica_id: str) -> bytes:
        self.requests_served += 1
        return self.behavior.public_key(self.state).der

    @rpc_method("globedoc.get_identity_certificates")
    def rpc_get_identity_certificates(self, replica_id: str) -> list:
        return [c.to_dict() for c in self.state.identity_certs]

    @rpc_method("globedoc.get_integrity_certificate")
    def rpc_get_integrity_certificate(self, replica_id: str) -> dict:
        self.requests_served += 1
        return self.behavior.integrity(self.state).to_dict()

    @rpc_method("globedoc.get_element")
    def rpc_get_element(self, replica_id: str, name: str) -> dict:
        self.requests_served += 1
        return self.behavior.element(self.state, name).to_dict()

    @rpc_method("globedoc.list_elements")
    def rpc_list_elements(self, replica_id: str) -> list:
        return self.state.element_names

    def rpc_server(self) -> RpcServer:
        server = RpcServer(name=f"malicious@{self.host}")
        server.register_object(self)
        return server
