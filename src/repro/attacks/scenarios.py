"""The adversarial conformance matrix, as a reusable library.

Every tamper mode of the §3.2.1 taxonomy — wire injection, content
tampering, element swapping, stale replay, impostor keys, a lying
location service, and a compromised-then-revoked key — paired with the
exact :class:`~repro.errors.SecurityError` subclass and ``check.*`` span
that must reject it. The integration tests parametrize over this list;
the security benchmark replays the same matrix cold *and* warm, with the
concurrent pipeline disabled *and* enabled, to prove the fast paths
never convert a cached or prefetched artifact into a bypass.

:func:`build_world` assembles one scenario universe (testbed, victim
document, client stack); :func:`run_matrix` sweeps the whole matrix and
returns machine-checkable verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_location import LyingLocationService
from repro.attacks.malicious_server import (
    ElementSwapBehavior,
    ElementSwapRenamedBehavior,
    HonestBehavior,
    ImpostorBehavior,
    MaliciousReplica,
    StaleReplayBehavior,
    TamperBehavior,
)
from repro.attacks.mitm import MitmTransport
from repro.crypto.keys import KeyPair
from repro.crypto.verifycache import VerificationCache
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.net.address import Endpoint
from repro.obs import RingBufferSink, Tracer
from repro.proxy.pipeline import PipelineConfig
from repro.revocation.statement import RevocationStatement

__all__ = [
    "ELEMENTS",
    "EVIL_MARKER",
    "CLIENT_HOST",
    "ATTACK_SITE",
    "REVOCATION_STALENESS",
    "Scenario",
    "SCENARIOS",
    "World",
    "build_world",
    "run_scenario",
    "run_matrix",
    "VERSIONING_ELEMENTS",
    "VersioningScenario",
    "VERSIONING_SCENARIOS",
    "VersioningWorld",
    "build_versioning_world",
    "run_versioning_scenario",
    "run_versioning_matrix",
]

ELEMENTS = {
    "index.html": b"<html>genuine matrix page</html>",
    "retraction.html": b"<html>genuine retraction</html>",
}

#: Bytes every attacker injects/serves; must never reach the caller.
EVIL_MARKER = b"EVIL-PAYLOAD"

CLIENT_HOST = "canardo.inria.fr"
ATTACK_SITE = "root/europe/inria"

#: Staleness window for the revocation scenario's stack (poll at half).
REVOCATION_STALENESS = 30.0


def _default_keys() -> KeyPair:
    # RSA-1024 keeps matrix sweeps fast; the tests inject their own
    # pre-generated key pool instead.
    return KeyPair.generate(1024)


class FlippedBytesBehavior(HonestBehavior):
    """Flip one content byte — the minimal authenticity violation."""

    def element(self, state, name):
        element = state.element(name)
        content = bytearray(element.content)
        content[0] ^= 0xFF
        return element.with_content(bytes(content) + EVIL_MARKER)


@dataclass
class World:
    """One scenario's universe: testbed, victim document, client stack."""

    testbed: Testbed
    published: object
    stack: object
    ring: RingBufferSink
    keys: Callable[[], KeyPair]
    pipelined: bool = False

    def deploy_replica(self, behavior) -> MaliciousReplica:
        replica = MaliciousReplica(
            host=CLIENT_HOST, document=self.published.document, behavior=behavior
        )
        self.testbed.network.register(
            Endpoint(CLIENT_HOST, "objectserver"), replica.rpc_server().handle_frame
        )
        self.testbed.location_service.tree.insert(
            self.published.owner.oid.hex, ATTACK_SITE, replica.contact_address()
        )
        return replica

    def handle(self, url: str):
        """Serve *url* through the mode under test: the pipelined batch
        path when enabled, the plain sequential proxy otherwise."""
        if self.pipelined:
            return self.stack.proxy.handle_many([url])[0]
        return self.stack.proxy.handle(url)


@dataclass(frozen=True)
class Scenario:
    """One tamper mode and the check that must reject it."""

    id: str
    expected_error: str
    expected_span: str
    deploy: Callable[[World], None]
    #: Scenarios that need the seventh check build their stack with a
    #: revocation checker attached (the rest keep the six-check pipeline).
    revocation: bool = False


def deploy_mitm(world: World) -> None:
    # The stack's transport is a MitmTransport built with the rewriter
    # disarmed (so the warm-up access is clean); arm it now.
    world.stack.transport.rewrite = MitmTransport.content_injector(EVIL_MARKER)


def deploy_tamper(world: World) -> None:
    world.deploy_replica(TamperBehavior(target="index.html", payload=EVIL_MARKER))


def deploy_flipped_bytes(world: World) -> None:
    world.deploy_replica(FlippedBytesBehavior())


def deploy_element_swap(world: World) -> None:
    world.deploy_replica(
        ElementSwapBehavior(
            when_asked_for="index.html", serve_instead="retraction.html"
        )
    )


def deploy_element_swap_renamed(world: World) -> None:
    world.deploy_replica(
        ElementSwapRenamedBehavior(
            when_asked_for="index.html", serve_instead="retraction.html"
        )
    )


def deploy_stale_replay(world: World) -> None:
    # Re-sign the *current* elements with a certificate that expires in
    # 60 s, replay it, and let the interval lapse: every signature still
    # verifies, only the freshness check can object.
    stale = world.published.owner.publish(validity=60.0)
    world.deploy_replica(StaleReplayBehavior(stale))
    world.testbed.clock.advance(61.0)


def deploy_impostor(world: World) -> None:
    impostor_owner = DocumentOwner(
        "evil.example/fake", keys=world.keys(), clock=world.testbed.clock
    )
    impostor_owner.put_element(PageElement("index.html", EVIL_MARKER))
    world.deploy_replica(ImpostorBehavior(impostor_owner.publish(validity=3600.0)))


def deploy_lying_location(world: World) -> None:
    impostor_owner = DocumentOwner(
        "evil.example/fake", keys=world.keys(), clock=world.testbed.clock
    )
    impostor_owner.put_element(PageElement("index.html", EVIL_MARKER))
    impostor = MaliciousReplica(
        host=CLIENT_HOST,
        document=world.published.document,
        behavior=ImpostorBehavior(impostor_owner.publish(validity=3600.0)),
        replica_id="impostor",
    )
    world.testbed.network.register(
        Endpoint(CLIENT_HOST, "objectserver"), impostor.rpc_server().handle_frame
    )
    liar = LyingLocationService(world.testbed.location_service.tree)
    liar.lie_about(
        world.published.owner.oid.hex,
        [impostor.contact_address()],
        suppress_truth=True,
    )
    world.testbed.network.register(  # replaces the honest handler
        world.testbed.location_endpoint, liar.rpc_server().handle_frame
    )


def deploy_compromised_key(world: World) -> None:
    # The ultimate replay: an attacker who stole the object key serves
    # the *genuine* document, bit-perfect, from a replica the six checks
    # fully trust — only the revocation check can reject it. The owner
    # publishes a key-scope statement to the feed; the serving replica
    # never hears of it.
    world.deploy_replica(HonestBehavior())
    owner = world.published.owner
    statement = RevocationStatement.revoke_key(
        owner.keys,
        owner.oid,
        serial=1,
        issued_at=world.testbed.clock.now(),
        reason="object key compromised",
    )
    world.testbed.object_server.revocation_feed.publish(statement)
    # Past the poll interval: the next check must refresh and see it.
    world.testbed.clock.advance(REVOCATION_STALENESS / 2.0 + 1.0)


SCENARIOS = [
    Scenario("mitm_inject", "AuthenticityError", "check.element_hash", deploy_mitm),
    Scenario("tamper", "AuthenticityError", "check.element_hash", deploy_tamper),
    Scenario(
        "flipped_bytes", "AuthenticityError", "check.element_hash",
        deploy_flipped_bytes,
    ),
    Scenario(
        "element_swap", "ConsistencyError", "check.consistency",
        deploy_element_swap,
    ),
    Scenario(
        "element_swap_renamed", "AuthenticityError", "check.element_hash",
        deploy_element_swap_renamed,
    ),
    Scenario(
        "stale_replay", "FreshnessError", "check.freshness", deploy_stale_replay
    ),
    Scenario(
        "impostor_key", "AuthenticityError", "check.public_key", deploy_impostor
    ),
    Scenario(
        "lying_location", "AuthenticityError", "check.public_key",
        deploy_lying_location,
    ),
    Scenario(
        "compromised_key_replay", "RevokedKeyError", "check.revocation",
        deploy_compromised_key, revocation=True,
    ),
]


def build_world(
    revocation: bool = False,
    key_factory: Optional[Callable[[], KeyPair]] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> World:
    keys = key_factory if key_factory is not None else _default_keys
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/matrix", keys=keys(), clock=testbed.clock)
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    published = testbed.publish(owner, validity=3600.0)

    ring = RingBufferSink()
    tracer = Tracer(clock=testbed.clock, sinks=(ring,))
    # A disarmed MITM wrapper on every stack: scenarios that need it arm
    # the rewriter, the rest pass traffic through untouched.
    transport = MitmTransport(testbed.network.transport_for(CLIENT_HOST))
    stack = testbed.client_stack(
        CLIENT_HOST,
        transport=transport,
        verification_cache=VerificationCache(),
        max_rebinds=0,  # fail closed: no silent failover to ginger
        tracer=tracer,
        revocation_max_staleness=REVOCATION_STALENESS if revocation else None,
        pipeline=pipeline,
    )
    return World(
        testbed=testbed,
        published=published,
        stack=stack,
        ring=ring,
        keys=keys,
        pipelined=pipeline is not None,
    )


def run_scenario(
    scenario: Scenario,
    warm: bool,
    key_factory: Optional[Callable[[], KeyPair]] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> dict:
    """One matrix cell; returns a machine-checkable verdict dict.

    ``ok`` requires: the probe was *detected*, by the *exact* expected
    error class, with zero attacker bytes in the response, and the
    expected ``check.*`` span closed with that same error type.
    """
    world = build_world(
        revocation=scenario.revocation, key_factory=key_factory, pipeline=pipeline
    )
    url = world.published.url("index.html")
    warmup_ok = True
    if warm:
        # One honest access first: the VerificationCache now holds the
        # genuine certificate's verdict. Then force a cold bind so the
        # attacker (deployed at the client's own site) is found first.
        warmup = world.handle(url)
        warmup_ok = bool(warmup.ok) and warmup.content == ELEMENTS["index.html"]
        world.stack.proxy.drop_all_sessions()
        world.stack.location.invalidate(world.published.owner.oid)
    scenario.deploy(world)
    world.ring.clear()

    probe = run_attack_probe(world, url, ELEMENTS["index.html"])

    detected = probe.outcome is AttackOutcome.DETECTED
    exact_error = probe.failure_type == scenario.expected_error
    leaked = EVIL_MARKER in probe.response.content or any(
        content in probe.response.content for content in ELEMENTS.values()
    )
    error_spans = [
        span for span in world.ring.errors() if span.name == scenario.expected_span
    ]
    span_ok = bool(error_spans) and error_spans[-1].error_type == scenario.expected_error
    return {
        "scenario": scenario.id,
        "warm": warm,
        "pipelined": pipeline is not None,
        "expected_error": scenario.expected_error,
        "failure_type": probe.failure_type,
        "detected": detected,
        "exact_error": exact_error,
        "unverified_bytes_leaked": leaked,
        "span_ok": span_ok,
        "ok": warmup_ok and detected and exact_error and not leaked and span_ok,
    }


def run_matrix(
    key_factory: Optional[Callable[[], KeyPair]] = None,
    pipeline: Optional[PipelineConfig] = None,
    warm_states: Sequence[bool] = (False, True),
    scenarios: Sequence[Scenario] = SCENARIOS,
) -> List[dict]:
    """The full matrix (scenarios × cold/warm) in one pipeline mode."""
    return [
        run_scenario(scenario, warm, key_factory=key_factory, pipeline=pipeline)
        for scenario in scenarios
        for warm in warm_states
    ]


# ----------------------------------------------------------------------
# The multi-writer (versioning) attack matrix
# ----------------------------------------------------------------------
#
# Same contract as the element matrix above, against the delta-DAG
# surface: every tamper mode of the multi-writer taxonomy — a forged
# delta, a writer the owner never granted, a writer the owner revoked,
# a withheld branch, a genuine delta replayed across objects — paired
# with the exact ``SecurityError`` subclass and the ``check.frontier``
# span that must reject it. The attacker sits between the reader and an
# honest server, rewriting ``versioning.fetch`` answers (the versioning
# analogue of ``MitmTransport``); the revoked-writer scenario instead
# attacks with *valid* artifacts that only the feed can condemn.

VERSIONING_ELEMENTS = {
    "body": b"<html>genuine multi-writer body</html>",
    "title": b"genuine title",
}


class RewritingRpc:
    """An RPC wrapper that rewrites ``versioning.fetch`` answers.

    Disarmed (``rewrite is None``) it is a transparent proxy, so the
    honest warm-up read and the revocation feed traffic pass untouched.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.rewrite: Optional[Callable[[dict], dict]] = None

    def call(self, target, op: str, **args):
        answer = self.inner.call(target, op, **args)
        if self.rewrite is not None and op == "versioning.fetch":
            answer = self.rewrite(answer)
        return answer


@dataclass
class VersioningWorld:
    """One versioning scenario's universe: server, writers, reader."""

    clock: object
    server: object
    rpc: RewritingRpc
    reader: object
    cache: object
    ring: RingBufferSink
    owner_keys: KeyPair
    oid: object
    writers: dict
    writer_keys: dict
    keys: Callable[[], KeyPair]

    def bundle_now(self) -> dict:
        """The honest server's current wire bundle (attacker's copy)."""
        bundle = self.server.versioning.fetch(self.oid.hex)
        bundle["peer_delta_ids"] = self.server.versioning.delta_ids(self.oid.hex)
        return bundle


@dataclass(frozen=True)
class VersioningScenario:
    """One multi-writer tamper mode and the check that must reject it."""

    id: str
    expected_error: str
    deploy: Callable[[VersioningWorld], None]
    expected_span: str = "check.frontier"


def build_versioning_world(
    key_factory: Optional[Callable[[], KeyPair]] = None,
) -> VersioningWorld:
    from repro.globedoc.oid import ObjectId
    from repro.net.rpc import RpcClient
    from repro.net.transport import LoopbackTransport
    from repro.obs import Tracer
    from repro.proxy.checks import SecurityChecker
    from repro.proxy.contentcache import ContentCache
    from repro.revocation.checker import RevocationChecker
    from repro.server.objectserver import ObjectServer
    from repro.sim.clock import SimClock
    from repro.versioning import DeltaDag, DocumentWriter, WriterGrant, merge_deltas
    from repro.versioning.client import VersionedReader

    keys = key_factory if key_factory is not None else _default_keys
    clock = SimClock()
    clock.advance(100.0)
    transport = LoopbackTransport()
    rpc = RewritingRpc(RpcClient(transport))
    server = ObjectServer(host="ginger.cs.vu.nl", site="root/europe/vu", clock=clock)
    transport.register(server.endpoint, server.rpc_server().handle_frame)

    owner_keys = keys()
    oid = ObjectId.from_public_key(owner_keys.public)
    server.versioning.register_object(owner_keys.public)

    writers, writer_keys = {}, {}
    shared = DeltaDag()
    for writer_id in ("alice", "bob"):
        writer_keys[writer_id] = keys()
        grant = WriterGrant.issue(
            owner_keys, oid, writer_id, writer_keys[writer_id].public,
            granted_at=clock.now(),
        )
        server.versioning.put_grant(oid.hex, grant)
        writers[writer_id] = DocumentWriter(writer_keys[writer_id], writer_id, oid, clock)
    # Two causally chained genuine deltas; bob's is the withholding target.
    d_alice = writers["alice"].put(shared, "body", VERSIONING_ELEMENTS["body"])
    d_bob = writers["bob"].put(shared, "title", VERSIONING_ELEMENTS["title"], "text/plain")
    for delta in (d_alice, d_bob):
        server.versioning.put_delta(oid.hex, delta)
    merged = merge_deltas(shared.deltas, oid_hex=oid.hex)
    server.versioning.put_frontier_cert(
        oid.hex, writers["alice"].certify_frontier(merged)
    )

    ring = RingBufferSink()
    tracer = Tracer(clock=clock, sinks=(ring,))
    cache = ContentCache(clock=clock, ttl=300.0)
    revocation = RevocationChecker(
        rpc, server.endpoint, clock,
        max_staleness=REVOCATION_STALENESS,
        content_cache=cache,
    )
    checker = SecurityChecker(
        clock,
        verification_cache=VerificationCache(),
        revocation_checker=revocation,
        tracer=tracer,
    )
    reader = VersionedReader(rpc, checker, content_cache=cache)
    return VersioningWorld(
        clock=clock, server=server, rpc=rpc, reader=reader, cache=cache,
        ring=ring, owner_keys=owner_keys, oid=oid,
        writers=writers, writer_keys=writer_keys, keys=keys,
    )


def deploy_forged_delta(world: VersioningWorld) -> None:
    """Rewrite a genuine delta's content in flight: signature must break."""
    from repro.util.encoding import canonical_bytes  # noqa: F401  (idiom anchor)

    template = world.bundle_now()

    def rewrite(answer: dict) -> dict:
        forged = dict(template["deltas"][0])
        # Tamper the signed payload's ops (both body copies, so whichever
        # the decoder trusts carries the attacker bytes).
        import copy

        forged = copy.deepcopy(forged)
        for body in (forged["body"], forged["envelope"]["payload"]["body"]):
            body["ops"][0]["content"] = EVIL_MARKER
        answer = dict(answer)
        answer["deltas"] = list(answer.get("deltas", [])) + [forged]
        return answer

    world.rpc.rewrite = rewrite


def deploy_unauthorized_writer(world: VersioningWorld) -> None:
    """Splice in a delta self-signed by a writer the owner never granted."""
    from repro.versioning import DeltaOp, SignedDelta
    from repro.versioning.delta import OP_PUT

    eve = world.keys()
    rogue = SignedDelta.build(
        eve, world.oid, "eve", lamport=99, parents=[],
        ops=[DeltaOp(OP_PUT, "body", EVIL_MARKER)],
        issued_at=world.clock.now(),
    )

    def rewrite(answer: dict) -> dict:
        answer = dict(answer)
        answer["deltas"] = list(answer.get("deltas", [])) + [rogue.to_dict()]
        return answer

    world.rpc.rewrite = rewrite


def deploy_revoked_writer(world: VersioningWorld) -> None:
    """Owner revokes bob through the feed; bob's (valid) deltas must die."""
    statement = RevocationStatement.revoke_writer(
        world.owner_keys, world.oid, "bob",
        serial=1, issued_at=world.clock.now(),
    )
    world.rpc.call(
        world.server.endpoint, "revocation.publish", statement=statement.to_dict()
    )
    # Past the staleness window: the next check must refresh and see it.
    world.clock.advance(REVOCATION_STALENESS + 1.0)


def deploy_withheld_branch(world: VersioningWorld) -> None:
    """Serve the DAG minus bob's branch — hide a verified head."""
    bob_ids = {
        delta.delta_id
        for delta in world.server.versioning._require(world.oid.hex).dag.deltas
        if delta.writer_id == "bob"
    }

    def rewrite(answer: dict) -> dict:
        answer = dict(answer)
        answer["deltas"] = [
            d for d in answer.get("deltas", [])
            if d["body"]["writer_id"] != "bob"
        ]
        answer["peer_delta_ids"] = [
            i for i in answer.get("peer_delta_ids", []) if i not in bob_ids
        ]
        answer["heads"] = [h for h in answer.get("heads", []) if h not in bob_ids]
        answer["frontier_cert"] = None  # the cert would name the hidden head
        return answer

    world.rpc.rewrite = rewrite


def deploy_replayed_delta(world: VersioningWorld) -> None:
    """Replay a genuine delta from a *different* object into this one."""
    from repro.globedoc.oid import ObjectId
    from repro.versioning import DeltaDag, DocumentWriter

    other_owner = world.keys()
    other_oid = ObjectId.from_public_key(other_owner.public)
    mallory = DocumentWriter(world.keys(), "mallory", other_oid, world.clock)
    foreign = mallory.put(DeltaDag(), "body", EVIL_MARKER)

    def rewrite(answer: dict) -> dict:
        answer = dict(answer)
        answer["deltas"] = list(answer.get("deltas", [])) + [foreign.to_dict()]
        return answer

    world.rpc.rewrite = rewrite


VERSIONING_SCENARIOS = [
    VersioningScenario("forged_delta", "DeltaForgeryError", deploy_forged_delta),
    VersioningScenario(
        "unauthorized_writer", "UnauthorizedWriterError", deploy_unauthorized_writer
    ),
    VersioningScenario("revoked_writer", "RevokedWriterError", deploy_revoked_writer),
    VersioningScenario(
        "withheld_branch", "BranchWithholdingError", deploy_withheld_branch
    ),
    VersioningScenario("replayed_delta", "DeltaReplayError", deploy_replayed_delta),
]


def run_versioning_scenario(
    scenario: VersioningScenario,
    key_factory: Optional[Callable[[], KeyPair]] = None,
) -> dict:
    """One versioning matrix cell; same verdict contract as the element
    matrix: detected, by the exact error class, zero attacker bytes
    served or cached, and the ``check.frontier`` span closed with that
    error type."""
    from repro.errors import SecurityError

    world = build_versioning_world(key_factory=key_factory)
    # Honest warm-up: the reader verifies and binds the genuine frontier
    # (the withholding scenario needs this baseline, and a prior bind
    # makes "the attack changed nothing served" checkable for the rest).
    warmup = world.reader.read(world.server.endpoint, world.oid)
    warmup_ok = (
        warmup.merged.element("body").content == VERSIONING_ELEMENTS["body"]
        and warmup.merged.element("title").content == VERSIONING_ELEMENTS["title"]
    )
    scenario.deploy(world)
    world.ring.clear()

    detected, failure_type, served = False, "", None
    try:
        served = world.reader.read(world.server.endpoint, world.oid)
    except SecurityError as exc:
        detected = True
        failure_type = type(exc).__name__

    leaked = False
    if served is not None:
        leaked = any(
            EVIL_MARKER in element.content
            for element in served.merged.elements.values()
        )
    for name in VERSIONING_ELEMENTS:
        cached = world.cache.get(world.oid.hex, name)
        if cached is not None and EVIL_MARKER in cached.content:
            leaked = True
    exact_error = failure_type == scenario.expected_error
    error_spans = [
        span for span in world.ring.errors() if span.name == scenario.expected_span
    ]
    span_ok = bool(error_spans) and (
        error_spans[-1].error_type == scenario.expected_error
    )
    return {
        "scenario": scenario.id,
        "expected_error": scenario.expected_error,
        "failure_type": failure_type,
        "detected": detected,
        "exact_error": exact_error,
        "unverified_bytes_leaked": leaked,
        "span_ok": span_ok,
        "ok": warmup_ok and detected and exact_error and not leaked and span_ok,
    }


def run_versioning_matrix(
    key_factory: Optional[Callable[[], KeyPair]] = None,
    scenarios: Sequence[VersioningScenario] = None,
) -> List[dict]:
    """The whole multi-writer tamper matrix; one verdict per scenario."""
    if scenarios is None:
        scenarios = VERSIONING_SCENARIOS
    return [
        run_versioning_scenario(scenario, key_factory=key_factory)
        for scenario in scenarios
    ]
