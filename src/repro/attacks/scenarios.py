"""The adversarial conformance matrix, as a reusable library.

Every tamper mode of the §3.2.1 taxonomy — wire injection, content
tampering, element swapping, stale replay, impostor keys, a lying
location service, and a compromised-then-revoked key — paired with the
exact :class:`~repro.errors.SecurityError` subclass and ``check.*`` span
that must reject it. The integration tests parametrize over this list;
the security benchmark replays the same matrix cold *and* warm, with the
concurrent pipeline disabled *and* enabled, to prove the fast paths
never convert a cached or prefetched artifact into a bypass.

:func:`build_world` assembles one scenario universe (testbed, victim
document, client stack); :func:`run_matrix` sweeps the whole matrix and
returns machine-checkable verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.attacks.adversary import AttackOutcome, run_attack_probe
from repro.attacks.malicious_location import LyingLocationService
from repro.attacks.malicious_server import (
    ElementSwapBehavior,
    ElementSwapRenamedBehavior,
    HonestBehavior,
    ImpostorBehavior,
    MaliciousReplica,
    StaleReplayBehavior,
    TamperBehavior,
)
from repro.attacks.mitm import MitmTransport
from repro.crypto.keys import KeyPair
from repro.crypto.verifycache import VerificationCache
from repro.globedoc.element import PageElement
from repro.globedoc.owner import DocumentOwner
from repro.harness.experiment import Testbed
from repro.net.address import Endpoint
from repro.obs import RingBufferSink, Tracer
from repro.proxy.pipeline import PipelineConfig
from repro.revocation.statement import RevocationStatement

__all__ = [
    "ELEMENTS",
    "EVIL_MARKER",
    "CLIENT_HOST",
    "ATTACK_SITE",
    "REVOCATION_STALENESS",
    "Scenario",
    "SCENARIOS",
    "World",
    "build_world",
    "run_scenario",
    "run_matrix",
]

ELEMENTS = {
    "index.html": b"<html>genuine matrix page</html>",
    "retraction.html": b"<html>genuine retraction</html>",
}

#: Bytes every attacker injects/serves; must never reach the caller.
EVIL_MARKER = b"EVIL-PAYLOAD"

CLIENT_HOST = "canardo.inria.fr"
ATTACK_SITE = "root/europe/inria"

#: Staleness window for the revocation scenario's stack (poll at half).
REVOCATION_STALENESS = 30.0


def _default_keys() -> KeyPair:
    # RSA-1024 keeps matrix sweeps fast; the tests inject their own
    # pre-generated key pool instead.
    return KeyPair.generate(1024)


class FlippedBytesBehavior(HonestBehavior):
    """Flip one content byte — the minimal authenticity violation."""

    def element(self, state, name):
        element = state.element(name)
        content = bytearray(element.content)
        content[0] ^= 0xFF
        return element.with_content(bytes(content) + EVIL_MARKER)


@dataclass
class World:
    """One scenario's universe: testbed, victim document, client stack."""

    testbed: Testbed
    published: object
    stack: object
    ring: RingBufferSink
    keys: Callable[[], KeyPair]
    pipelined: bool = False

    def deploy_replica(self, behavior) -> MaliciousReplica:
        replica = MaliciousReplica(
            host=CLIENT_HOST, document=self.published.document, behavior=behavior
        )
        self.testbed.network.register(
            Endpoint(CLIENT_HOST, "objectserver"), replica.rpc_server().handle_frame
        )
        self.testbed.location_service.tree.insert(
            self.published.owner.oid.hex, ATTACK_SITE, replica.contact_address()
        )
        return replica

    def handle(self, url: str):
        """Serve *url* through the mode under test: the pipelined batch
        path when enabled, the plain sequential proxy otherwise."""
        if self.pipelined:
            return self.stack.proxy.handle_many([url])[0]
        return self.stack.proxy.handle(url)


@dataclass(frozen=True)
class Scenario:
    """One tamper mode and the check that must reject it."""

    id: str
    expected_error: str
    expected_span: str
    deploy: Callable[[World], None]
    #: Scenarios that need the seventh check build their stack with a
    #: revocation checker attached (the rest keep the six-check pipeline).
    revocation: bool = False


def deploy_mitm(world: World) -> None:
    # The stack's transport is a MitmTransport built with the rewriter
    # disarmed (so the warm-up access is clean); arm it now.
    world.stack.transport.rewrite = MitmTransport.content_injector(EVIL_MARKER)


def deploy_tamper(world: World) -> None:
    world.deploy_replica(TamperBehavior(target="index.html", payload=EVIL_MARKER))


def deploy_flipped_bytes(world: World) -> None:
    world.deploy_replica(FlippedBytesBehavior())


def deploy_element_swap(world: World) -> None:
    world.deploy_replica(
        ElementSwapBehavior(
            when_asked_for="index.html", serve_instead="retraction.html"
        )
    )


def deploy_element_swap_renamed(world: World) -> None:
    world.deploy_replica(
        ElementSwapRenamedBehavior(
            when_asked_for="index.html", serve_instead="retraction.html"
        )
    )


def deploy_stale_replay(world: World) -> None:
    # Re-sign the *current* elements with a certificate that expires in
    # 60 s, replay it, and let the interval lapse: every signature still
    # verifies, only the freshness check can object.
    stale = world.published.owner.publish(validity=60.0)
    world.deploy_replica(StaleReplayBehavior(stale))
    world.testbed.clock.advance(61.0)


def deploy_impostor(world: World) -> None:
    impostor_owner = DocumentOwner(
        "evil.example/fake", keys=world.keys(), clock=world.testbed.clock
    )
    impostor_owner.put_element(PageElement("index.html", EVIL_MARKER))
    world.deploy_replica(ImpostorBehavior(impostor_owner.publish(validity=3600.0)))


def deploy_lying_location(world: World) -> None:
    impostor_owner = DocumentOwner(
        "evil.example/fake", keys=world.keys(), clock=world.testbed.clock
    )
    impostor_owner.put_element(PageElement("index.html", EVIL_MARKER))
    impostor = MaliciousReplica(
        host=CLIENT_HOST,
        document=world.published.document,
        behavior=ImpostorBehavior(impostor_owner.publish(validity=3600.0)),
        replica_id="impostor",
    )
    world.testbed.network.register(
        Endpoint(CLIENT_HOST, "objectserver"), impostor.rpc_server().handle_frame
    )
    liar = LyingLocationService(world.testbed.location_service.tree)
    liar.lie_about(
        world.published.owner.oid.hex,
        [impostor.contact_address()],
        suppress_truth=True,
    )
    world.testbed.network.register(  # replaces the honest handler
        world.testbed.location_endpoint, liar.rpc_server().handle_frame
    )


def deploy_compromised_key(world: World) -> None:
    # The ultimate replay: an attacker who stole the object key serves
    # the *genuine* document, bit-perfect, from a replica the six checks
    # fully trust — only the revocation check can reject it. The owner
    # publishes a key-scope statement to the feed; the serving replica
    # never hears of it.
    world.deploy_replica(HonestBehavior())
    owner = world.published.owner
    statement = RevocationStatement.revoke_key(
        owner.keys,
        owner.oid,
        serial=1,
        issued_at=world.testbed.clock.now(),
        reason="object key compromised",
    )
    world.testbed.object_server.revocation_feed.publish(statement)
    # Past the poll interval: the next check must refresh and see it.
    world.testbed.clock.advance(REVOCATION_STALENESS / 2.0 + 1.0)


SCENARIOS = [
    Scenario("mitm_inject", "AuthenticityError", "check.element_hash", deploy_mitm),
    Scenario("tamper", "AuthenticityError", "check.element_hash", deploy_tamper),
    Scenario(
        "flipped_bytes", "AuthenticityError", "check.element_hash",
        deploy_flipped_bytes,
    ),
    Scenario(
        "element_swap", "ConsistencyError", "check.consistency",
        deploy_element_swap,
    ),
    Scenario(
        "element_swap_renamed", "AuthenticityError", "check.element_hash",
        deploy_element_swap_renamed,
    ),
    Scenario(
        "stale_replay", "FreshnessError", "check.freshness", deploy_stale_replay
    ),
    Scenario(
        "impostor_key", "AuthenticityError", "check.public_key", deploy_impostor
    ),
    Scenario(
        "lying_location", "AuthenticityError", "check.public_key",
        deploy_lying_location,
    ),
    Scenario(
        "compromised_key_replay", "RevokedKeyError", "check.revocation",
        deploy_compromised_key, revocation=True,
    ),
]


def build_world(
    revocation: bool = False,
    key_factory: Optional[Callable[[], KeyPair]] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> World:
    keys = key_factory if key_factory is not None else _default_keys
    testbed = Testbed()
    owner = DocumentOwner("vu.nl/matrix", keys=keys(), clock=testbed.clock)
    for name, content in ELEMENTS.items():
        owner.put_element(PageElement(name, content))
    published = testbed.publish(owner, validity=3600.0)

    ring = RingBufferSink()
    tracer = Tracer(clock=testbed.clock, sinks=(ring,))
    # A disarmed MITM wrapper on every stack: scenarios that need it arm
    # the rewriter, the rest pass traffic through untouched.
    transport = MitmTransport(testbed.network.transport_for(CLIENT_HOST))
    stack = testbed.client_stack(
        CLIENT_HOST,
        transport=transport,
        verification_cache=VerificationCache(),
        max_rebinds=0,  # fail closed: no silent failover to ginger
        tracer=tracer,
        revocation_max_staleness=REVOCATION_STALENESS if revocation else None,
        pipeline=pipeline,
    )
    return World(
        testbed=testbed,
        published=published,
        stack=stack,
        ring=ring,
        keys=keys,
        pipelined=pipeline is not None,
    )


def run_scenario(
    scenario: Scenario,
    warm: bool,
    key_factory: Optional[Callable[[], KeyPair]] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> dict:
    """One matrix cell; returns a machine-checkable verdict dict.

    ``ok`` requires: the probe was *detected*, by the *exact* expected
    error class, with zero attacker bytes in the response, and the
    expected ``check.*`` span closed with that same error type.
    """
    world = build_world(
        revocation=scenario.revocation, key_factory=key_factory, pipeline=pipeline
    )
    url = world.published.url("index.html")
    warmup_ok = True
    if warm:
        # One honest access first: the VerificationCache now holds the
        # genuine certificate's verdict. Then force a cold bind so the
        # attacker (deployed at the client's own site) is found first.
        warmup = world.handle(url)
        warmup_ok = bool(warmup.ok) and warmup.content == ELEMENTS["index.html"]
        world.stack.proxy.drop_all_sessions()
        world.stack.location.invalidate(world.published.owner.oid)
    scenario.deploy(world)
    world.ring.clear()

    probe = run_attack_probe(world, url, ELEMENTS["index.html"])

    detected = probe.outcome is AttackOutcome.DETECTED
    exact_error = probe.failure_type == scenario.expected_error
    leaked = EVIL_MARKER in probe.response.content or any(
        content in probe.response.content for content in ELEMENTS.values()
    )
    error_spans = [
        span for span in world.ring.errors() if span.name == scenario.expected_span
    ]
    span_ok = bool(error_spans) and error_spans[-1].error_type == scenario.expected_error
    return {
        "scenario": scenario.id,
        "warm": warm,
        "pipelined": pipeline is not None,
        "expected_error": scenario.expected_error,
        "failure_type": probe.failure_type,
        "detected": detected,
        "exact_error": exact_error,
        "unverified_bytes_leaked": leaked,
        "span_ok": span_ok,
        "ok": warmup_ok and detected and exact_error and not leaked and span_ok,
    }


def run_matrix(
    key_factory: Optional[Callable[[], KeyPair]] = None,
    pipeline: Optional[PipelineConfig] = None,
    warm_states: Sequence[bool] = (False, True),
    scenarios: Sequence[Scenario] = SCENARIOS,
) -> List[dict]:
    """The full matrix (scenarios × cold/warm) in one pipeline mode."""
    return [
        run_scenario(scenario, warm, key_factory=key_factory, pipeline=pipeline)
        for scenario in scenarios
        for warm in warm_states
    ]
