"""The GlobeDoc object model (§2 of the paper).

A Web *document* is a collection of logically related *page elements*
(HTML, images, applets, …) encapsulated in one Globe distributed shared
object, identified by a self-certifying 160-bit OID, and protected by an
owner-signed *integrity certificate* carrying one (name, hash, validity)
row per element.
"""

from repro.globedoc.element import PageElement
from repro.globedoc.document import DocumentState, GlobeDocInterface
from repro.globedoc.oid import ObjectId
from repro.globedoc.integrity import IntegrityCertificate, ElementEntry
from repro.globedoc.urls import HybridUrl, GLOBE_PREFIX
from repro.globedoc.links import extract_links, rewrite_links, Link
from repro.globedoc.owner import DocumentOwner, SignedDocument

__all__ = [
    "PageElement",
    "DocumentState",
    "GlobeDocInterface",
    "ObjectId",
    "IntegrityCertificate",
    "ElementEntry",
    "HybridUrl",
    "GLOBE_PREFIX",
    "extract_links",
    "rewrite_links",
    "Link",
    "DocumentOwner",
    "SignedDocument",
]
