"""Hybrid URLs (§2.1).

Standard browsers don't understand GlobeDoc names, so GlobeDoc embeds
object and element names in regular-looking URLs with a distinguishing
prefix. We support both forms the paper implies:

* name form — ``globe://vu.nl/research/report/index.html`` where the
  host+leading path is the human-readable object name resolved via the
  naming service, and the remainder names the element;
* OID form — ``globe://oid/<40-hex>/index.html`` which skips name
  resolution entirely (useful once an absolute link carries the OID).

``HybridUrl.parse`` also recognises ``http://``/``https://`` URLs and
reports them as passthrough, matching the proxy's transparent handling
of regular HTTP requests (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional
from urllib.parse import urlsplit, urlunsplit

from repro.errors import UrlError
from repro.globedoc.element import validate_element_name
from repro.globedoc.oid import ObjectId

__all__ = ["HybridUrl", "GLOBE_PREFIX", "OID_MARKER"]

#: The distinguishing scheme prefix for GlobeDoc hybrid URLs.
GLOBE_PREFIX = "globe"

#: Host marker for the OID form of a hybrid URL.
OID_MARKER = "oid"


@dataclass(frozen=True)
class HybridUrl:
    """A parsed hybrid URL.

    Exactly one of ``object_name`` / ``oid`` is set for GlobeDoc URLs;
    both are ``None`` for passthrough HTTP URLs (``is_globedoc`` False).
    """

    raw: str
    element_name: str
    object_name: Optional[str] = None
    oid: Optional[ObjectId] = None

    @property
    def is_globedoc(self) -> bool:
        return self.object_name is not None or self.oid is not None

    @classmethod
    def parse(cls, url: str) -> "HybridUrl":
        """Parse *url*; raises :class:`~repro.errors.UrlError` if malformed."""
        if not isinstance(url, str) or not url:
            raise UrlError("URL must be a non-empty string")
        parts = urlsplit(url)
        scheme = parts.scheme.lower()
        if scheme in ("http", "https"):
            return cls(raw=url, element_name="", object_name=None, oid=None)
        if scheme != GLOBE_PREFIX:
            raise UrlError(f"unsupported URL scheme {parts.scheme!r} in {url!r}")
        host = parts.netloc
        path = parts.path.lstrip("/")
        if not host:
            raise UrlError(f"hybrid URL missing object name/OID: {url!r}")
        if host.lower() == OID_MARKER:
            segments = path.split("/", 1)
            if len(segments) != 2 or not segments[0] or not segments[1]:
                raise UrlError(
                    f"OID-form hybrid URL must be globe://oid/<hex>/<element>: {url!r}"
                )
            try:
                oid = ObjectId.from_hex(segments[0])
            except Exception as exc:
                raise UrlError(f"invalid OID in hybrid URL {url!r}: {exc}") from exc
            element = validate_element_name(segments[1])
            return cls(raw=url, element_name=element, object_name=None, oid=oid)
        # Name form: host plus all-but-last path segments form the object
        # name; the last segment(s) after the final object boundary name
        # the element. We use the convention that the element name is the
        # path portion after the host-rooted object path, delimited by a
        # '!' separator when the object name itself has path segments,
        # else the whole path is the element name.
        if "!" in path:
            object_path, _, element = path.partition("!")
            object_name = host + ("/" + object_path.strip("/") if object_path else "")
            element = element.lstrip("/")
        else:
            object_name = host
            element = path
        if not element:
            element = "index.html"
        element = validate_element_name(element)
        return cls(raw=url, element_name=element, object_name=object_name, oid=None)

    @classmethod
    def for_name(cls, object_name: str, element_name: str = "index.html") -> "HybridUrl":
        """Construct the name form programmatically."""
        if not object_name:
            raise UrlError("object name must be non-empty")
        element_name = validate_element_name(element_name)
        if "/" in object_name:
            host, _, rest = object_name.partition("/")
            raw = urlunsplit((GLOBE_PREFIX, host, f"/{rest}!/{element_name}", "", ""))
        else:
            raw = urlunsplit((GLOBE_PREFIX, object_name, f"/{element_name}", "", ""))
        return cls(raw=raw, element_name=element_name, object_name=object_name, oid=None)

    @classmethod
    def for_oid(cls, oid: ObjectId, element_name: str = "index.html") -> "HybridUrl":
        """Construct the OID form programmatically."""
        element_name = validate_element_name(element_name)
        raw = urlunsplit((GLOBE_PREFIX, OID_MARKER, f"/{oid.hex}/{element_name}", "", ""))
        return cls(raw=raw, element_name=element_name, object_name=None, oid=oid)

    def sibling(self, element_name: str) -> "HybridUrl":
        """URL for another element of the same object (relative link)."""
        if self.oid is not None:
            return HybridUrl.for_oid(self.oid, element_name)
        if self.object_name is not None:
            return HybridUrl.for_name(self.object_name, element_name)
        raise UrlError("cannot take sibling of a passthrough URL")

    def __str__(self) -> str:
        return self.raw
