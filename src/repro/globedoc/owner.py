"""Owner-side tooling (§3): create, sign, update, and package documents.

"Behind each GlobeDoc object there is a person or organization — the
object owner — that is in charge of it. … The object owner uses the
object's private key to sign the object's state before it replicates
it." The owner holds the only copy of the private key; the output of
this module — a :class:`SignedDocument` — contains *no* secrets and is
what gets pushed onto (untrusted) object servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.identity import CertificateAuthority, IdentityCertificate
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import ReproError
from repro.globedoc.document import DocumentState
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate
from repro.globedoc.oid import ObjectId
from repro.sim.clock import Clock, RealClock

__all__ = ["DocumentOwner", "SignedDocument", "DEFAULT_VALIDITY"]

#: Default element validity interval: one day, matching the paper's
#: 24-hour experiment horizon.
DEFAULT_VALIDITY = 24 * 3600.0


@dataclass(frozen=True)
class SignedDocument:
    """Everything a replica needs, nothing secret: public key, elements,
    integrity certificate, optional identity proofs."""

    oid: ObjectId
    public_key: PublicKey
    elements: Mapping[str, PageElement]
    integrity: IntegrityCertificate
    identity_certs: tuple

    def to_dict(self) -> dict:
        """Wire representation — what the owner ships to object servers."""
        return {
            "oid": self.oid.to_dict(),
            "public_key_der": self.public_key.der,
            "elements": [self.elements[name].to_dict() for name in sorted(self.elements)],
            "integrity": self.integrity.to_dict(),
            "identity_certs": [c.to_dict() for c in self.identity_certs],
        }

    @classmethod
    def from_state(cls, state: DocumentState) -> "SignedDocument":
        """Rebuild a shippable signed document from replica-held state.

        Everything a replica stores is public and owner-signed, so any
        host can repackage it for onward replication — this is what lets
        *peer object servers* (authorised in a target's keystore, §4)
        implement dynamic replication without involving the owner.
        The state is validated first: a tampered replica cannot
        propagate, it can only fail here.
        """
        state.validate()
        from repro.globedoc.integrity import IntegrityCertificate  # re-export guard
        from repro.globedoc.oid import ObjectId

        assert state.integrity is not None  # validate() guarantees it
        suite = state.integrity.suite
        return cls(
            oid=ObjectId.from_public_key(state.public_key, suite),
            public_key=state.public_key,
            elements=dict(state.elements),
            integrity=state.integrity,
            identity_certs=tuple(state.identity_certs),
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "SignedDocument":
        elements = {
            e["name"]: PageElement.from_dict(e) for e in data["elements"]
        }
        return cls(
            oid=ObjectId.from_dict(data["oid"]),
            public_key=PublicKey(der=bytes(data["public_key_der"])),
            elements=elements,
            integrity=IntegrityCertificate.from_dict(data["integrity"]),
            identity_certs=tuple(
                IdentityCertificate.from_dict(c) for c in data.get("identity_certs", [])
            ),
        )

    def state(self) -> DocumentState:
        """Materialise a replica-side document state (validated)."""
        state = DocumentState(
            public_key=self.public_key,
            elements=dict(self.elements),
            integrity=self.integrity,
            identity_certs=list(self.identity_certs),
        )
        state.validate()
        return state

    @property
    def total_size(self) -> int:
        return sum(e.size for e in self.elements.values())

    @property
    def version(self) -> int:
        return self.integrity.version


class DocumentOwner:
    """Holds the object key pair and produces signed document versions.

    Typical lifecycle::

        owner = DocumentOwner("vu.nl/research/report")
        owner.put_element(PageElement("index.html", b"..."))
        signed = owner.publish(validity=3600)        # version 1
        owner.put_element(PageElement("index.html", b"v2"))
        signed2 = owner.publish(validity=3600)       # version 2
    """

    def __init__(
        self,
        name: str,
        keys: Optional[KeyPair] = None,
        suite: HashSuite = SHA1,
        clock: Optional[Clock] = None,
    ) -> None:
        if not name:
            raise ReproError("owner/document name must be non-empty")
        self.name = name
        self.keys = keys if keys is not None else KeyPair.generate()
        self.suite = suite
        self.clock = clock if clock is not None else RealClock()
        self.oid = ObjectId.from_public_key(self.keys.public, suite)
        self._elements: Dict[str, PageElement] = {}
        self._identity_certs: List[IdentityCertificate] = []
        self._version = 0

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    @property
    def version(self) -> int:
        """Version of the most recent publish (0 before first publish)."""
        return self._version

    # ------------------------------------------------------------------
    # State editing
    # ------------------------------------------------------------------

    def put_element(self, element: PageElement) -> None:
        """Insert or replace a page element in the working state."""
        self._elements[element.name] = element

    def put_elements(self, elements: Iterable[PageElement]) -> None:
        for element in elements:
            self.put_element(element)

    def remove_element(self, name: str) -> None:
        if name not in self._elements:
            raise ReproError(f"no such element: {name!r}")
        del self._elements[name]

    def element_names(self) -> List[str]:
        return sorted(self._elements)

    def staged_elements(self) -> List[PageElement]:
        """The current working elements (re-keying tooling hands these
        to a successor owner; elements are frozen, so sharing is safe)."""
        return [self._elements[name] for name in sorted(self._elements)]

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def request_identity_certificate(
        self,
        ca: CertificateAuthority,
        not_after: Optional[float] = None,
    ) -> IdentityCertificate:
        """Obtain and attach a CA-signed identity proof for this object."""
        cert = ca.certify(
            self.name,
            self.public_key,
            not_before=None,
            not_after=not_after,
        )
        self._identity_certs.append(cert)
        return cert

    # ------------------------------------------------------------------
    # Signing / publishing
    # ------------------------------------------------------------------

    def publish(
        self,
        validity: float = DEFAULT_VALIDITY,
        per_element_expiry: Optional[Mapping[str, float]] = None,
    ) -> SignedDocument:
        """Sign the current working state as a new document version.

        *validity* is the default freshness interval in seconds from now;
        *per_element_expiry* gives absolute per-element expiration
        overrides (name → absolute timestamp).
        """
        if not self._elements:
            raise ReproError("cannot publish a document with no elements")
        if validity <= 0:
            raise ReproError(f"validity must be positive, got {validity}")
        self._version += 1
        now = self.clock.now()
        integrity = IntegrityCertificate.for_elements(
            self.keys,
            self.oid.hex,
            self._elements.values(),
            expires_at=now + validity,
            version=self._version,
            suite=self.suite,
            per_element_expiry=per_element_expiry,
            issued_at=now,
        )
        return SignedDocument(
            oid=self.oid,
            public_key=self.public_key,
            elements=dict(self._elements),
            integrity=integrity,
            identity_certs=tuple(self._identity_certs),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DocumentOwner(name={self.name!r}, oid={self.oid.hex[:12]}…, v{self._version})"
