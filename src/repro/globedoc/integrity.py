"""The GlobeDoc integrity certificate (§3.2.2, Fig. 2).

A digital certificate signed with the *object's* private key containing
one row per page element: the element's name, its SHA-1 hash, and a
validity interval (expiration time). Every replica must store it; every
client verifies against it. Per-element expiration is the design point
the paper contrasts with r-OSFS's single per-filesystem interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, Mapping, Optional, Sequence

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1, suite_by_name
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import (
    AuthenticityError,
    CertificateError,
    ConsistencyError,
    FreshnessError,
)
from repro.globedoc.element import PageElement
from repro.sim.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crypto.verifycache import VerificationCache

__all__ = ["ElementEntry", "IntegrityCertificate", "INTEGRITY_CERT_TYPE"]

INTEGRITY_CERT_TYPE = "globedoc/integrity"


@dataclass(frozen=True)
class ElementEntry:
    """One row of the certificate table: (name, hash, expiration)."""

    name: str
    content_hash: bytes
    expires_at: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "hash": self.content_hash,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ElementEntry":
        return cls(
            name=str(data["name"]),
            content_hash=bytes(data["hash"]),
            expires_at=float(data["expires_at"]),
        )


@dataclass(frozen=True)
class IntegrityCertificate:
    """Owner-signed table of element entries plus a version counter.

    ``version`` increases monotonically with each re-signing; replicas
    and proxies use it to prefer newer certificates, and the stale-replay
    attack test shows an old certificate is rejected once its entries
    expire.
    """

    certificate: Certificate

    @classmethod
    def build(
        cls,
        owner_keys: KeyPair,
        oid_hex: str,
        entries: Sequence[ElementEntry],
        version: int = 1,
        suite: HashSuite = SHA1,
        issued_at: Optional[float] = None,
    ) -> "IntegrityCertificate":
        """Sign a certificate over *entries* with the object private key."""
        if not entries:
            raise CertificateError("integrity certificate needs at least one entry")
        names = [e.name for e in entries]
        if len(set(names)) != len(names):
            raise CertificateError("duplicate element names in integrity certificate")
        body = {
            "oid": oid_hex,
            "version": int(version),
            "issued_at": issued_at,
            "entries": [e.to_dict() for e in sorted(entries, key=lambda e: e.name)],
        }
        cert = Certificate.issue(owner_keys, INTEGRITY_CERT_TYPE, body, suite=suite)
        return cls(certificate=cert)

    @classmethod
    def for_elements(
        cls,
        owner_keys: KeyPair,
        oid_hex: str,
        elements: Iterable[PageElement],
        expires_at: float,
        version: int = 1,
        suite: HashSuite = SHA1,
        per_element_expiry: Optional[Mapping[str, float]] = None,
        issued_at: Optional[float] = None,
    ) -> "IntegrityCertificate":
        """Hash *elements* and sign; *per_element_expiry* overrides the
        default *expires_at* for selected names (the paper's per-element
        freshness constraint)."""
        overrides = dict(per_element_expiry or {})
        entries = []
        seen = set()
        for element in elements:
            entries.append(
                ElementEntry(
                    name=element.name,
                    content_hash=element.content_hash(suite),
                    expires_at=float(overrides.pop(element.name, expires_at)),
                )
            )
            seen.add(element.name)
        if overrides:
            raise CertificateError(
                f"expiry overrides for unknown elements: {sorted(overrides)}"
            )
        return cls.build(
            owner_keys, oid_hex, entries, version=version, suite=suite, issued_at=issued_at
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def oid_hex(self) -> str:
        return str(self.certificate.body["oid"])

    @property
    def version(self) -> int:
        return int(self.certificate.body["version"])

    @property
    def issued_at(self) -> Optional[float]:
        value = self.certificate.body.get("issued_at")
        return None if value is None else float(value)

    @property
    def suite(self) -> HashSuite:
        return suite_by_name(self.certificate.envelope.suite_name)

    @property
    def entries(self) -> Dict[str, ElementEntry]:
        """Name → entry map (parsed once from the signed, frozen body).

        Memoized: ``entry_for`` runs on every element check, and the
        signed body cannot change after construction.
        """
        cached = self.__dict__.get("_entries")
        if cached is None:
            cached = {
                str(raw["name"]): ElementEntry.from_dict(raw)
                for raw in self.certificate.body["entries"]
            }
            self.__dict__["_entries"] = cached
        return dict(cached)

    @property
    def element_names(self) -> list:
        return sorted(self.entries)

    def entry_for(self, name: str) -> ElementEntry:
        """The entry for *name*; ConsistencyError if the certificate has none."""
        self.entries  # populate the memo
        entry = self.__dict__["_entries"].get(name)
        if entry is None:
            raise ConsistencyError(
                f"element {name!r} is not part of object {self.oid_hex[:16]}…"
            )
        return entry

    # ------------------------------------------------------------------
    # Verification (the client-side checks of §3.2.2)
    # ------------------------------------------------------------------

    def verify_signature(
        self,
        object_key: PublicKey,
        cache: Optional["VerificationCache"] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        """Authenticity of the certificate itself: signed by the object key.

        With a *cache*, a repeated verification of the same certificate
        under the same key replays the memoized RSA verdict (safe: the
        signed bytes are immutable); *clock* lets the cache honour
        certificate-level expiry.
        """
        try:
            self.certificate.verify(
                object_key, clock=clock, expected_type=INTEGRITY_CERT_TYPE, cache=cache
            )
        except CertificateError as exc:
            raise AuthenticityError(
                f"integrity certificate signature invalid: {exc}"
            ) from exc

    def check_element(
        self,
        requested_name: str,
        element: PageElement,
        clock: Clock,
    ) -> ElementEntry:
        """Run the consistency, authenticity, and freshness checks on a
        retrieved element (assumes :meth:`verify_signature` already ran).

        Order follows §3.2.2: name consistency first (is this the element
        I asked for, and is it part of the object?), then content hash,
        then validity interval against the retrieval time.
        """
        if element.name != requested_name:
            raise ConsistencyError(
                f"server returned element {element.name!r} for request {requested_name!r}"
            )
        entry = self.entry_for(requested_name)
        if element.content_hash(self.suite) != entry.content_hash:
            raise AuthenticityError(
                f"content hash mismatch for element {requested_name!r} "
                "(element was tampered with or is not owner-created)"
            )
        now = clock.now()
        if now > entry.expires_at:
            raise FreshnessError(
                f"element {requested_name!r} expired at {entry.expires_at} "
                f"(retrieved at {now})"
            )
        return entry

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IntegrityCertificate":
        cert = Certificate.from_dict(data)
        if cert.cert_type != INTEGRITY_CERT_TYPE:
            raise CertificateError(
                f"not an integrity certificate: type={cert.cert_type!r}"
            )
        return cls(certificate=cert)

    @property
    def wire_size(self) -> int:
        """Serialized size — the ~2 KB "extra information" of Fig. 4."""
        return self.certificate.wire_size
