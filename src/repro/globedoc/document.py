"""Document state and the GlobeDoc method interface.

``DocumentState`` is the replicable state of one GlobeDoc: its page
elements plus the current integrity certificate, versioned. The
``GlobeDocInterface`` protocol is what both kinds of local
representative (full replica and forwarding proxy, §2.1) implement, so
client code is oblivious to where the state lives — Globe's core
transparency property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol, runtime_checkable

from repro.crypto.identity import IdentityCertificate
from repro.crypto.keys import PublicKey
from repro.errors import ConsistencyError, ReproError
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import IntegrityCertificate

__all__ = ["DocumentState", "GlobeDocInterface"]


@dataclass
class DocumentState:
    """The replicated state of a GlobeDoc object.

    Invariant (checked by :meth:`validate`): the set of element names
    equals the set of names in the integrity certificate, and each
    element's content hashes to its certificate entry. Owner tooling
    maintains it; the attack suite deliberately violates it server-side
    to show clients detect the violation.
    """

    public_key: PublicKey
    elements: Dict[str, PageElement] = field(default_factory=dict)
    integrity: Optional[IntegrityCertificate] = None
    identity_certs: List[IdentityCertificate] = field(default_factory=list)

    def add_element(self, element: PageElement) -> None:
        """Insert or replace an element (invalidates any existing cert)."""
        self.elements[element.name] = element

    def remove_element(self, name: str) -> None:
        if name not in self.elements:
            raise ReproError(f"no such element: {name!r}")
        del self.elements[name]

    def element(self, name: str) -> PageElement:
        elem = self.elements.get(name)
        if elem is None:
            raise ConsistencyError(f"element {name!r} not in document state")
        return elem

    @property
    def element_names(self) -> List[str]:
        return sorted(self.elements)

    @property
    def total_size(self) -> int:
        """Sum of element content sizes (the paper's object sizes)."""
        return sum(e.size for e in self.elements.values())

    def validate(self) -> None:
        """Check the state/certificate invariant; raise ReproError if broken."""
        if self.integrity is None:
            raise ReproError("document state has no integrity certificate")
        entries = self.integrity.entries
        if set(entries) != set(self.elements):
            raise ReproError(
                "element set differs from certificate entries: "
                f"state={sorted(self.elements)} cert={sorted(entries)}"
            )
        suite = self.integrity.suite
        for name, element in self.elements.items():
            if element.content_hash(suite) != entries[name].content_hash:
                raise ReproError(f"element {name!r} does not match its certificate hash")

    def copy(self) -> "DocumentState":
        """Shallow-ish copy used when installing a replica."""
        return DocumentState(
            public_key=self.public_key,
            elements=dict(self.elements),
            integrity=self.integrity,
            identity_certs=list(self.identity_certs),
        )


@runtime_checkable
class GlobeDocInterface(Protocol):
    """Methods a local representative exposes to the client proxy.

    Mirrors Fig. 3's per-binding interactions: fetch the object public
    key (step 4), identity proofs (step 6), the integrity certificate
    (step 8), and page elements (step 10). All return untrusted data —
    the proxy performs every verification itself.
    """

    def get_public_key(self) -> PublicKey:
        """The object's public key as stored at this replica."""
        ...

    def get_identity_certificates(self) -> List[IdentityCertificate]:
        """Identity proofs available at this replica (may be empty)."""
        ...

    def get_integrity_certificate(self) -> IntegrityCertificate:
        """The replica's copy of the integrity certificate."""
        ...

    def get_element(self, name: str) -> PageElement:
        """Retrieve one page element by name."""
        ...

    def list_elements(self) -> List[str]:
        """Element names this replica claims to hold."""
        ...
