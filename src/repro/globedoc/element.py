"""Page elements: the units of a GlobeDoc's state.

A page element is "anything that is accessible over the Web" (§2): HTML
source, text, images, audio, video, applets. Elements are named within
their document; names are path-like strings (``"index.html"``,
``"img/logo.png"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.crypto.hashes import HashSuite, SHA1
from repro.errors import ReproError

__all__ = ["PageElement", "validate_element_name", "guess_content_type"]

_CONTENT_TYPES = {
    ".html": "text/html",
    ".htm": "text/html",
    ".txt": "text/plain",
    ".css": "text/css",
    ".js": "application/javascript",
    ".png": "image/png",
    ".jpg": "image/jpeg",
    ".jpeg": "image/jpeg",
    ".gif": "image/gif",
    ".mp3": "audio/mpeg",
    ".mp4": "video/mp4",
    ".class": "application/java-vm",
    ".jar": "application/java-archive",
}

_MAX_NAME_LENGTH = 1024


def validate_element_name(name: str) -> str:
    """Validate and normalise an element name.

    Names are non-empty relative paths without ``.``/``..`` segments,
    backslashes, or control characters — the consistency check (§3.2.2)
    compares names byte-for-byte, so ambiguous spellings are rejected at
    creation time.
    """
    if not isinstance(name, str) or not name:
        raise ReproError("element name must be a non-empty string")
    if len(name) > _MAX_NAME_LENGTH:
        raise ReproError(f"element name longer than {_MAX_NAME_LENGTH} chars")
    if name.startswith("/") or "\\" in name:
        raise ReproError(f"element name must be a relative path: {name!r}")
    if any(ord(ch) < 0x20 for ch in name):
        raise ReproError("element name contains control characters")
    parts = name.split("/")
    if any(part in ("", ".", "..") for part in parts):
        raise ReproError(f"element name contains empty or dot segments: {name!r}")
    return name


def guess_content_type(name: str) -> str:
    """MIME type from the element name's extension (default octet-stream)."""
    lowered = name.lower()
    for ext, ctype in _CONTENT_TYPES.items():
        if lowered.endswith(ext):
            return ctype
    return "application/octet-stream"


@dataclass(frozen=True)
class PageElement:
    """An immutable named blob of Web content.

    Immutability matters: the integrity certificate pins the hash of
    these exact bytes, so updates create a *new* element (and a new
    certificate) rather than mutating in place.
    """

    name: str
    content: bytes
    content_type: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_element_name(self.name)
        object.__setattr__(self, "content", bytes(self.content))
        if not self.content_type:
            object.__setattr__(self, "content_type", guess_content_type(self.name))
        object.__setattr__(self, "_hashes", {})

    @property
    def size(self) -> int:
        """Content length in bytes."""
        return len(self.content)

    def content_hash(self, suite: HashSuite = SHA1) -> bytes:
        """Digest of the element content (the integrity-certificate hash).

        Computed once per suite per instance: the content is frozen, so
        owner signing and repeated client checks of the same element
        instance share one digest pass.
        """
        digest = self._hashes.get(suite.name)
        if digest is None:
            digest = suite.digest(self.content)
            self._hashes[suite.name] = digest
        return digest

    def with_content(self, content: bytes, content_type: Optional[str] = None) -> "PageElement":
        """A new element with the same name and different content."""
        return PageElement(
            name=self.name,
            content=content,
            content_type=content_type if content_type is not None else self.content_type,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> dict:
        """Wire representation."""
        return {
            "name": self.name,
            "content": self.content,
            "content_type": self.content_type,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PageElement":
        return cls(
            name=str(data["name"]),
            content=bytes(data["content"]),
            content_type=str(data.get("content_type", "")),
            metadata=dict(data.get("metadata", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PageElement(name={self.name!r}, {self.size}B, {self.content_type})"
