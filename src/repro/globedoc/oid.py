"""Self-certifying object identifiers.

§2: every GlobeDoc is identified by a unique 160-bit OID containing no
location information. §3.1.2 makes it *self-certifying*: the OID is the
SHA-1 hash of the object's public key, so whoever holds an OID can check
— without trusting naming, location, or hosting infrastructure — that a
presented public key really belongs to the object. This is the keystone
of the whole security architecture: a malicious location service can at
worst cause denial of service, never impersonation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashes import HashSuite, SHA1, SHA256, suite_by_name
from repro.crypto.keys import PublicKey
from repro.errors import AuthenticityError, ReproError

__all__ = ["ObjectId"]


@dataclass(frozen=True)
class ObjectId:
    """A self-certifying OID: ``digest = suite(hash of public-key DER)``."""

    digest: bytes
    suite_name: str = SHA1.name

    def __post_init__(self) -> None:
        suite = suite_by_name(self.suite_name)
        if len(self.digest) != suite.digest_size:
            raise ReproError(
                f"OID digest must be {suite.digest_size} bytes for "
                f"{self.suite_name}, got {len(self.digest)}"
            )

    @classmethod
    def from_public_key(cls, key: PublicKey, suite: HashSuite = SHA1) -> "ObjectId":
        """Derive the OID of the object owning *key*."""
        return cls(digest=key.fingerprint(suite), suite_name=suite.name)

    @classmethod
    def from_hex(cls, text: str, suite: Optional[HashSuite] = None) -> "ObjectId":
        """Parse the hex form used in hybrid URLs and resource records.

        When *suite* is omitted it is inferred from the digest length
        (40 hex chars → SHA-1, 64 → SHA-256), so OID-form hybrid URLs
        work for every supported suite.
        """
        try:
            raw = bytes.fromhex(text)
        except ValueError as exc:
            raise ReproError(f"invalid OID hex: {text!r}") from exc
        if suite is None:
            for candidate in (SHA1, SHA256):
                if len(raw) == candidate.digest_size:
                    suite = candidate
                    break
            else:
                raise ReproError(
                    f"OID hex length {len(text)} matches no known hash suite"
                )
        return cls(digest=raw, suite_name=suite.name)

    @property
    def suite(self) -> HashSuite:
        return suite_by_name(self.suite_name)

    @property
    def hex(self) -> str:
        """Hex rendering (40 chars for SHA-1) used in URLs and records."""
        return self.digest.hex()

    @property
    def bits(self) -> int:
        return len(self.digest) * 8

    def matches_key(self, key: PublicKey) -> bool:
        """Does *key* hash to this OID? (The self-certification check.)"""
        return key.fingerprint(self.suite) == self.digest

    def check_key(self, key: PublicKey) -> PublicKey:
        """Verify *key* against the OID; raise AuthenticityError otherwise.

        This is step 5 of Fig. 3 ("Verify public key"): the proxy fetched
        the key from an *untrusted* replica, and only this check makes it
        trustworthy.
        """
        if not self.matches_key(key):
            raise AuthenticityError(
                f"public key does not hash to OID {self.hex[:16]}… "
                "(replica is not part of the requested object)"
            )
        return key

    def to_dict(self) -> dict:
        return {"digest": self.digest, "suite": self.suite_name}

    @classmethod
    def from_dict(cls, data) -> "ObjectId":
        return cls(digest=bytes(data["digest"]), suite_name=str(data["suite"]))

    def __str__(self) -> str:
        return self.hex

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectId({self.hex[:16]}…, {self.suite_name})"
