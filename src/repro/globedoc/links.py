"""Hyperlink structure of GlobeDoc HTML elements (§2).

"A relative hyper-link contained in some GlobeDoc object's element
refers to another element in that same object. Likewise, an absolute
hyper-link may refer to an element contained in another GlobeDoc
object." This module extracts both kinds from HTML content and rewrites
site-relative links when a conventional website is imported into
GlobeDoc objects (used by the publishing example and the workload
generator).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.globedoc.urls import GLOBE_PREFIX, HybridUrl

__all__ = ["Link", "extract_links", "rewrite_links", "intra_object_links"]

# href/src attributes in single or double quotes. A real parser is not
# needed: the generator emits well-formed attributes and the paper's
# model only cares about the link graph, not full HTML semantics.
_LINK_RE = re.compile(
    r"""(?P<attr>href|src)\s*=\s*(?P<quote>["'])(?P<target>[^"']*)(?P=quote)""",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Link:
    """One hyperlink occurrence inside an HTML element."""

    attr: str
    target: str
    start: int
    end: int

    @property
    def is_absolute(self) -> bool:
        """Absolute links carry a scheme (globe://, http://, …)."""
        return "://" in self.target

    @property
    def is_globedoc(self) -> bool:
        return self.target.startswith(GLOBE_PREFIX + "://")

    @property
    def is_site_absolute(self) -> bool:
        """Site-absolute paths (``/page2``) refer to *other documents* of
        the site — candidates for rewriting to hybrid URLs on import."""
        return self.target.startswith("/")

    @property
    def is_relative(self) -> bool:
        """Relative links refer to elements of the *same* object."""
        return (
            not self.is_absolute
            and not self.is_site_absolute
            and not self.target.startswith("#")
        )

    def as_hybrid(self) -> Optional[HybridUrl]:
        """Parse an absolute GlobeDoc link, else None."""
        if not self.is_globedoc:
            return None
        return HybridUrl.parse(self.target)


def extract_links(html: str) -> List[Link]:
    """All href/src links in *html*, in document order."""
    links = []
    for match in _LINK_RE.finditer(html):
        links.append(
            Link(
                attr=match.group("attr").lower(),
                target=match.group("target"),
                start=match.start("target"),
                end=match.end("target"),
            )
        )
    return links


def intra_object_links(html: str) -> List[str]:
    """Names of same-object elements referenced by *html* (relative links)."""
    return [link.target for link in extract_links(html) if link.is_relative]


def rewrite_links(html: str, mapper: Callable[[str], Optional[str]]) -> str:
    """Rewrite link targets via *mapper*.

    *mapper* receives each target and returns the replacement, or
    ``None`` to keep the original. Used when importing a plain website:
    absolute links to other documents become ``globe://`` hybrid URLs,
    relative links are left alone (they already name sibling elements).
    """
    out = []
    cursor = 0
    for link in extract_links(html):
        replacement = mapper(link.target)
        if replacement is None:
            continue
        out.append(html[cursor : link.start])
        out.append(replacement)
        cursor = link.end
    out.append(html[cursor:])
    return "".join(out)
