"""Signed revocation statements.

The paper's integrity certificates contain a validity interval so that a
key compromise is *eventually* contained (§3.2) — but "eventually" is
the certificate's remaining lifetime. A revocation statement closes that
window actively: the owner signs, with the object key itself, a
declaration that either the whole key or one element's certificate row
must no longer be accepted.

Statements are *self-certifying*, like OIDs: the body embeds the issuing
public key, and verification checks that the key hashes to the stated
OID before checking the signature. Anyone — object server, proxy,
auditor — can validate a statement in isolation, with no session state
and no trusted distribution channel; the feed that carries statements is
as untrusted as every other piece of GlobeDoc infrastructure.

A statement carries its issue time and a per-OID monotonically
increasing serial (the feed enforces monotonicity at publish time), and
has **no expiry**: revocation is permanent. An element revocation names
the certificate version it applies to, so a re-issued certificate
(version+1, e.g. after the owner replaces the compromised element) is
not condemned by the old statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.crypto.certificates import Certificate
from repro.crypto.hashes import HashSuite, SHA1
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import AuthenticityError, CertificateError
from repro.globedoc.oid import ObjectId

__all__ = [
    "RevocationStatement",
    "REVOCATION_CERT_TYPE",
    "SCOPE_KEY",
    "SCOPE_ELEMENT",
    "SCOPE_WRITER",
]

REVOCATION_CERT_TYPE = "globedoc/revocation"

#: Whole-object key revocation: nothing signed by the key is servable.
SCOPE_KEY = "key"
#: Per-element revocation: one certificate row, up to a stated version.
SCOPE_ELEMENT = "element"
#: Writer-grant revocation: one writer's delta-signing authority ends.
#: The object key and the document's served state stay valid — only the
#: named writer's deltas stop merging (multi-writer subsystem).
SCOPE_WRITER = "writer"


@dataclass(frozen=True)
class RevocationStatement:
    """One signed revocation, wrapping the generic certificate base."""

    certificate: Certificate

    # ------------------------------------------------------------------
    # Issuing
    # ------------------------------------------------------------------

    @classmethod
    def revoke_key(
        cls,
        owner_keys: KeyPair,
        oid: ObjectId,
        serial: int,
        issued_at: float,
        reason: str = "key compromise",
        suite: Optional[HashSuite] = None,
    ) -> "RevocationStatement":
        """Revoke the object key itself (scope ``key``)."""
        return cls._issue(
            owner_keys, oid, SCOPE_KEY, serial, issued_at, reason,
            element=None, cert_version=None, suite=suite,
        )

    @classmethod
    def revoke_element(
        cls,
        owner_keys: KeyPair,
        oid: ObjectId,
        element: str,
        cert_version: int,
        serial: int,
        issued_at: float,
        reason: str = "element certificate revoked",
        suite: Optional[HashSuite] = None,
    ) -> "RevocationStatement":
        """Revoke one element's certificate row, for certificate
        versions up to and including *cert_version*."""
        if not element:
            raise CertificateError("element revocation needs an element name")
        if cert_version < 1:
            raise CertificateError(
                f"cert_version must be a published version, got {cert_version}"
            )
        return cls._issue(
            owner_keys, oid, SCOPE_ELEMENT, serial, issued_at, reason,
            element=element, cert_version=cert_version, suite=suite,
        )

    @classmethod
    def revoke_writer(
        cls,
        owner_keys: KeyPair,
        oid: ObjectId,
        writer_id: str,
        serial: int,
        issued_at: float,
        reason: str = "writer grant revoked",
        suite: Optional[HashSuite] = None,
    ) -> "RevocationStatement":
        """Revoke one writer's grant (scope ``writer``).

        Signed with the object key like every statement for this OID;
        the condemned writer id rides in the statement body. The
        semantics are fail-closed and **retroactive**: once a reader's
        verified feed view contains this statement, the frontier check
        rejects any served state containing the writer's deltas with
        :class:`~repro.errors.RevokedWriterError` — pre-revocation
        history included, even where other writers' deltas build on it.
        Revocation is the owner's kill switch, not a selective mute:
        condemning a writer condemns every object state that merged
        their contribution, and the owner re-publishes surviving
        content under untainted deltas if the object is to stay
        readable. Readers whose feed view predates the statement keep
        serving only what they verified before it reached them.
        """
        if not writer_id:
            raise CertificateError("writer revocation needs a writer id")
        return cls._issue(
            owner_keys, oid, SCOPE_WRITER, serial, issued_at, reason,
            element=None, cert_version=None, writer=str(writer_id), suite=suite,
        )

    @classmethod
    def _issue(
        cls,
        owner_keys: KeyPair,
        oid: ObjectId,
        scope: str,
        serial: int,
        issued_at: float,
        reason: str,
        element: Optional[str],
        cert_version: Optional[int],
        suite: Optional[HashSuite],
        writer: Optional[str] = None,
    ) -> "RevocationStatement":
        if serial < 1:
            raise CertificateError(f"serial must be positive, got {serial}")
        if not oid.matches_key(owner_keys.public):
            raise AuthenticityError(
                "refusing to issue a revocation the OID cannot self-certify: "
                "signing key does not hash to the stated OID"
            )
        body = {
            "oid": oid.to_dict(),
            "scope": scope,
            "serial": int(serial),
            "issued_at": float(issued_at),
            "reason": reason,
            "issuer_key_der": owner_keys.public.der,
            "element": element,
            "cert_version": cert_version,
            "writer": writer,
        }
        # No not_after: a revocation never expires.
        certificate = Certificate.issue(
            owner_keys,
            REVOCATION_CERT_TYPE,
            body,
            not_before=issued_at,
            suite=suite if suite is not None else SHA1,
        )
        return cls(certificate)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def oid(self) -> ObjectId:
        return ObjectId.from_dict(self.certificate.body["oid"])

    @property
    def oid_hex(self) -> str:
        return self.oid.hex

    @property
    def scope(self) -> str:
        return str(self.certificate.body["scope"])

    @property
    def serial(self) -> int:
        return int(self.certificate.body["serial"])

    @property
    def issued_at(self) -> float:
        return float(self.certificate.body["issued_at"])

    @property
    def reason(self) -> str:
        return str(self.certificate.body["reason"])

    @property
    def issuer_key(self) -> PublicKey:
        return PublicKey(der=bytes(self.certificate.body["issuer_key_der"]))

    @property
    def element(self) -> Optional[str]:
        value = self.certificate.body.get("element")
        return None if value is None else str(value)

    @property
    def cert_version(self) -> Optional[int]:
        value = self.certificate.body.get("cert_version")
        return None if value is None else int(value)

    @property
    def writer(self) -> Optional[str]:
        """The condemned writer id (``writer`` scope only).

        ``.get``: statements minted before the multi-writer subsystem
        have no ``writer`` body key at all, and must keep verifying.
        """
        value = self.certificate.body.get("writer")
        return None if value is None else str(value)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self, clock=None, cache=None) -> "RevocationStatement":
        """Validate the statement in isolation; returns self.

        Checks, in order: the embedded issuer key self-certifies against
        the stated OID (hash(key) == OID, under the OID's own suite), the
        certificate signature verifies under that key, and the scope
        fields are structurally sound. Raises
        :class:`~repro.errors.AuthenticityError` /
        :class:`~repro.errors.CertificateError` on failure — an invalid
        statement is an attack on the feed, not a revocation.
        """
        oid = self.oid
        issuer_key = self.issuer_key
        if not oid.matches_key(issuer_key):
            raise AuthenticityError(
                f"revocation statement for {oid.hex[:12]}… embeds a key "
                "that does not hash to that OID"
            )
        # Signature check only — never the validity window: a revocation
        # must stay effective forever, so `not_before` is informational
        # and there is no `not_after` to enforce.
        self.certificate.verify(
            issuer_key, clock=None, expected_type=REVOCATION_CERT_TYPE, cache=cache
        )
        scope = self.scope
        if scope not in (SCOPE_KEY, SCOPE_ELEMENT, SCOPE_WRITER):
            raise CertificateError(f"unknown revocation scope {scope!r}")
        if scope == SCOPE_ELEMENT and (self.element is None or self.cert_version is None):
            raise CertificateError(
                "element revocation must name an element and a cert version"
            )
        if scope == SCOPE_WRITER and not self.writer:
            raise CertificateError("writer revocation must name a writer id")
        if self.serial < 1:
            raise CertificateError(f"revocation serial must be positive: {self.serial}")
        return self

    def covers(self, element: Optional[str], cert_version: Optional[int]) -> bool:
        """Does this statement condemn (*element*, *cert_version*)?

        Key-scope statements cover everything under the OID. An
        element-scope statement covers its element for every certificate
        version up to and including the statement's ``cert_version``
        (an unknown version — e.g. from a content-cache hit that kept no
        certificate — is treated as covered: fail closed).
        """
        if self.scope == SCOPE_KEY:
            return True
        if self.scope == SCOPE_WRITER:
            # Writer revocations condemn delta-signing authority, never
            # the owner-signed document content this method guards.
            return False
        if element is None or element != self.element:
            return False
        if cert_version is None:
            return True
        assert self.cert_version is not None
        return cert_version <= self.cert_version

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return self.certificate.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RevocationStatement":
        return cls(Certificate.from_dict(data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = self.oid_hex[:12]
        if self.scope == SCOPE_ELEMENT:
            target += f"/{self.element}@v{self.cert_version}"
        elif self.scope == SCOPE_WRITER:
            target += f"/writer:{self.writer}"
        return f"RevocationStatement({self.scope}, {target}…, serial={self.serial})"
