"""Client-side revocation checking.

The :class:`RevocationChecker` is the proxy's view of the revocation
feed: it pulls deltas from an object server's ``revocation.fetch`` RPC,
verifies every statement itself (the feed is untrusted), and answers the
seventh security check — *is anything about this OID revoked?*

Staleness policy (fail closed)
------------------------------
The checker keeps the time of its last successful sync. A check first
ensures the local view is no older than ``poll_interval`` (refreshing
over RPC when it is); if the refresh fails **and** the view is older
than ``max_staleness`` — or the checker has never synced at all — the
check raises :class:`~repro.errors.RevocationStalenessError` for the
affected OID instead of serving content it cannot prove unrevoked. A
feed that merely *withholds* statements is thus bounded to a
``max_staleness``-sized containment delay; a feed that is unreachable
degrades to denial of service, never to serving revoked content.

Cache purges
------------
On first sight of a revocation the checker purges the matching
:class:`~repro.crypto.verifycache.VerificationCache` verdicts (every
memoized success under the revoked issuer key) and
:class:`~repro.proxy.contentcache.ContentCache` entries (the whole
object for key scope, the named element for element scope) — a warm
cache must forget a compromised key at the same instant the check
starts rejecting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    FeedRegressionError,
    NetworkError,
    RecoveryIntegrityError,
    RevocationStalenessError,
    RevokedElementError,
    RevokedKeyError,
)
from repro.globedoc.oid import ObjectId
from repro.obs import NOOP_METRICS, NOOP_TRACER
from repro.revocation.feed import RevocationFeed
from repro.revocation.statement import SCOPE_KEY, SCOPE_WRITER, RevocationStatement

__all__ = ["RevocationChecker", "RevocationCheckerStats"]


@dataclass
class RevocationCheckerStats:
    """Running counters of one checker (feed-overhead accounting)."""

    refreshes: int = 0
    refresh_failures: int = 0
    statements_ingested: int = 0
    statements_recovered: int = 0
    invalid_dropped: int = 0
    verify_purged: int = 0
    content_purged: int = 0
    rejections: int = 0
    head_regressions: int = 0


class RevocationChecker:
    """Pulls, verifies, and indexes revocation statements for a client.

    ``poll_interval`` (default: half the staleness window) sets how long
    a synced view is reused before the next refresh RPC — the knob that
    trades containment latency against steady-state feed overhead.
    """

    def __init__(
        self,
        rpc,
        feed_target,
        clock,
        max_staleness: float = 60.0,
        poll_interval: Optional[float] = None,
        verification_cache=None,
        content_cache=None,
        metrics=None,
        metrics_client: str = "",
        store=None,
        tracer=None,
    ) -> None:
        if max_staleness <= 0:
            raise ValueError(f"max_staleness must be positive, got {max_staleness}")
        self.rpc = rpc
        self.feed_target = feed_target
        self.clock = clock
        #: Optional: wraps each feed pull in a ``revocation.refresh``
        #: span (a root when the poll fires outside any access).
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.max_staleness = max_staleness
        self.poll_interval = (
            poll_interval if poll_interval is not None else max_staleness / 2.0
        )
        self.verification_cache = verification_cache
        self.content_cache = content_cache
        self.stats = RevocationCheckerStats()
        self._head = 0
        self._synced_at: Optional[float] = None
        self._by_oid: Dict[str, List[RevocationStatement]] = {}
        #: Durable cursor: the consumer's synced head plus its verified
        #: statement view. Persisting the head alone would be a trap —
        #: a cursor past statements the local view does not hold would
        #: skip them forever — so head and statements travel together.
        self.store = store
        if store is not None:
            self._recover()
        #: Monitor instruments. The staleness gauge is the input to the
        #: fail-closed-imminent alert rule; -1 marks "never synced" (a
        #: state the check itself already fails closed on). The head
        #: serial, against ``revocation_feed_head``, yields serial lag.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.metrics_client = metrics_client
        self._m_refreshes = self.metrics.counter(
            "revocation_refreshes_total", "Successful feed delta pulls."
        )
        self._m_refresh_failures = self.metrics.counter(
            "revocation_refresh_failures_total",
            "Feed pulls that failed with a network error.",
        )
        self._m_rejections = self.metrics.counter(
            "revocation_rejections_total",
            "Accesses rejected because a key or element was revoked.",
        )
        self._m_ingested = self.metrics.counter(
            "revocation_statements_ingested_total",
            "Verified revocation statements accepted into the local view.",
        )
        self._m_head_regressions = self.metrics.counter(
            "revocation_head_regressions_total",
            "Feed pulls rejected because the head moved backwards.",
        )
        self._m_staleness = self.metrics.gauge(
            "revocation_view_staleness_seconds",
            "Age of the client's last good feed sync (-1: never synced).",
            labelnames=("client",),
        )
        self._m_head = self.metrics.gauge(
            "revocation_head_serial",
            "Highest feed serial this client has synced through.",
            labelnames=("client",),
        )
        self.metrics.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Durable cursor recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the synced view from the cursor store, re-verifying.

        Statements read back from disk are untrusted until their
        signatures check (identical to fetched statements); a record
        that no longer verifies fails recovery closed — it means the
        cursor store was tampered with, and trusting the head it came
        with would silently skip genuine revocations.
        """
        recovered = self.store.recover()
        head = 0
        dicts = []
        if recovered.snapshot is not None:
            head = int(recovered.snapshot.get("head", 0))
            dicts.extend(recovered.snapshot.get("statements", []))
        for record in recovered.records:
            op = record.get("op")
            if op == "ingest":
                dicts.append(record["statement"])
            elif op == "head":
                head = max(head, int(record["head"]))
        for data in dicts:
            try:
                statement = RevocationStatement.from_dict(data)
                statement.verify(clock=self.clock)
            except Exception as exc:
                raise RecoveryIntegrityError(
                    "revocation cursor store holds a statement that no "
                    f"longer verifies — failing recovery closed: {exc}"
                ) from exc
            known = self._by_oid.setdefault(statement.oid_hex, [])
            if any(s.serial == statement.serial for s in known):
                continue
            known.append(statement)
            self.stats.statements_recovered += 1
            self._purge_caches(statement)
        self._head = head
        # _synced_at stays None: a recovered view proves what *was*
        # revoked, never that nothing new is — the first check still
        # refreshes (or fails closed on staleness) before vouching.

    def _journal(self, record: dict) -> None:
        if self.store is None:
            return
        self.store.append(record)
        self.store.maybe_compact(
            lambda: {
                "head": self._head,
                "statements": [
                    s.to_dict()
                    for statements in self._by_oid.values()
                    for s in statements
                ],
            }
        )

    # ------------------------------------------------------------------
    # Feed synchronisation
    # ------------------------------------------------------------------

    @property
    def head(self) -> int:
        """Highest feed serial this checker has synced through."""
        return self._head

    @property
    def staleness(self) -> Optional[float]:
        """Seconds since the last successful sync (None: never synced)."""
        if self._synced_at is None:
            return None
        return max(0.0, self.clock.now() - self._synced_at)

    def refresh(self) -> int:
        """Pull the delta since our head; returns statements ingested.

        Propagates :class:`~repro.errors.NetworkError` — callers decide
        whether the stale view is still within the staleness window.

        Raises :class:`~repro.errors.FeedRegressionError` — immediately,
        regardless of the staleness window — when the feed's head is
        *behind* this consumer's synced cursor: a feed that restarted
        empty (losing its log) or a malicious rollback. Either way the
        feed can no longer vouch for the statements this consumer has
        already seen, so the consumer must not treat its answers as a
        successful sync.
        """
        with self.tracer.span("revocation.refresh", since=self._head) as span:
            answer = self.rpc.call(
                self.feed_target, "revocation.fetch", since=self._head
            )
            head, statements = RevocationFeed.decode_delta(answer)
            if head < self._head:
                self.stats.head_regressions += 1
                self._m_head_regressions.inc()
                raise FeedRegressionError(
                    f"revocation feed head regressed from {self._head} to {head}: "
                    "the feed lost statements (restart without its log, or a "
                    "rollback attack) — failing closed"
                )
            self.stats.refreshes += 1
            self._m_refreshes.inc()
            ingested = 0
            for statement in statements:
                if self._ingest(statement):
                    ingested += 1
            # Advance past invalid entries too: they are the feed's
            # garbage, not ours, and re-fetching them forever helps
            # nobody.
            if head > self._head:
                self._head = head
                self._journal({"op": "head", "head": head})
            self._synced_at = self.clock.now()
            span.set_attribute("ingested", ingested)
            span.set_attribute("head", head)
            return ingested

    def _ingest(self, statement: RevocationStatement) -> bool:
        try:
            statement.verify(clock=self.clock)
        except Exception:
            # A forged or corrupted statement must not revoke anything —
            # and must not crash the sync that carries genuine ones.
            self.stats.invalid_dropped += 1
            return False
        known = self._by_oid.setdefault(statement.oid_hex, [])
        if any(s.serial == statement.serial for s in known):
            return False
        known.append(statement)
        self.stats.statements_ingested += 1
        self._m_ingested.inc()
        self._journal({"op": "ingest", "statement": statement.to_dict()})
        self._purge_caches(statement)
        return True

    def _purge_caches(self, statement: RevocationStatement) -> None:
        """First-sight purge: forget every cached artifact the statement
        condemns before the next lookup can replay it."""
        if self.verification_cache is not None:
            self.stats.verify_purged += self.verification_cache.invalidate_key(
                statement.issuer_key
            )
        if self.content_cache is not None:
            if statement.scope in (SCOPE_KEY, SCOPE_WRITER):
                # Writer scope also purges the whole object: a revoked
                # writer's deltas may be merged into any cached element.
                self.stats.content_purged += self.content_cache.invalidate_object(
                    statement.oid_hex
                )
            elif statement.element is not None:
                self.stats.content_purged += self.content_cache.invalidate_element(
                    statement.oid_hex, statement.element
                )

    def _ensure_fresh(self, oid: ObjectId) -> None:
        staleness = self.staleness
        if staleness is not None and staleness <= self.poll_interval:
            return
        try:
            self.refresh()
        except NetworkError as exc:
            self.stats.refresh_failures += 1
            self._m_refresh_failures.inc()
            staleness = self.staleness
            if staleness is None or staleness > self.max_staleness:
                raise RevocationStalenessError(
                    f"cannot prove OID {oid.hex[:12]}… unrevoked: revocation "
                    f"feed unreachable and local view is "
                    f"{'absent' if staleness is None else f'{staleness:.1f}s stale'} "
                    f"(max staleness {self.max_staleness:.1f}s)"
                ) from exc
            # Stale but within the window: serve on the last good view.

    # ------------------------------------------------------------------
    # The check itself
    # ------------------------------------------------------------------

    def check(
        self,
        oid: ObjectId,
        element_name: Optional[str] = None,
        cert_version: Optional[int] = None,
    ) -> None:
        """Raise iff the OID (or the named element) is revoked — or the
        feed view is too stale to say otherwise.

        Known revocations are consulted *before* the freshness gate: a
        statement already verified condemns its target no matter how
        stale the view is (rejection needs no proof of currency — only
        vouching does). This is what makes a restart window-free: a
        checker recovered from its durable cursor rejects a revoked OID
        immediately, before it has managed to reach the feed at all.
        """
        self._reject_if_known_revoked(oid, element_name, cert_version)
        self._ensure_fresh(oid)
        # The view may have grown during the refresh: re-check it.
        self._reject_if_known_revoked(oid, element_name, cert_version)

    def _reject_if_known_revoked(
        self,
        oid: ObjectId,
        element_name: Optional[str],
        cert_version: Optional[int],
    ) -> None:
        for statement in self._by_oid.get(oid.hex, ()):  # newest need not win: any hit rejects
            if statement.scope == SCOPE_KEY:
                self.stats.rejections += 1
                self._m_rejections.inc()
                raise RevokedKeyError(
                    f"object key for OID {oid.hex[:12]}… was revoked at "
                    f"{statement.issued_at} (serial {statement.serial}: "
                    f"{statement.reason})"
                )
            if element_name is not None and statement.covers(element_name, cert_version):
                self.stats.rejections += 1
                self._m_rejections.inc()
                raise RevokedElementError(
                    f"element {element_name!r} of OID {oid.hex[:12]}… was "
                    f"revoked at {statement.issued_at} through certificate "
                    f"version {statement.cert_version} (serial "
                    f"{statement.serial}: {statement.reason})"
                )

    def known_statements(self, oid: ObjectId) -> List[RevocationStatement]:
        return list(self._by_oid.get(oid.hex, ()))

    def revoked_writers(self, oid: ObjectId) -> set:
        """Writer ids condemned for *oid* in the current verified view.

        Pure lookup — freshness is the caller's concern: the frontier
        check runs :meth:`check` (which enforces the staleness window)
        before consulting this set, so a stale view can never vouch.
        """
        return {
            statement.writer
            for statement in self._by_oid.get(oid.hex, ())
            if statement.scope == SCOPE_WRITER and statement.writer
        }

    # ------------------------------------------------------------------
    # Monitor-plane collector
    # ------------------------------------------------------------------

    def _collect_metrics(self) -> None:
        staleness = self.staleness
        self._m_staleness.labels(client=self.metrics_client).set(
            -1.0 if staleness is None else staleness
        )
        self._m_head.labels(client=self.metrics_client).set(float(self._head))
