"""Owner tooling for emergency re-keying.

When an object key is compromised, expiry-based containment (§3.2) is
too slow and revocation alone leaves the object dead: the OID *is* the
hash of the compromised key. Recovery therefore has three signed
artifacts, produced together by :func:`emergency_rekey`:

1. a **successor object** — fresh key pair, hence fresh OID, carrying
   the same name and elements, re-certified from scratch under the new
   key (a brand-new integrity certificate; nothing signed by the old
   key is reused);
2. a **key-scope revocation statement** for the old OID, signed with the
   old key (the last legitimate use of it), published through the
   revocation feed;
3. a **forwarding record** ``old OID → new OID``, also signed with the
   old key, published through the naming service so absolute hybrid
   URLs minted before the compromise keep resolving.

Identity certificates are deliberately *not* carried over: they bind the
object name to the compromised key, so the owner must request fresh
proofs from the CA for the successor key.

Deployment (replica placement, naming re-bind, feed publication) is the
caller's business — this module only mints the artifacts, so it needs no
network and can run from an offline owner workstation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import KeyPair
from repro.errors import ReproError
from repro.globedoc.oid import ObjectId
from repro.globedoc.owner import DEFAULT_VALIDITY, DocumentOwner, SignedDocument
from repro.naming.forwarding import ForwardingRecord
from repro.revocation.statement import RevocationStatement

__all__ = ["RekeyResult", "emergency_rekey"]


@dataclass(frozen=True)
class RekeyResult:
    """Everything an emergency re-key produces, ready to deploy."""

    old_oid: ObjectId
    successor: DocumentOwner
    document: SignedDocument
    revocation: RevocationStatement
    forwarding: ForwardingRecord

    @property
    def new_oid(self) -> ObjectId:
        return self.successor.oid


def emergency_rekey(
    owner: DocumentOwner,
    serial: int,
    reason: str = "key compromise",
    validity: float = DEFAULT_VALIDITY,
    new_keys: Optional[KeyPair] = None,
) -> RekeyResult:
    """Re-key *owner*'s object; returns the successor plus the signed
    revocation and forwarding artifacts.

    *serial* is the revocation serial for the old OID (monotone per OID;
    the owner's bookkeeping, enforced again by the feed). *new_keys*
    lets tests pass fast keys; production callers omit it for a fresh
    full-strength pair.
    """
    if not owner.element_names():
        raise ReproError("cannot re-key an object with no elements")
    successor = DocumentOwner(
        owner.name,
        keys=new_keys if new_keys is not None else KeyPair.generate(),
        suite=owner.suite,
        clock=owner.clock,
    )
    if successor.oid.hex == owner.oid.hex:
        raise ReproError("re-key produced the same key pair; refusing")
    successor.put_elements(owner.staged_elements())
    document = successor.publish(validity=validity)

    now = owner.clock.now()
    revocation = RevocationStatement.revoke_key(
        owner.keys, owner.oid, serial=serial, issued_at=now, reason=reason,
        suite=owner.suite,
    )
    forwarding = ForwardingRecord.issue(
        owner.keys, owner.oid, successor.oid, issued_at=now, suite=owner.suite
    )
    return RekeyResult(
        old_oid=owner.oid,
        successor=successor,
        document=document,
        revocation=revocation,
        forwarding=forwarding,
    )
