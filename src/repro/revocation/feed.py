"""The replicated revocation feed.

A feed is an append-only, per-OID-serial-monotone log of verified
revocation statements. Object servers each host one (exposed over the
``revocation.fetch`` / ``revocation.publish`` RPCs); the replication
coordinator pushes new statements to every site it manages, and client
proxies pull deltas on their staleness schedule.

The feed is *untrusted infrastructure*, like every other GlobeDoc
service: it verifies statements on publish only to keep garbage out of
its own log, but consumers re-verify every statement themselves — a
malicious feed can suppress revocations (a staleness/denial attack the
client's max-staleness window bounds) but can never forge one.

Durability
----------
With a :class:`~repro.storage.store.DurableStore` attached, every
accepted statement is journaled before ``publish`` returns and the
whole log recovers across restarts. This is security-critical, not a
convenience: a feed that restarts *empty* silently re-opens the
fail-open window revocation exists to close (consumers see ``head`` at
zero and fetch nothing). Recovered statements are re-verified through
the full publish discipline — signature, self-certification, serial
monotonicity, payload identity — and recovery fails closed
(:class:`~repro.errors.RecoveryIntegrityError`) on any record that no
longer proves out: a CRC-valid but unverifiable statement means the
store was tampered with at rest.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import RecoveryIntegrityError, ReproError
from repro.revocation.statement import RevocationStatement
from repro.util.encoding import canonical_bytes

__all__ = ["RevocationFeed"]


class RevocationFeed:
    """An ordered log of revocation statements with delta fetch.

    ``head`` is the log length; ``fetch(since=head)`` returns only
    statements appended after a consumer's last sync. Publishing is
    idempotent on (OID, serial) *with identical payload* and rejects
    non-monotone serials per OID, so replayed or reordered pushes cannot
    corrupt the log — and a re-publish that reuses an existing (OID,
    serial) with *different* content is rejected as a poisoning attempt,
    never absorbed as a benign duplicate.
    """

    def __init__(self, clock=None, store=None) -> None:
        self.clock = clock
        self.store = store
        self._log: List[RevocationStatement] = []
        self._by_key: Dict[Tuple[str, int], RevocationStatement] = {}
        self._max_serial: Dict[str, int] = {}
        self.rejected = 0
        #: Statements reloaded (and re-verified) from the durable store.
        self.recovered = 0
        if store is not None:
            self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Replay the persisted log through the full publish discipline."""
        recovered = self.store.recover()
        dicts: List[Mapping] = []
        if recovered.snapshot is not None:
            dicts.extend(recovered.snapshot.get("statements", []))
        for record in recovered.records:
            if record.get("op") == "publish":
                dicts.append(record["statement"])
        for data in dicts:
            try:
                statement = RevocationStatement.from_dict(data)
                self._publish_in_memory(statement)
            except ReproError as exc:
                raise RecoveryIntegrityError(
                    f"revocation feed store holds a statement that no longer "
                    f"verifies — refusing to recover a poisoned log: {exc}"
                ) from exc
            self.recovered += 1

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def _publish_in_memory(self, statement: RevocationStatement) -> bool:
        """The verification + append path, shared by publish and recovery.

        Raises on an invalid statement (bad signature, key/OID mismatch),
        a non-monotone serial, or a payload-mismatched re-publish; False
        for an exact duplicate.
        """
        statement.verify(clock=self.clock)
        key = (statement.oid_hex, statement.serial)
        existing = self._by_key.get(key)
        if existing is not None:
            # Idempotence covers *identical* statements only. A different
            # payload under a published (OID, serial) is an attempt to
            # shadow the genuine statement (and would corrupt WAL replay,
            # which relies on publish being deterministic).
            if canonical_bytes(existing.to_dict()) != canonical_bytes(
                statement.to_dict()
            ):
                self.rejected += 1
                raise ReproError(
                    f"conflicting re-publish for {statement.oid_hex[:12]}… "
                    f"serial {statement.serial}: payload differs from the "
                    "statement already in the log (poisoning attempt)"
                )
            return False
        last = self._max_serial.get(statement.oid_hex, 0)
        if statement.serial <= last:
            self.rejected += 1
            raise ReproError(
                f"revocation serial {statement.serial} is not monotone for "
                f"{statement.oid_hex[:12]}… (last published: {last})"
            )
        self._log.append(statement)
        self._by_key[key] = statement
        self._max_serial[statement.oid_hex] = statement.serial
        return True

    def publish(self, statement: RevocationStatement) -> bool:
        """Append a verified statement; False if already present.

        Raises on an invalid statement (bad signature, key/OID mismatch),
        a serial at or below an already-published serial for the same
        OID, or a payload-mismatched re-use of a published (OID, serial)
        — all are feed-poisoning attempts, not revocations. With a
        durable store attached, the statement is journaled before this
        returns.
        """
        added = self._publish_in_memory(statement)
        if added and self.store is not None:
            self.store.append({"op": "publish", "statement": statement.to_dict()})
            self.store.maybe_compact(self._snapshot_state)
        return added

    def _snapshot_state(self) -> dict:
        return {"statements": [s.to_dict() for s in self._log]}

    def compact(self) -> None:
        """Checkpoint the full log into a snapshot (explicit compaction)."""
        if self.store is not None:
            self.store.compact(self._snapshot_state())

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    @property
    def head(self) -> int:
        return len(self._log)

    def max_serial(self, oid_hex: str) -> int:
        """Highest published serial for *oid_hex* (0 if none)."""
        return self._max_serial.get(oid_hex, 0)

    def fetch(self, since: int = 0) -> dict:
        """Wire-format delta: statements appended after position *since*."""
        since = max(0, int(since))
        return {
            "head": self.head,
            "statements": [s.to_dict() for s in self._log[since:]],
        }

    def statements(self) -> List[RevocationStatement]:
        return list(self._log)

    def statements_for(self, oid_hex: str) -> List[RevocationStatement]:
        return [s for s in self._log if s.oid_hex == oid_hex]

    def __len__(self) -> int:
        return len(self._log)

    @staticmethod
    def decode_delta(answer: Mapping) -> Tuple[int, List[RevocationStatement]]:
        """Parse a ``revocation.fetch`` response (no verification —
        callers must verify each statement before acting on it)."""
        head = int(answer["head"])
        statements = [
            RevocationStatement.from_dict(d) for d in answer.get("statements", [])
        ]
        return head, statements
