"""The replicated revocation feed.

A feed is an append-only, per-OID-serial-monotone log of verified
revocation statements. Object servers each host one (exposed over the
``revocation.fetch`` / ``revocation.publish`` RPCs); the replication
coordinator pushes new statements to every site it manages, and client
proxies pull deltas on their staleness schedule.

The feed is *untrusted infrastructure*, like every other GlobeDoc
service: it verifies statements on publish only to keep garbage out of
its own log, but consumers re-verify every statement themselves — a
malicious feed can suppress revocations (a staleness/denial attack the
client's max-staleness window bounds) but can never forge one.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ReproError
from repro.revocation.statement import RevocationStatement

__all__ = ["RevocationFeed"]


class RevocationFeed:
    """An ordered log of revocation statements with delta fetch.

    ``head`` is the log length; ``fetch(since=head)`` returns only
    statements appended after a consumer's last sync. Publishing is
    idempotent on (OID, serial) and rejects non-monotone serials per
    OID, so replayed or reordered pushes cannot corrupt the log.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock
        self._log: List[RevocationStatement] = []
        self._seen: Set[Tuple[str, int]] = set()
        self._max_serial: Dict[str, int] = {}
        self.rejected = 0

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(self, statement: RevocationStatement) -> bool:
        """Append a verified statement; False if already present.

        Raises on an invalid statement (bad signature, key/OID mismatch)
        or a serial at or below an already-published serial for the same
        OID — both are feed-poisoning attempts, not revocations.
        """
        statement.verify(clock=self.clock)
        key = (statement.oid_hex, statement.serial)
        if key in self._seen:
            return False
        last = self._max_serial.get(statement.oid_hex, 0)
        if statement.serial <= last:
            self.rejected += 1
            raise ReproError(
                f"revocation serial {statement.serial} is not monotone for "
                f"{statement.oid_hex[:12]}… (last published: {last})"
            )
        self._log.append(statement)
        self._seen.add(key)
        self._max_serial[statement.oid_hex] = statement.serial
        return True

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    @property
    def head(self) -> int:
        return len(self._log)

    def fetch(self, since: int = 0) -> dict:
        """Wire-format delta: statements appended after position *since*."""
        since = max(0, int(since))
        return {
            "head": self.head,
            "statements": [s.to_dict() for s in self._log[since:]],
        }

    def statements(self) -> List[RevocationStatement]:
        return list(self._log)

    def statements_for(self, oid_hex: str) -> List[RevocationStatement]:
        return [s for s in self._log if s.oid_hex == oid_hex]

    def __len__(self) -> int:
        return len(self._log)

    @staticmethod
    def decode_delta(answer: Mapping) -> Tuple[int, List[RevocationStatement]]:
        """Parse a ``revocation.fetch`` response (no verification —
        callers must verify each statement before acting on it)."""
        head = int(answer["head"])
        statements = [
            RevocationStatement.from_dict(d) for d in answer.get("statements", [])
        ]
        return head, statements
