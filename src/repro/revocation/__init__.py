"""Revocation & key lifecycle: the compromise-to-containment loop.

The paper bounds key-compromise damage by certificate expiry (§3.2);
this subsystem closes the loop actively:

* :mod:`repro.revocation.statement` — signed, self-certifying
  :class:`RevocationStatement`s (whole-key or per-element scope);
* :mod:`repro.revocation.feed` — the replicated, serial-monotone
  :class:`RevocationFeed` object servers host and the replication
  coordinator distributes;
* :mod:`repro.revocation.checker` — the proxy-side
  :class:`RevocationChecker` behind the seventh security check
  (``check.revocation``), with a fail-closed max-staleness window and
  first-sight cache purges;
* :mod:`repro.revocation.rekey` — owner tooling for emergency
  re-keying (successor object + revocation + naming forwarding record).

See DESIGN.md §4e and ``python -m repro.harness revocation`` for the
containment-latency / feed-overhead measurements.
"""

from repro.revocation.checker import RevocationChecker, RevocationCheckerStats
from repro.revocation.feed import RevocationFeed
from repro.revocation.rekey import RekeyResult, emergency_rekey
from repro.revocation.statement import (
    REVOCATION_CERT_TYPE,
    SCOPE_ELEMENT,
    SCOPE_KEY,
    RevocationStatement,
)

__all__ = [
    "RevocationStatement",
    "REVOCATION_CERT_TYPE",
    "SCOPE_KEY",
    "SCOPE_ELEMENT",
    "RevocationFeed",
    "RevocationChecker",
    "RevocationCheckerStats",
    "RekeyResult",
    "emergency_rekey",
]
