"""Process-wide labeled metrics: the standing view of system health.

The spans of :mod:`repro.obs.span` decompose *one* access; the
per-response dataclasses (:class:`~repro.proxy.metrics.AccessMetrics`,
``FastPathStats``, ``ResilienceStats``) vanish with the response that
carried them. A :class:`MetricsRegistry` is the third leg of the
observability stack: continuously aggregated, queryable counters,
gauges, and fixed-bucket histograms that every layer of the stack
reports into, scraped on a fixed cadence by the monitor harness and fed
to the SLO rule engine (:mod:`repro.obs.alerts`).

Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotone accumulation (``inc``);
* :class:`Gauge` — a settable level (``set``/``inc``/``dec``);
* :class:`Histogram` — fixed upper-bound buckets plus exact sum/count
  (``observe``), so latency distributions survive aggregation.

Instruments are *labeled*: ``registry.counter(name, labelnames=("op",))``
returns a parent whose ``labels(op="globedoc.get")`` hands out a cached
child series — the hot path after the first call is one dict lookup.

Exposition is deterministic by construction: metric names, label names,
and label values are all emitted in sorted order, so two scrapes of an
idle registry are byte-identical — in both the Prometheus text format
(:meth:`MetricsRegistry.to_prometheus_text`) and the canonical JSON
snapshot (:meth:`MetricsRegistry.to_json`, built on the S1
:func:`~repro.util.encoding.canonical_json` helpers).

Derived values (cache hit ratios, circuit-breaker states, feed
staleness) are refreshed by *collectors*: callbacks registered with
:meth:`MetricsRegistry.register_collector` and run by
:meth:`MetricsRegistry.collect` just before a scrape, so pull-style
gauges stay current without per-operation bookkeeping.

Disabled cost: every instrumented component defaults to
:data:`NOOP_METRICS`, whose instruments are one shared allocation-free
object (``labels()`` returns itself, ``inc``/``set``/``observe`` are
no-ops) — mirroring :data:`~repro.obs.span.NOOP_TRACER`. Code that
must read a clock to observe a latency guards on
``metrics.enabled`` (a plain attribute) so the disabled path performs
no clock reads.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sim.clock import Clock, RealClock
from repro.util.encoding import canonical_json

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopInstrument",
    "NoopMetricsRegistry",
    "NOOP_METRICS",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram upper bounds (seconds), tuned for the simulated
#: WAN's access latencies: sub-millisecond cache hits up to multi-second
#: retry storms. ``+Inf`` is always implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0`` (the
    common counter case), floats via ``repr`` (round-trip exact)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_key(labelnames: Tuple[str, ...], kv: Mapping[str, Any]) -> Tuple[str, ...]:
    if set(kv) != set(labelnames):
        raise ValueError(
            f"labels {sorted(kv)} do not match declared labelnames "
            f"{sorted(labelnames)}"
        )
    return tuple(str(kv[name]) for name in labelnames)


class _Instrument:
    """Common parent: name, help text, label declaration, child cache.

    An unlabeled instrument is its own single series; a labeled one
    hands out child series through :meth:`labels`.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **kv: Any):
        """The child series for this label combination (cached)."""
        if not self.labelnames:
            if kv:
                raise ValueError(f"metric {self.name!r} declares no labels")
            return self._children[()]
        key = _label_key(self.labelnames, kv)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def series(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Every (label-values, child) pair, sorted by label values."""
        return sorted(self._children.items(), key=lambda item: item[0])

    def _default(self):
        """The single child of an unlabeled instrument."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled; call .labels(...) first"
            )
        return self._children[()]


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class Counter(_Instrument):
    """A monotonically increasing count (events, bytes, rejections)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def total(self) -> float:
        """Sum over every labeled series."""
        return sum(child.value for child in self._children.values())


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Instrument):
    """A level that can go up and down (states, lags, ratios)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def total(self) -> float:
        return sum(child.value for child in self._children.values())

    def max(self) -> float:
        """Largest value over every series (0.0 when none exist)."""
        return max((c.value for c in self._children.values()), default=0.0)


class _HistogramChild:
    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper-bound, cumulative-count) pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class Histogram(_Instrument):
    """Fixed-bucket distribution with exact sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        super().__init__(name, help=help, labelnames=labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def sum(self) -> float:
        return self._default().sum

    @property
    def count(self) -> int:
        return self._default().count

    def total_sum(self) -> float:
        """Summed ``sum`` over every labeled series."""
        return sum(child.sum for child in self._children.values())

    def total_count(self) -> int:
        return sum(child.count for child in self._children.values())


_KIND_OF = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """The process-wide instrument registry.

    One registry per monitored deployment (a testbed run, a harness
    target); components receive it at construction and create their
    instruments through the typed factories below. Re-requesting an
    existing name returns the same instrument — provided the kind and
    labelnames agree — so shared instruments (every client stack's
    ``proxy_accesses_total``) aggregate naturally.

    ``clock`` is the time source components use for latency
    observations; inject the experiment's
    :class:`~repro.sim.clock.SimClock` so measured durations are
    simulated seconds.
    """

    #: Real registries report True; the NOOP registry False. Instrument
    #: code uses this single attribute to skip clock reads when disabled.
    enabled = True

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else RealClock()
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        instrument = cls(name, help=help, labelnames=labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, tuple(labelnames), buckets=buckets
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    @property
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # ------------------------------------------------------------------
    # Collectors (pull-style gauges)
    # ------------------------------------------------------------------

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run by :meth:`collect` before every
        scrape; collectors refresh derived gauges (hit ratios, circuit
        states, staleness) from component state."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """The full registry as a deterministic JSON-ready mapping.

        Callers wanting fresh derived gauges run :meth:`collect` first;
        the snapshot itself never mutates anything (so two snapshots of
        an idle registry are identical).
        """
        out: Dict[str, dict] = {}
        for name in self.names:
            instrument = self._instruments[name]
            series = []
            for label_values, child in instrument.series():
                labels = dict(zip(instrument.labelnames, label_values))
                if instrument.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": [
                                {
                                    "le": ("+Inf" if bound == float("inf") else bound),
                                    "count": cumulative,
                                }
                                for bound, cumulative in child.cumulative_buckets()
                            ],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "series": series,
            }
        return out

    def to_json(self) -> str:
        """Canonical JSON snapshot (S1 encoding: sorted keys, fixed
        separators) — byte-identical across scrapes of an idle registry."""
        return canonical_json(self.snapshot())

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format, deterministically
        ordered: metrics sorted by name, series by label values."""
        lines: List[str] = []
        for name in self.names:
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for label_values, child in instrument.series():
                labels = dict(zip(instrument.labelnames, label_values))
                if instrument.kind == "histogram":
                    for bound, cumulative in child.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        lines.append(
                            f"{name}_bucket{self._label_text(labels, le=le)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{self._label_text(labels)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{name}_count{self._label_text(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{name}{self._label_text(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_text(labels: Mapping[str, str], le: Optional[str] = None) -> str:
        items = sorted(labels.items())
        if le is not None:
            items.append(("le", le))
        if not items:
            return ""
        body = ",".join(
            f'{key}="{_escape_label_value(str(value))}"' for key, value in items
        )
        return "{" + body + "}"

    # ------------------------------------------------------------------
    # Aggregate accessors (the alert engine's read surface)
    # ------------------------------------------------------------------

    def total(self, name: str) -> float:
        """Counter/gauge value (histogram: sum) summed over all series
        of *name*; 0.0 for an unknown metric."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            return instrument.total_sum()
        return instrument.total()  # type: ignore[union-attr]

    def series_values(
        self, name: str, label_prefixes: Optional[Mapping[str, str]] = None
    ) -> List[float]:
        """Every series value of a counter/gauge (histogram: sums),
        optionally restricted to series whose label values start with
        the given prefixes (e.g. ``{"address": "globedoc/replica"}``)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return []
        out: List[float] = []
        for label_values, child in instrument.series():
            labels = dict(zip(instrument.labelnames, label_values))
            if label_prefixes and not all(
                str(labels.get(key, "")).startswith(prefix)
                for key, prefix in label_prefixes.items()
            ):
                continue
            out.append(
                child.sum if isinstance(instrument, Histogram) else child.value
            )
        return out


class NoopInstrument:
    """The do-nothing instrument every kind collapses to when disabled."""

    __slots__ = ()

    def labels(self, **kv: Any) -> "NoopInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NOOP_INSTRUMENT = NoopInstrument()


class NoopMetricsRegistry:
    """A registry whose instruments cost (almost) nothing.

    Mirrors :class:`~repro.obs.span.NoopTracer`: instrumented
    constructors default to :data:`NOOP_METRICS`, so with no registry
    installed the instrumentation adds one no-op method call per event —
    no allocation, no clock reads (latency code guards on ``enabled``).
    Collectors are silently dropped: there is nothing to scrape.
    """

    __slots__ = ()

    enabled = False
    clock: Clock = RealClock()

    def counter(self, name: str, help: str = "", labelnames=()) -> NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames=()) -> NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=None
    ) -> NoopInstrument:
        return _NOOP_INSTRUMENT

    def register_collector(self, collector: Callable[[], None]) -> None:
        pass

    def collect(self) -> None:
        pass


#: The shared disabled registry; ``metrics or NOOP_METRICS`` is the
#: idiom every instrumented constructor uses.
NOOP_METRICS = NoopMetricsRegistry()
