"""Spans and tracers: per-operation timing for the access pipeline.

The paper measured its Fig. 4 numbers by "placing timers in various
parts of the proxy and server code"; :class:`~repro.proxy.metrics.AccessTimer`
reproduces those aggregate phase timers. A :class:`Tracer` goes one
level deeper: it produces *nested* :class:`Span` records — one per
operation, with attributes, an ok/error status, and start/end times
charged to the injected :class:`~repro.sim.clock.Clock` — so a single
access can be decomposed into the exact tree of RPCs, security checks,
cache probes, retries, and failovers it executed. Under a ``SimClock``
span durations are exact simulated time; under a ``RealClock`` they are
wall time.

Spans are delivered to pluggable sinks (:mod:`repro.obs.sinks`) as they
close. Instrumented components default to the module-level
:data:`NOOP_TRACER`, whose ``span()`` returns a shared, allocation-free
context manager — tracing costs near zero unless a real tracer is
injected.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.sim.clock import Clock, RealClock

__all__ = ["Span", "Tracer", "NoopTracer", "NoopSpan", "NOOP_TRACER"]

#: Span statuses. Errors carry the raising exception's class name.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass
class Span:
    """One timed operation: name, attributes, status, and its parent."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    end: Optional[float] = None
    status: str = STATUS_OK
    error_type: str = ""

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while the span is open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_error(self) -> bool:
        return self.status == STATUS_ERROR

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def mark_error(self, exc: BaseException) -> None:
        """Record that *exc* was raised (or handled) inside this span."""
        self.status = STATUS_ERROR
        self.error_type = type(exc).__name__

    def to_dict(self) -> dict:
        """A JSON-serialisable rendering (attributes coerced to str when
        not natively representable)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration_s": self.duration,
            "status": self.status,
            "error_type": self.error_type,
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, {self.status}"
            f"{', ' + self.error_type if self.error_type else ''})"
        )


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    return str(value)


class _SpanContext:
    """Context manager for one live span; closes and emits on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.mark_error(exc)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Produces nested spans over an injected clock.

    Single-threaded by design (the simulation is single-threaded):
    nesting is tracked with an explicit stack, so a span opened while
    another is live becomes its child. Spans are pushed to every sink as
    they close — children before parents, which lets streaming sinks see
    leaf timings without buffering the whole tree.
    """

    def __init__(self, clock: Optional[Clock] = None, sinks: Iterable = ()) -> None:
        self.clock = clock if clock is not None else RealClock()
        self._sinks: List = list(sinks)
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------

    def span(self, name: str, /, **attributes: Any) -> _SpanContext:
        """Open a span; use as ``with tracer.span("rpc.call", op=op) as s``.

        The span name is positional-only so ``name=...`` stays available
        as an ordinary attribute. An exception escaping the ``with`` body
        marks the span as an error (recording the exception's class
        name) and re-raises.
        """
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self.clock.now(),
            attributes=dict(attributes),
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost live span, if any."""
        return self._stack[-1] if self._stack else None

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    # ------------------------------------------------------------------

    def _close(self, span: Span) -> None:
        span.end = self.clock.now()
        # The stack discipline only breaks if a span context outlives an
        # enclosing one (misuse); recover by popping through it.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
        for sink in self._sinks:
            sink.on_span(span)


class NoopSpan:
    """The do-nothing span handed out by :class:`NoopTracer`."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def mark_error(self, exc: BaseException) -> None:
        pass


_NOOP_SPAN = NoopSpan()


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """A tracer whose spans cost (almost) nothing and record nothing.

    Every instrumented component defaults to :data:`NOOP_TRACER`, so the
    instrumentation adds one shared-object context-manager entry per
    operation when tracing is disabled — no allocation, no clock reads.
    """

    __slots__ = ()

    def span(self, name: str, /, **attributes: Any) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    @property
    def current(self) -> None:
        return None

    def add_sink(self, sink) -> None:  # pragma: no cover - defensive
        raise ValueError("NoopTracer discards spans; attach sinks to a Tracer")


#: The shared disabled tracer; ``tracer or NOOP_TRACER`` is the idiom
#: every instrumented constructor uses.
NOOP_TRACER = NoopTracer()
