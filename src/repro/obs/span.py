"""Spans and tracers: per-operation timing for the access pipeline.

The paper measured its Fig. 4 numbers by "placing timers in various
parts of the proxy and server code"; :class:`~repro.proxy.metrics.AccessTimer`
reproduces those aggregate phase timers. A :class:`Tracer` goes one
level deeper: it produces *nested* :class:`Span` records — one per
operation, with attributes, an ok/error status, and start/end times
charged to the injected :class:`~repro.sim.clock.Clock` — so a single
access can be decomposed into the exact tree of RPCs, security checks,
cache probes, retries, and failovers it executed. Under a ``SimClock``
span durations are exact simulated time; under a ``RealClock`` they are
wall time.

Spans are **causally linked across processes**: every span belongs to a
``trace_id`` minted at its root, and the RPC layer carries the active
span's context inside the request envelope
(:class:`~repro.net.message.Request`). A server-side tracer adopting
that context (:meth:`Tracer.span_from`) records a ``server.handle``
span whose ``remote_parent`` names the client span that caused it, so
one browser access yields one cross-process tree no matter how many
proxy/server/gossip hops it touches. The
:class:`~repro.obs.trace.TraceAssembler` stitches the per-process span
streams back together by trace id.

Spans are delivered to pluggable sinks (:mod:`repro.obs.sinks`) as they
close. Instrumented components default to the module-level
:data:`NOOP_TRACER`, whose ``span()`` returns a shared, allocation-free
context manager — tracing costs near zero unless a real tracer is
injected, and a NOOP client injects *no* context (zero envelope
growth).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.sim.clock import Clock, RealClock

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NoopSpan",
    "NOOP_TRACER",
    "SPAN_SCHEMA",
    "parse_context",
]

#: Span statuses. Errors carry the raising exception's class name.
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Version of the serialised span record (``Span.to_dict``). Bumped when
#: the JSONL interchange shape changes; consumers should ignore records
#: with a schema newer than they understand rather than mis-parse them.
#: v2 added ``trace_id`` / ``origin`` / ``remote_parent``.
SPAN_SCHEMA = 2

#: Wire keys of one propagated trace context (kept short: the context
#: rides in every RPC envelope).
CTX_TRACE = "trace"
CTX_SPAN = "span"

#: Distinguishes tracers within one process when no explicit origin is
#: given ("t1", "t2", …). Cross-process uniqueness is the caller's job:
#: harnesses name tracers after the component they instrument
#: ("proxy-sporty", "server-ginger").
_ORIGIN_IDS = itertools.count(1)


def parse_context(ctx: Any) -> Optional[Dict[str, str]]:
    """Validate a wire trace context; None when absent or garbage.

    Trace context is advisory metadata: a missing, truncated, or
    hostile ``ctx`` field must never make an RPC fail, so this accepts
    exactly ``{"trace": <non-empty str>, "span": <non-empty str>}`` and
    maps everything else to None.
    """
    if not isinstance(ctx, Mapping):
        return None
    trace = ctx.get(CTX_TRACE)
    span = ctx.get(CTX_SPAN)
    if not isinstance(trace, str) or not trace:
        return None
    if not isinstance(span, str) or not span:
        return None
    return {CTX_TRACE: trace, CTX_SPAN: span}


@dataclass
class Span:
    """One timed operation: name, attributes, status, and its parent."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    end: Optional[float] = None
    status: str = STATUS_OK
    error_type: str = ""
    #: The trace this span belongs to (inherited from the parent span,
    #: adopted from wire context, or minted fresh at a root).
    trace_id: str = ""
    #: The emitting tracer's name; qualifies ``span_id`` globally.
    origin: str = ""
    #: Globally-qualified ref ("origin:span_id") of a parent span that
    #: lives in *another* process, set when the span was opened from
    #: adopted wire context. Mutually exclusive with ``parent_id``.
    remote_parent: Optional[str] = None

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while the span is open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_error(self) -> bool:
        return self.status == STATUS_ERROR

    @property
    def ref(self) -> str:
        """Globally-unique span reference: ``origin:span_id``."""
        return f"{self.origin}:{self.span_id}"

    @property
    def parent_ref(self) -> Optional[str]:
        """Globally-qualified parent reference (local or remote)."""
        if self.parent_id is not None:
            return f"{self.origin}:{self.parent_id}"
        return self.remote_parent

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def mark_error(self, exc: BaseException) -> None:
        """Record that *exc* was raised (or handled) inside this span."""
        self.status = STATUS_ERROR
        self.error_type = type(exc).__name__

    def context(self) -> Dict[str, str]:
        """The wire trace context naming this span as the parent."""
        return {CTX_TRACE: self.trace_id, CTX_SPAN: self.ref}

    def to_dict(self) -> dict:
        """A JSON-serialisable rendering (attributes coerced to str when
        not natively representable)."""
        return {
            "schema": SPAN_SCHEMA,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "origin": self.origin,
            "remote_parent": self.remote_parent,
            "start": self.start,
            "end": self.end,
            "duration_s": self.duration,
            "status": self.status,
            "error_type": self.error_type,
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, {self.status}"
            f"{', ' + self.error_type if self.error_type else ''})"
        )


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    return str(value)


class _SpanContext:
    """Context manager for one live span; closes and emits on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.mark_error(exc)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Produces nested spans over an injected clock.

    Nesting is tracked with an explicit per-thread stack, so a span
    opened while another is live becomes its child (the simulation is
    single-threaded; the TCP transport handles frames in worker
    threads, each of which gets its own nesting stack). Spans are
    pushed to every sink as they close — children before parents, which
    lets streaming sinks see leaf timings without buffering the whole
    tree.

    ``origin`` names this tracer in globally-qualified span refs; give
    each simulated process its own tracer with a distinct origin and
    the :class:`~repro.obs.trace.TraceAssembler` can stitch their span
    streams into cross-process trees.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        sinks: Iterable = (),
        origin: Optional[str] = None,
    ) -> None:
        self.clock = clock if clock is not None else RealClock()
        self.origin = origin if origin is not None else f"t{next(_ORIGIN_IDS)}"
        self._sinks: List = list(sinks)
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------

    def span(self, name: str, /, **attributes: Any) -> _SpanContext:
        """Open a span; use as ``with tracer.span("rpc.call", op=op) as s``.

        The span name is positional-only so ``name=...`` stays available
        as an ordinary attribute. An exception escaping the ``with`` body
        marks the span as an error (recording the exception's class
        name) and re-raises. A root span (no live parent) mints a fresh
        trace id; children inherit the parent's.
        """
        return self._open(name, attributes, remote=None)

    def span_from(self, ctx: Any, name: str, /, **attributes: Any) -> _SpanContext:
        """Open a span adopting a wire trace context.

        This is the server half of cross-process propagation: when the
        local stack is empty and *ctx* is a valid context (see
        :func:`parse_context`), the new span joins the caller's trace
        with the caller's span as its ``remote_parent``. A live local
        parent wins over the wire context (in-process calls already
        nest), and an absent or garbage context degrades to a plain
        root span — propagation is advisory and never an error.
        """
        if self._stack:
            return self._open(name, attributes, remote=None)
        return self._open(name, attributes, remote=parse_context(ctx))

    def context(self) -> Optional[Dict[str, str]]:
        """Wire context of the innermost live span (None when idle)."""
        current = self.current
        return current.context() if current is not None else None

    def _open(
        self,
        name: str,
        attributes: Dict[str, Any],
        remote: Optional[Dict[str, str]],
    ) -> _SpanContext:
        stack = self._stack
        parent = stack[-1] if stack else None
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: Optional[int] = parent.span_id
            remote_parent = None
        elif remote is not None:
            trace_id = remote[CTX_TRACE]
            parent_id = None
            remote_parent = remote[CTX_SPAN]
        else:
            trace_id = f"{self.origin}-{next(self._trace_ids):06d}"
            parent_id = None
            remote_parent = None
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            start=self.clock.now(),
            attributes=dict(attributes),
            trace_id=trace_id,
            origin=self.origin,
            remote_parent=remote_parent,
        )
        stack.append(span)
        return _SpanContext(self, span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost live span, if any (on the calling thread)."""
        stack = self._stack
        return stack[-1] if stack else None

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    # ------------------------------------------------------------------

    def _close(self, span: Span) -> None:
        span.end = self.clock.now()
        # The stack discipline only breaks if a span context outlives an
        # enclosing one (misuse); recover by popping through it.
        stack = self._stack
        while stack:
            popped = stack.pop()
            if popped is span:
                break
        for sink in self._sinks:
            sink.on_span(span)


class NoopSpan:
    """The do-nothing span handed out by :class:`NoopTracer`."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def mark_error(self, exc: BaseException) -> None:
        pass


_NOOP_SPAN = NoopSpan()


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """A tracer whose spans cost (almost) nothing and record nothing.

    Every instrumented component defaults to :data:`NOOP_TRACER`, so the
    instrumentation adds one shared-object context-manager entry per
    operation when tracing is disabled — no allocation, no clock reads,
    and no trace context on the wire (:meth:`context` returns None, so
    request envelopes stay byte-identical to the untraced build).
    """

    __slots__ = ()

    def span(self, name: str, /, **attributes: Any) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    def span_from(self, ctx: Any, name: str, /, **attributes: Any) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    def context(self) -> None:
        return None

    @property
    def current(self) -> None:
        return None

    def add_sink(self, sink) -> None:  # pragma: no cover - defensive
        raise ValueError("NoopTracer discards spans; attach sinks to a Tracer")


#: The shared disabled tracer; ``tracer or NOOP_TRACER`` is the idiom
#: every instrumented constructor uses.
NOOP_TRACER = NoopTracer()
