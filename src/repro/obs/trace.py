"""Cross-process trace assembly.

Each simulated process (proxy host, object server, gossip peer) owns
its own :class:`~repro.obs.span.Tracer` and span sink — the spans of
one logical access are scattered across several per-process streams.
The :class:`TraceAssembler` is the collector that puts them back
together: it drains spans from any number of sinks, groups them by
``trace_id``, and rebuilds each trace's causal tree by following
``parent_id`` (same process) and ``remote_parent`` (propagated over the
RPC envelope) references.

The assembler is deliberately forgiving — observability must degrade,
never fail. A span whose parent was dropped by a ring buffer becomes an
*orphan* (flagged, still reported); a child whose interval escapes its
parent's beyond the skew tolerance is flagged as *skewed* (per-process
wall clocks drift; the simulated clock does not, so in simulation any
skew is a bug); duplicate refs are ignored. The *stitch rate* — the
fraction of spans reachable from a trace root — is the headline
health number: 1.0 means every server/gossip span was successfully
joined to the client span that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.obs.span import Span

__all__ = ["AssembledTrace", "TraceAssembler"]


@dataclass
class AssembledTrace:
    """All known spans of one trace id, stitched into a tree.

    ``roots`` are spans with no parent reference at all; ``orphans``
    are spans that *claim* a parent the assembler never saw (dropped by
    a ring buffer, emitted by an uncollected process, or fabricated by
    garbage wire context). Orphans and their descendants are exactly
    the spans not reachable from a root.
    """

    trace_id: str
    spans: List[Span] = field(default_factory=list)
    roots: List[Span] = field(default_factory=list)
    orphans: List[Span] = field(default_factory=list)
    skewed: List[Span] = field(default_factory=list)
    _children: Dict[str, List[Span]] = field(default_factory=dict, repr=False)
    _reachable: Set[str] = field(default_factory=set, repr=False)

    @property
    def root(self) -> Optional[Span]:
        """The unique root span, or None when absent/ambiguous."""
        return self.roots[0] if len(self.roots) == 1 else None

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def duration(self) -> float:
        """The unique root's duration (0.0 without one)."""
        root = self.root
        return root.duration if root is not None else 0.0

    @property
    def origins(self) -> List[str]:
        """The distinct emitting processes, sorted."""
        return sorted({s.origin for s in self.spans})

    @property
    def cross_process_spans(self) -> List[Span]:
        """Spans adopted over the wire (``remote_parent`` set)."""
        return [s for s in self.spans if s.remote_parent is not None]

    @property
    def stitched(self) -> bool:
        """True when every span is reachable from a single root."""
        return self.root is not None and not self.orphans

    @property
    def stitch_rate(self) -> float:
        """Fraction of spans reachable from a root (1.0 when empty)."""
        if not self.spans:
            return 1.0
        return len(self._reachable) / len(self.spans)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children (local and remote), ordered by start time."""
        return list(self._children.get(span.ref, ()))

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def is_reachable(self, span: Span) -> bool:
        return span.ref in self._reachable

    def unreachable(self) -> List[Span]:
        """Spans not connected to any root (orphans + their subtrees)."""
        return [s for s in self.spans if s.ref not in self._reachable]


class TraceAssembler:
    """Collects spans from per-process sinks and stitches traces.

    Typical use::

        assembler = TraceAssembler()
        for sink in per_process_ring_sinks:
            assembler.add_sink(sink)
        ...run workload...
        traces = assembler.collect()   # drain sinks + assemble

    ``skew_tolerance`` bounds how far a child's interval may escape its
    parent's before the child is flagged (seconds; applies per
    comparison). Under the simulated clock the tolerance only needs to
    absorb float rounding.
    """

    def __init__(self, skew_tolerance: float = 1e-9) -> None:
        if skew_tolerance < 0:
            raise ValueError(f"skew_tolerance must be non-negative, got {skew_tolerance}")
        self.skew_tolerance = skew_tolerance
        self._sinks: List = []
        self._spans: Dict[str, Span] = {}  # ref -> span (dedup)
        #: Spans discarded because another span already used their ref.
        self.duplicate_refs = 0

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Register a sink to drain on :meth:`collect`. The sink needs a
        ``drain()`` (preferred, atomic) or ``spans`` accessor."""
        self._sinks.append(sink)

    def add_spans(self, spans: Iterable[Span]) -> int:
        """Ingest spans directly; returns how many were new."""
        added = 0
        for span in spans:
            ref = span.ref
            if ref in self._spans:
                if self._spans[ref] is not span:
                    self.duplicate_refs += 1
                continue
            self._spans[ref] = span
            added += 1
        return added

    def drain_sinks(self) -> int:
        """Pull pending spans out of every registered sink."""
        added = 0
        for sink in self._sinks:
            drain = getattr(sink, "drain", None)
            if drain is not None:
                added += self.add_spans(drain())
            else:
                added += self.add_spans(list(sink.spans))
        return added

    @property
    def span_count(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def collect(self) -> List["AssembledTrace"]:
        """Drain sinks, then assemble — the one-call entry point."""
        self.drain_sinks()
        return self.assemble()

    def assemble(self) -> List["AssembledTrace"]:
        """Stitch the ingested spans into per-trace trees.

        Traces are returned ordered by their earliest span start, spans
        within a trace by (start, origin, span_id) — a deterministic
        rendering of causal order.
        """
        by_trace: Dict[str, List[Span]] = {}
        for span in self._spans.values():
            by_trace.setdefault(span.trace_id, []).append(span)
        traces = []
        for trace_id, spans in by_trace.items():
            traces.append(self._assemble_one(trace_id, spans))
        traces.sort(key=lambda t: min(s.start for s in t.spans))
        return traces

    def _assemble_one(self, trace_id: str, spans: List[Span]) -> AssembledTrace:
        spans = sorted(spans, key=lambda s: (s.start, s.origin, s.span_id))
        present = {s.ref for s in spans}
        trace = AssembledTrace(trace_id=trace_id, spans=spans)
        for span in spans:
            parent = span.parent_ref
            if parent is None:
                trace.roots.append(span)
            elif parent in present:
                trace._children.setdefault(parent, []).append(span)
            else:
                trace.orphans.append(span)
        # Reachability: walk down from the roots (cycles are impossible
        # from real tracers but garbage wire context could fabricate
        # one; the visited set makes the walk terminate regardless).
        stack = [r.ref for r in trace.roots]
        while stack:
            ref = stack.pop()
            if ref in trace._reachable:
                continue
            trace._reachable.add(ref)
            stack.extend(c.ref for c in trace._children.get(ref, ()))
        # Skew: a child's interval escaping its parent's means the two
        # clocks disagree about causal containment.
        tol = self.skew_tolerance
        for parent_ref, children in trace._children.items():
            parent = self._spans.get(parent_ref)
            if parent is None or parent.end is None:
                continue
            for child in children:
                if child.start < parent.start - tol or (
                    child.end is not None and child.end > parent.end + tol
                ):
                    trace.skewed.append(child)
        return trace

    # ------------------------------------------------------------------
    # Fleet summary
    # ------------------------------------------------------------------

    def summary(self, traces: Optional[Sequence[AssembledTrace]] = None) -> dict:
        """Aggregate stitching health over *traces* (default: assemble).

        ``stitch_rate`` is span-weighted: reachable spans over all
        spans. ``cross_process_trace_rate`` is the fraction of traces
        spanning more than one origin — the propagation coverage check.
        """
        if traces is None:
            traces = self.assemble()
        total_spans = sum(t.span_count for t in traces)
        reachable = sum(len(t._reachable) for t in traces)
        cross = [t for t in traces if len(t.origins) > 1]
        return {
            "traces": len(traces),
            "spans": total_spans,
            "stitch_rate": (reachable / total_spans) if total_spans else 1.0,
            "fully_stitched_traces": sum(1 for t in traces if t.stitched),
            "orphan_spans": sum(len(t.orphans) for t in traces),
            "skewed_spans": sum(len(t.skewed) for t in traces),
            "cross_process_traces": len(cross),
            "cross_process_trace_rate": (len(cross) / len(traces)) if traces else 0.0,
            "cross_process_spans": sum(len(t.cross_process_spans) for t in traces),
            "duplicate_refs": self.duplicate_refs,
        }

    def clear(self) -> None:
        """Forget ingested spans (registered sinks stay registered)."""
        self._spans.clear()
