"""Observability: tracing + instrumentation for the access pipeline.

``repro.obs`` gives every layer of the client/server stack a shared,
near-zero-cost way to report *where an access spends its time* and
*which security check rejected a response*:

* :class:`~repro.obs.span.Tracer` / :class:`~repro.obs.span.Span` —
  nested, attributed, clock-charged timing records;
* :data:`~repro.obs.span.NOOP_TRACER` — the disabled default every
  instrumented component falls back to;
* sinks (:mod:`repro.obs.sinks`) — ring buffer, JSONL export, and the
  aggregating :class:`~repro.obs.sinks.SpanStats`.

See ``python -m repro.harness trace`` for the end-to-end profile built
on top of this package, and DESIGN.md §4d for the span taxonomy.
"""

from repro.obs.span import NOOP_TRACER, NoopSpan, NoopTracer, Span, Tracer
from repro.obs.sinks import JsonlSink, RingBufferSink, SpanSink, SpanStats

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NoopSpan",
    "NOOP_TRACER",
    "SpanSink",
    "RingBufferSink",
    "JsonlSink",
    "SpanStats",
]
