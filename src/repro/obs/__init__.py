"""Observability: tracing + instrumentation for the access pipeline.

``repro.obs`` gives every layer of the client/server stack a shared,
near-zero-cost way to report *where an access spends its time* and
*which security check rejected a response*:

* :class:`~repro.obs.span.Tracer` / :class:`~repro.obs.span.Span` —
  nested, attributed, clock-charged timing records;
* :data:`~repro.obs.span.NOOP_TRACER` — the disabled default every
  instrumented component falls back to;
* sinks (:mod:`repro.obs.sinks`) — ring buffer, JSONL export, and the
  aggregating :class:`~repro.obs.sinks.SpanStats`;
* metrics (:mod:`repro.obs.metrics`) — the process-wide labeled
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) with Prometheus-text and canonical-JSON
  exposition, and its disabled twin
  :data:`~repro.obs.metrics.NOOP_METRICS`;
* alerts (:mod:`repro.obs.alerts`) — the SLO rule engine
  (:class:`~repro.obs.alerts.AlertEngine`) evaluating threshold and
  rate-over-window rules on the scrape cadence;
* traces (:mod:`repro.obs.trace`) — the
  :class:`~repro.obs.trace.TraceAssembler` stitching per-process span
  streams into cross-process causal trees by propagated trace context;
* profiles (:mod:`repro.obs.profile`) — the
  :class:`~repro.obs.profile.CriticalPathProfiler` attributing each
  trace's wall time to cost categories along its critical path;
* SLOs (:mod:`repro.obs.slo`) — latency/availability objectives over
  registry metrics with burn-rate rules feeding the alert engine.

See ``python -m repro.harness trace`` for the end-to-end profile built
on the spans, ``python -m repro.harness profile`` for cross-process
critical-path attribution and SLO verdicts, ``python -m repro.harness
monitor`` for the standing metrics/alerts plane, and DESIGN.md
§4d/§4f/§4j for the span taxonomy, metric naming conventions, and the
causal-tracing design.
"""

from repro.obs.span import NOOP_TRACER, NoopSpan, NoopTracer, Span, Tracer
from repro.obs.sinks import JsonlSink, RingBufferSink, SpanSink, SpanStats
from repro.obs.trace import AssembledTrace, TraceAssembler
from repro.obs.profile import (
    DEFAULT_CATEGORIES,
    CriticalPathProfiler,
    Segment,
    TraceProfile,
    categorize,
)
from repro.obs.slo import (
    DEFAULT_FAST_WINDOW,
    DEFAULT_SLOW_WINDOW,
    AvailabilityObjective,
    BurnRateRule,
    BurnWindow,
    LatencyObjective,
    SloObjective,
    SloPlane,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopInstrument,
    NoopMetricsRegistry,
)
from repro.obs.alerts import (
    STATE_FIRING,
    STATE_INACTIVE,
    STATE_PENDING,
    STATE_RESOLVED,
    AlertEngine,
    AlertEvent,
    AlertRule,
    RateRule,
    ThresholdRule,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NoopSpan",
    "NOOP_TRACER",
    "SpanSink",
    "RingBufferSink",
    "JsonlSink",
    "SpanStats",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NoopInstrument",
    "NOOP_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "ThresholdRule",
    "RateRule",
    "STATE_INACTIVE",
    "STATE_PENDING",
    "STATE_FIRING",
    "STATE_RESOLVED",
    "AssembledTrace",
    "TraceAssembler",
    "CriticalPathProfiler",
    "TraceProfile",
    "Segment",
    "categorize",
    "DEFAULT_CATEGORIES",
    "SloObjective",
    "LatencyObjective",
    "AvailabilityObjective",
    "BurnRateRule",
    "BurnWindow",
    "SloPlane",
    "DEFAULT_FAST_WINDOW",
    "DEFAULT_SLOW_WINDOW",
]
