"""SLO alerting over the metrics registry.

An operator of untrusted-replica hosting needs to see an SLO breach —
revocation containment drifting toward its staleness bound, a replica
circuit stuck open — *before* clients fail closed. The
:class:`AlertEngine` is that layer: a set of declarative rules
evaluated against a :class:`~repro.obs.metrics.MetricsRegistry` on the
scrape cadence, each alert walking the classic lifecycle

    inactive → **pending** → **firing** → **resolved** → inactive

where *pending* debounces transient breaches (``for_seconds``) and
every transition lands in an append-only, clock-stamped timeline the
monitor harness asserts on and ``BENCH_monitor_plane.json`` records.

Two rule shapes cover the SLOs this repo cares about:

* :class:`ThresholdRule` — an aggregate (max/min/sum) over the current
  series of one gauge or counter compared against a bound. Example:
  ``max(replica_circuit_state) >= 2`` ("some replica's breaker is
  open"), ``max(revocation_view_staleness_seconds) > 45`` ("fail-closed
  imminent").
* :class:`RateRule` — the *increase* of a (summed) counter over a
  trailing window. Example: ``increase(revocation_rejections_total,
  30 s) > 0`` ("clients are being served revocations right now").

Evaluation is **clock-charged**: each :meth:`AlertEngine.evaluate`
advances the injected :class:`~repro.sim.clock.SimClock` by
``evaluation_cost`` seconds per rule, so the monitor plane's own CPU is
accounted in simulated time like every other modelled cost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import Clock

__all__ = [
    "AlertEvent",
    "AlertRule",
    "ThresholdRule",
    "RateRule",
    "AlertEngine",
    "STATE_INACTIVE",
    "STATE_PENDING",
    "STATE_FIRING",
    "STATE_RESOLVED",
]

STATE_INACTIVE = "inactive"
STATE_PENDING = "pending"
STATE_FIRING = "firing"
STATE_RESOLVED = "resolved"

_COMPARATORS = {
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
}

_AGGREGATES = {
    "max": lambda values: max(values, default=0.0),
    "min": lambda values: min(values, default=0.0),
    "sum": lambda values: sum(values),
}


@dataclass(frozen=True)
class AlertEvent:
    """One lifecycle transition, clock-stamped."""

    rule: str
    state: str
    at: float
    value: float
    severity: str = "warning"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "state": self.state,
            "at": self.at,
            "value": self.value,
            "severity": self.severity,
        }


class AlertRule:
    """Base rule: a named condition over the registry.

    Subclasses implement :meth:`value`; the engine handles the state
    machine. ``for_seconds`` is the pending hold time: the condition
    must stay breached that long (0 = fire on first breach).
    """

    def __init__(
        self,
        name: str,
        severity: str = "warning",
        for_seconds: float = 0.0,
        description: str = "",
    ) -> None:
        if for_seconds < 0:
            raise ValueError(f"for_seconds must be non-negative, got {for_seconds}")
        self.name = name
        self.severity = severity
        self.for_seconds = for_seconds
        self.description = description

    def value(self, registry: MetricsRegistry, now: float) -> float:
        raise NotImplementedError  # pragma: no cover - abstract

    def breached(self, value: float) -> bool:
        raise NotImplementedError  # pragma: no cover - abstract


class ThresholdRule(AlertRule):
    """Aggregate-vs-bound on the current value of one metric.

    ``aggregate`` folds the metric's series ("max", "min", "sum");
    ``label_prefixes`` restricts which series participate by label-value
    prefix — e.g. ``{"address": "globedoc/replica"}`` watches replica
    circuit breakers while ignoring service endpoints tracked by the
    same health tracker.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        threshold: float,
        op: str = ">",
        aggregate: str = "max",
        label_prefixes: Optional[Mapping[str, str]] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {op!r}")
        if aggregate not in _AGGREGATES:
            raise ValueError(f"unknown aggregate {aggregate!r}")
        self.metric = metric
        self.threshold = threshold
        self.op = op
        self.aggregate = aggregate
        self.label_prefixes = dict(label_prefixes) if label_prefixes else None

    def value(self, registry: MetricsRegistry, now: float) -> float:
        values = registry.series_values(self.metric, self.label_prefixes)
        return _AGGREGATES[self.aggregate](values)

    def breached(self, value: float) -> bool:
        return _COMPARATORS[self.op](value, self.threshold)


class RateRule(AlertRule):
    """Increase of a summed counter over a trailing window.

    Each evaluation samples the counter's total; the rule's value is
    ``total(now) - total(now - window)`` (linear sample retention, no
    interpolation: the oldest sample still inside the window anchors
    the increase). A counter that never moves yields 0.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        threshold: float,
        window_seconds: float,
        op: str = ">",
        label_prefixes: Optional[Mapping[str, str]] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {op!r}")
        self.metric = metric
        self.threshold = threshold
        self.window_seconds = window_seconds
        self.op = op
        self.label_prefixes = dict(label_prefixes) if label_prefixes else None
        self._samples: Deque[Tuple[float, float]] = deque()

    def value(self, registry: MetricsRegistry, now: float) -> float:
        values = registry.series_values(self.metric, self.label_prefixes)
        total = sum(values)
        self._samples.append((now, total))
        horizon = now - self.window_seconds
        # Keep one sample at-or-before the horizon as the anchor.
        while len(self._samples) >= 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()
        anchor_time, anchor_total = self._samples[0]
        if anchor_time > horizon and len(self._samples) == 1:
            return 0.0  # first-ever sample: no increase measurable yet
        return total - anchor_total

    def breached(self, value: float) -> bool:
        return _COMPARATORS[self.op](value, self.threshold)


@dataclass
class _RuleState:
    state: str = STATE_INACTIVE
    pending_since: Optional[float] = None
    fired_at: Optional[float] = None
    last_value: float = 0.0
    fire_count: int = 0


class AlertEngine:
    """Evaluates rules against one registry on the scrape cadence.

    The engine never polls on its own: the harness (or an operator
    loop) calls :meth:`evaluate` each scrape tick. ``evaluation_cost``
    seconds per rule are charged to the clock on every evaluation when
    the clock is advanceable (a SimClock) — the monitoring plane is not
    free, and simulated experiments should account for it.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Clock,
        evaluation_cost: float = 0.0,
    ) -> None:
        if evaluation_cost < 0:
            raise ValueError(
                f"evaluation_cost must be non-negative, got {evaluation_cost}"
            )
        self.registry = registry
        self.clock = clock
        self.evaluation_cost = evaluation_cost
        self._rules: List[AlertRule] = []
        self._states: Dict[str, _RuleState] = {}
        #: Append-only transition log (the alert timeline).
        self.timeline: List[AlertEvent] = []
        self.evaluations = 0

    # ------------------------------------------------------------------

    def add_rule(self, rule: AlertRule) -> AlertRule:
        if any(r.name == rule.name for r in self._rules):
            raise ValueError(f"alert rule {rule.name!r} already registered")
        self._rules.append(rule)
        self._states[rule.name] = _RuleState()
        return rule

    @property
    def rules(self) -> List[AlertRule]:
        return list(self._rules)

    def state_of(self, rule_name: str) -> str:
        return self._states[rule_name].state

    def firing(self) -> List[str]:
        """Names of currently firing rules, registration order."""
        return [r.name for r in self._rules if self._states[r.name].state == STATE_FIRING]

    # ------------------------------------------------------------------

    def evaluate(self) -> List[AlertEvent]:
        """One evaluation pass; returns the transitions it produced.

        Runs the registry's collectors first so derived gauges are
        current, charges the evaluation cost to the clock, then steps
        each rule's state machine.
        """
        self.registry.collect()
        cost = self.evaluation_cost * len(self._rules)
        advance = getattr(self.clock, "advance", None)
        if cost > 0 and advance is not None:
            advance(cost)
        now = self.clock.now()
        self.evaluations += 1
        transitions: List[AlertEvent] = []
        for rule in self._rules:
            state = self._states[rule.name]
            value = rule.value(self.registry, now)
            state.last_value = value
            breached = rule.breached(value)
            if state.state in (STATE_INACTIVE, STATE_RESOLVED):
                if breached:
                    state.state = STATE_PENDING
                    state.pending_since = now
                    transitions.append(self._emit(rule, STATE_PENDING, now, value))
                    if rule.for_seconds == 0.0:
                        self._fire(rule, state, now, value, transitions)
                elif state.state == STATE_RESOLVED:
                    state.state = STATE_INACTIVE
            elif state.state == STATE_PENDING:
                if not breached:
                    state.state = STATE_INACTIVE  # breach did not hold
                    state.pending_since = None
                elif now - (state.pending_since or now) >= rule.for_seconds:
                    self._fire(rule, state, now, value, transitions)
            elif state.state == STATE_FIRING:
                if not breached:
                    state.state = STATE_RESOLVED
                    state.pending_since = None
                    transitions.append(self._emit(rule, STATE_RESOLVED, now, value))
        self.timeline.extend(transitions)
        return transitions

    def _fire(
        self,
        rule: AlertRule,
        state: _RuleState,
        now: float,
        value: float,
        transitions: List[AlertEvent],
    ) -> None:
        state.state = STATE_FIRING
        state.fired_at = now
        state.fire_count += 1
        transitions.append(self._emit(rule, STATE_FIRING, now, value))

    def _emit(self, rule: AlertRule, state: str, now: float, value: float) -> AlertEvent:
        return AlertEvent(
            rule=rule.name, state=state, at=now, value=value, severity=rule.severity
        )

    # ------------------------------------------------------------------

    def timeline_dicts(self) -> List[dict]:
        return [event.to_dict() for event in self.timeline]

    def fire_resolve_times(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per rule: first fired-at / last resolved-at timestamps (None
        when the transition never happened)."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        for rule in self._rules:
            fired = [e.at for e in self.timeline if e.rule == rule.name and e.state == STATE_FIRING]
            resolved = [e.at for e in self.timeline if e.rule == rule.name and e.state == STATE_RESOLVED]
            out[rule.name] = {
                "fired_at": fired[0] if fired else None,
                "resolved_at": resolved[-1] if resolved else None,
            }
        return out
