"""Service-level objectives and burn-rate alerting.

An SLO turns a metrics stream into a yes/no promise — "99% of accesses
complete within 250 ms", "99.9% of accesses succeed" — and an *error
budget* (the tolerated bad fraction, ``1 - target``). This module
layers both on the existing observability plane:

* objectives read the :class:`~repro.obs.metrics.MetricsRegistry`
  directly — :class:`LatencyObjective` counts good events from a
  histogram's cumulative buckets (the threshold must sit on a bucket
  bound; anything else would silently measure a different promise),
  :class:`AvailabilityObjective` from a counter's labeled series;
* :class:`BurnRateRule` is an :class:`~repro.obs.alerts.AlertRule`
  measuring how fast the error budget burns over a trailing window
  (``bad_fraction / budget``; 1.0 = exactly on budget), so it plugs
  into the PR 5 :class:`~repro.obs.alerts.AlertEngine` lifecycle
  (pending → firing → resolved) unchanged;
* :class:`SloPlane` bundles the conventional fast/slow window pair per
  objective — the fast rule catches a cliff in minutes, the slow rule
  catches a simmer the fast window forgives — and renders per-objective
  compliance verdicts for the harness report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "SloObjective",
    "LatencyObjective",
    "AvailabilityObjective",
    "BurnRateRule",
    "BurnWindow",
    "SloPlane",
    "DEFAULT_FAST_WINDOW",
    "DEFAULT_SLOW_WINDOW",
]


class SloObjective:
    """One promise over the registry: a target fraction of good events.

    Subclasses implement :meth:`counts` returning cumulative
    ``(good, total)`` event counts; everything else (budget, compliance,
    burn rates) derives from those two monotone numbers.
    """

    def __init__(self, name: str, target: float, description: str = "") -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        self.name = name
        self.target = target
        self.description = description

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction, ``1 - target``."""
        return 1.0 - self.target

    def counts(self, registry: MetricsRegistry) -> Tuple[float, float]:
        raise NotImplementedError  # pragma: no cover - abstract

    def compliance(self, registry: MetricsRegistry) -> float:
        """Lifetime good fraction (1.0 with no events: no traffic is
        not a breach)."""
        good, total = self.counts(registry)
        return (good / total) if total else 1.0

    def verdict(self, registry: MetricsRegistry) -> dict:
        good, total = self.counts(registry)
        compliance = (good / total) if total else 1.0
        return {
            "objective": self.name,
            "target": self.target,
            "events": total,
            "good": good,
            "compliance": compliance,
            "met": compliance >= self.target,
        }


class LatencyObjective(SloObjective):
    """"*target* of events complete within *threshold_s*" over one
    histogram metric.

    The threshold must exactly match one of the histogram's bucket
    bounds — cumulative bucket counts are only available at bounds, and
    rounding to a neighbouring bucket would quietly redefine the SLO.
    The check happens at evaluation time (the metric may not exist yet
    at construction); a missing metric reads as zero traffic.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        threshold_s: float,
        target: float,
        label_prefixes: Optional[Mapping[str, str]] = None,
        description: str = "",
    ) -> None:
        super().__init__(name, target, description=description)
        self.metric = metric
        self.threshold_s = float(threshold_s)
        self.label_prefixes = dict(label_prefixes) if label_prefixes else None

    def counts(self, registry: MetricsRegistry) -> Tuple[float, float]:
        instrument = registry.get(self.metric)
        if instrument is None:
            return (0.0, 0.0)
        if not isinstance(instrument, Histogram):
            raise ValueError(
                f"latency objective {self.name!r} needs a histogram, "
                f"{self.metric!r} is a {type(instrument).__name__}"
            )
        if self.threshold_s not in instrument.bounds:
            raise ValueError(
                f"latency objective {self.name!r}: threshold {self.threshold_s}s "
                f"is not a bucket bound of {self.metric!r} (bounds: "
                f"{list(instrument.bounds)})"
            )
        good = 0.0
        total = 0.0
        for labels, child in instrument.series():
            if not self._selected(instrument.labelnames, labels):
                continue
            for bound, cumulative in child.cumulative_buckets():
                if bound == self.threshold_s:
                    good += cumulative
                    break
            total += child.count
        return (good, total)

    def _selected(self, labelnames, labels) -> bool:
        if not self.label_prefixes:
            return True
        by_name = dict(zip(labelnames, labels))
        return all(
            by_name.get(key, "").startswith(prefix)
            for key, prefix in self.label_prefixes.items()
        )


class AvailabilityObjective(SloObjective):
    """"*target* of events are good" over one labeled counter.

    Good events are the series whose labels start with ``good_labels``
    (e.g. ``{"outcome": "ok"}`` on ``proxy_requests_total``); the total
    is every series, optionally pre-filtered by ``label_prefixes``.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        good_labels: Mapping[str, str],
        target: float,
        label_prefixes: Optional[Mapping[str, str]] = None,
        description: str = "",
    ) -> None:
        super().__init__(name, target, description=description)
        if not good_labels:
            raise ValueError(f"availability objective {name!r} needs good_labels")
        self.metric = metric
        self.good_labels = dict(good_labels)
        self.label_prefixes = dict(label_prefixes) if label_prefixes else None

    def counts(self, registry: MetricsRegistry) -> Tuple[float, float]:
        total = sum(registry.series_values(self.metric, self.label_prefixes))
        good_filter = dict(self.label_prefixes or {})
        good_filter.update(self.good_labels)
        good = sum(registry.series_values(self.metric, good_filter))
        return (good, total)


class BurnRateRule(AlertRule):
    """Error-budget burn rate of one objective over a trailing window.

    The value is ``bad_fraction(window) / error_budget``: 1.0 means the
    service is consuming budget exactly as fast as the SLO tolerates;
    14.4 (the classic fast-burn bound) means a 30-day budget would be
    gone in two days. Sampled like :class:`~repro.obs.alerts.RateRule`
    — each evaluation appends ``(now, good, total)`` and the oldest
    sample still inside the window anchors the deltas. A window with no
    new events burns nothing.
    """

    def __init__(
        self,
        name: str,
        objective: SloObjective,
        window_seconds: float,
        threshold: float,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.objective = objective
        self.window_seconds = window_seconds
        self.threshold = threshold
        self._samples: Deque[Tuple[float, float, float]] = deque()

    def value(self, registry: MetricsRegistry, now: float) -> float:
        good, total = self.objective.counts(registry)
        self._samples.append((now, good, total))
        horizon = now - self.window_seconds
        while len(self._samples) >= 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()
        anchor_time, anchor_good, anchor_total = self._samples[0]
        if anchor_time > horizon and len(self._samples) == 1:
            return 0.0  # first-ever sample: no window to measure yet
        d_total = total - anchor_total
        d_good = good - anchor_good
        if d_total <= 0:
            return 0.0
        bad_fraction = (d_total - d_good) / d_total
        return bad_fraction / self.objective.error_budget

    def breached(self, value: float) -> bool:
        return value > self.threshold


@dataclass(frozen=True)
class BurnWindow:
    """One burn-rate alert window: how far back, how hot, how long held."""

    window_seconds: float
    threshold: float
    for_seconds: float = 0.0
    severity: str = "warning"


#: Conventional fast/slow pair, scaled to simulated-minutes workloads:
#: the fast window pages on a cliff, the slow window on a sustained
#: simmer that the fast window keeps forgiving.
DEFAULT_FAST_WINDOW = BurnWindow(window_seconds=60.0, threshold=10.0, severity="critical")
DEFAULT_SLOW_WINDOW = BurnWindow(window_seconds=300.0, threshold=2.0, severity="warning")


@dataclass
class _Tracked:
    objective: SloObjective
    rules: List[BurnRateRule] = field(default_factory=list)


class SloPlane:
    """The set of objectives guarding one registry, wired to one engine.

    :meth:`add` registers an objective plus its fast/slow burn-rate
    rules on the engine (rule names ``<objective>:fast_burn`` /
    ``<objective>:slow_burn``); the engine's normal ``evaluate()``
    cadence then drives the alert lifecycle. :meth:`report` renders
    the per-objective verdicts with each rule's current state.
    """

    def __init__(self, registry: MetricsRegistry, engine: AlertEngine) -> None:
        self.registry = registry
        self.engine = engine
        self._tracked: Dict[str, _Tracked] = {}

    def add(
        self,
        objective: SloObjective,
        fast: Optional[BurnWindow] = DEFAULT_FAST_WINDOW,
        slow: Optional[BurnWindow] = DEFAULT_SLOW_WINDOW,
    ) -> SloObjective:
        if objective.name in self._tracked:
            raise ValueError(f"objective {objective.name!r} already registered")
        tracked = _Tracked(objective=objective)
        for suffix, window in (("fast_burn", fast), ("slow_burn", slow)):
            if window is None:
                continue
            rule = BurnRateRule(
                name=f"{objective.name}:{suffix}",
                objective=objective,
                window_seconds=window.window_seconds,
                threshold=window.threshold,
                for_seconds=window.for_seconds,
                severity=window.severity,
                description=objective.description,
            )
            self.engine.add_rule(rule)
            tracked.rules.append(rule)
        self._tracked[objective.name] = tracked
        return objective

    @property
    def objectives(self) -> List[SloObjective]:
        return [t.objective for t in self._tracked.values()]

    def verdicts(self) -> List[dict]:
        """Per-objective compliance + live burn-alert states."""
        out = []
        for tracked in self._tracked.values():
            verdict = tracked.objective.verdict(self.registry)
            verdict["alerts"] = {
                rule.name: self.engine.state_of(rule.name) for rule in tracked.rules
            }
            out.append(verdict)
        return out

    def report(self) -> dict:
        verdicts = self.verdicts()
        return {
            "objectives": verdicts,
            "all_met": all(v["met"] for v in verdicts),
            "alert_timeline": [
                e.to_dict()
                for e in self.engine.timeline
                if any(
                    e.rule.startswith(name + ":") for name in self._tracked
                )
            ],
        }
