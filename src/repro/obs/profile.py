"""Critical-path profiling over assembled traces.

The paper's Fig. 4 asked "where does an access spend its time?" and
answered with aggregate phase timers. The critical-path profiler
answers the sharper question — *which* work actually bounded the
latency of *this* access — by walking an
:class:`~repro.obs.trace.AssembledTrace` and attributing every instant
of the root span's wall time to exactly one span:

* an instant covered by no child belongs to the span itself (its
  *self time* — CPU the span spent between its calls);
* an instant covered by one or more children belongs to the child that
  ends **last** among those covering it — the *critical branch*. Under
  :meth:`SimClock.parallel <repro.sim.clock.SimClock.parallel>`
  max-of-parallel semantics, concurrent branches share wall time and
  the region's cost is the slowest branch, so the longest-running
  cover is precisely the branch the access was waiting on.

The attribution is a recursive boundary sweep: child intervals cut the
parent interval into segments, each segment is either self time or
recursed into its critical branch. Segments partition the root
interval exactly, so per-category totals sum to the trace duration by
construction (the ``BENCH_profile`` gate checks this to within float
rounding).

Categories map span names to the cost buckets the roadmap cares about
(crypto verify, RPC wait, storage, cache, merge, proxy logic); the
:class:`CriticalPathProfiler` aggregates thousands of traces into
per-category totals, critical-path latency percentiles, and a
flame-style ranking of the hottest span families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.span import Span
from repro.obs.trace import AssembledTrace
from repro.util.stats import percentile

__all__ = [
    "DEFAULT_CATEGORIES",
    "categorize",
    "Segment",
    "TraceProfile",
    "CriticalPathProfiler",
]

#: Ordered (category, name-prefixes) table; first match wins. Names not
#: matching any prefix fall into "other".
DEFAULT_CATEGORIES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("crypto", ("check.", "pipeline.batch_verify", "revocation.")),
    ("cache", ("cache.",)),
    ("storage", ("storage.",)),
    ("merge", ("versioning.", "gossip.")),
    ("rpc", ("rpc.", "server.handle")),
    ("proxy", ("proxy.", "session.", "bind.", "pipeline.")),
)

OTHER_CATEGORY = "other"


def categorize(
    name: str,
    categories: Sequence[Tuple[str, Tuple[str, ...]]] = DEFAULT_CATEGORIES,
) -> str:
    """The cost category of one span name (first prefix match wins)."""
    for category, prefixes in categories:
        for prefix in prefixes:
            if name.startswith(prefix):
                return category
    return OTHER_CATEGORY


@dataclass(frozen=True)
class Segment:
    """One attributed slice of a trace's wall time."""

    start: float
    end: float
    span_name: str
    category: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceProfile:
    """Critical-path attribution of a single assembled trace."""

    trace_id: str
    duration: float
    segments: List[Segment] = field(default_factory=list)
    by_category: Dict[str, float] = field(default_factory=dict)
    by_name: Dict[str, float] = field(default_factory=dict)

    @property
    def attributed(self) -> float:
        return sum(s.duration for s in self.segments)

    @property
    def attribution_error(self) -> float:
        """|attributed - duration| — float rounding only, by design."""
        return abs(self.attributed - self.duration)


class CriticalPathProfiler:
    """Profiles traces and aggregates flame-style statistics.

    Feed it assembled traces (:meth:`add` or :meth:`profile`);
    :meth:`aggregate` reports per-category totals and fractions,
    critical-path latency percentiles, and the top-N hottest span
    families by critical-path self time — the "O(1) hot paths exposed
    by profiling" input the scale roadmap item asks for.
    """

    def __init__(
        self,
        categories: Sequence[Tuple[str, Tuple[str, ...]]] = DEFAULT_CATEGORIES,
    ) -> None:
        self.categories = tuple(categories)
        self._durations: List[float] = []
        self._category_totals: Dict[str, float] = {}
        self._name_totals: Dict[str, float] = {}
        self._name_counts: Dict[str, int] = {}
        self.traces_profiled = 0
        #: Traces skipped because they had no unique root to walk from.
        self.rootless_traces = 0
        self.max_attribution_error = 0.0

    # ------------------------------------------------------------------
    # Single-trace profiling
    # ------------------------------------------------------------------

    def profile(self, trace: AssembledTrace) -> Optional[TraceProfile]:
        """Attribute one trace's wall time; None without a unique root."""
        root = trace.root
        if root is None or root.end is None:
            return None
        segments = self._segments(trace, root, root.start, root.end)
        profile = TraceProfile(
            trace_id=trace.trace_id, duration=root.duration, segments=segments
        )
        for seg in segments:
            profile.by_category[seg.category] = (
                profile.by_category.get(seg.category, 0.0) + seg.duration
            )
            profile.by_name[seg.span_name] = (
                profile.by_name.get(seg.span_name, 0.0) + seg.duration
            )
        return profile

    def _segments(
        self, trace: AssembledTrace, span: Span, lo: float, hi: float
    ) -> List[Segment]:
        """Attribute [lo, hi] of *span*'s time, recursing into children.

        The window always lies inside *span*'s own interval. Child
        intervals are clamped to the window; boundary points cut it
        into elementary segments each either uncovered (self time) or
        recursed into the covering child that ends last.
        """
        if hi <= lo:
            return []
        children = [
            c
            for c in trace.children_of(span)
            if c.end is not None and c.end > lo and c.start < hi
        ]
        if not children:
            return [self._self_segment(span, lo, hi)]
        bounds = {lo, hi}
        for child in children:
            bounds.add(max(lo, child.start))
            bounds.add(min(hi, child.end))
        cuts = sorted(bounds)
        out: List[Segment] = []
        for a, b in zip(cuts, cuts[1:]):
            if b <= a:
                continue
            covering = [c for c in children if c.start <= a and c.end >= b]
            if not covering:
                out.append(self._self_segment(span, a, b))
                continue
            # The critical branch: the cover that runs longest. Ties
            # break deterministically on (start, origin, span_id).
            critical = max(covering, key=lambda c: (c.end, c.start, c.origin, c.span_id))
            out.extend(self._segments(trace, critical, a, b))
        return out

    def _self_segment(self, span: Span, lo: float, hi: float) -> Segment:
        return Segment(
            start=lo,
            end=hi,
            span_name=span.name,
            category=categorize(span.name, self.categories),
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def add(self, trace: AssembledTrace) -> Optional[TraceProfile]:
        """Profile *trace* and fold it into the aggregate."""
        profile = self.profile(trace)
        if profile is None:
            self.rootless_traces += 1
            return None
        self.traces_profiled += 1
        self._durations.append(profile.duration)
        self.max_attribution_error = max(
            self.max_attribution_error, profile.attribution_error
        )
        for category, seconds in profile.by_category.items():
            self._category_totals[category] = (
                self._category_totals.get(category, 0.0) + seconds
            )
        for name, seconds in profile.by_name.items():
            self._name_totals[name] = self._name_totals.get(name, 0.0) + seconds
            self._name_counts[name] = self._name_counts.get(name, 0) + 1
        return profile

    def add_all(self, traces: Sequence[AssembledTrace]) -> int:
        """Fold every trace in; returns how many were profiled."""
        return sum(1 for t in traces if self.add(t) is not None)

    def hottest(self, n: int = 5) -> List[dict]:
        """Top-*n* span families by critical-path self time."""
        ranked = sorted(self._name_totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            {
                "name": name,
                "category": categorize(name, self.categories),
                "critical_s": seconds,
                "traces": self._name_counts[name],
            }
            for name, seconds in ranked[:n]
        ]

    def aggregate(self, top: int = 5) -> dict:
        """The flame-style aggregate across every profiled trace."""
        total = sum(self._durations)
        categories = {
            category: {
                "critical_s": seconds,
                "fraction": (seconds / total) if total else 0.0,
            }
            for category, seconds in sorted(self._category_totals.items())
        }
        return {
            "traces_profiled": self.traces_profiled,
            "rootless_traces": self.rootless_traces,
            "critical_path_s": {
                "total": total,
                "mean": (total / len(self._durations)) if self._durations else 0.0,
                "p50": percentile(self._durations, 50) if self._durations else 0.0,
                "p99": percentile(self._durations, 99) if self._durations else 0.0,
                "max": max(self._durations, default=0.0),
            },
            "categories": categories,
            "hottest": self.hottest(top),
            "max_attribution_error_s": self.max_attribution_error,
        }
