"""Span sinks: where closed spans go.

Three collectors cover the observability needs of the harness and tests:

* :class:`RingBufferSink` — the last N spans, for post-mortem queries
  ("which span rejected that access?", "what were the slowest spans?");
* :class:`JsonlSink` — streams every span as one JSON line, the
  interchange format for offline analysis;
* :class:`SpanStats` — constant-ish-memory aggregation per span name:
  count, error count, total/mean and p50/p95 durations — the input of
  the trace profile's per-phase breakdown.

All sinks implement a single method, ``on_span(span)``, called by the
tracer as each span closes (children before parents).
"""

from __future__ import annotations

import json
import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, IO, List, Optional, Protocol, Union

from repro.obs.span import Span
from repro.util.stats import percentile

__all__ = ["SpanSink", "RingBufferSink", "JsonlSink", "SpanStats", "NameStats"]


class SpanSink(Protocol):
    """Anything that accepts closed spans."""

    def on_span(self, span: Span) -> None: ...


class RingBufferSink:
    """Keeps the most recent *capacity* spans in memory.

    Appends, reads, and :meth:`drain` are serialised by an internal
    lock: the TCP transport closes spans from worker threads while the
    :class:`~repro.obs.trace.TraceAssembler` drains the buffer, and the
    seen/dropped accounting must stay consistent under that race (a
    drained span is neither lost nor double-counted).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Lifetime spans received — cumulative, survives :meth:`clear`.
        self.seen = 0
        self._dropped = 0

    def on_span(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1  # the oldest span is about to fall off
            self._spans.append(span)
            self.seen += 1

    @property
    def spans(self) -> List[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Atomically remove and return the retained spans, oldest first.

        The assembler's collection primitive: spans handed out by a
        drain count as delivered, not dropped, and any span appended
        concurrently is either included in this drain or left for the
        next one — never lost.
        """
        with self._lock:
            drained = list(self._spans)
            self._spans.clear()
        return drained

    @property
    def dropped(self) -> int:
        """Lifetime spans lost to capacity overflow — cumulative, and
        unaffected by :meth:`clear` (an explicit clear is not a drop)."""
        return self._dropped

    def named(self, name: str) -> List[Span]:
        return [s for s in self._spans if s.name == name]

    def errors(self) -> List[Span]:
        return [s for s in self._spans if s.is_error]

    def slowest(self, n: int = 10) -> List[Span]:
        """The *n* longest retained spans, longest first."""
        return sorted(self._spans, key=lambda s: s.duration, reverse=True)[:n]

    def clear(self) -> None:
        """Drop the retained spans; the cumulative ``seen``/``dropped``
        accounting is preserved (monitoring counters must be monotone —
        a buffer reset must not look like traffic vanishing)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class JsonlSink:
    """Writes each span as one JSON line to a path or open file object.

    Use as a context manager (``with JsonlSink(path) as sink: ...``) or
    call :meth:`close` explicitly; both flush. A handle passed in by the
    caller is flushed but never closed — its lifetime is the caller's.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._closed = False
        self.written = 0

    def on_span(self, span: Span) -> None:
        if self._closed:
            raise ValueError("JsonlSink is closed")
        self._fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self.written += 1

    def flush(self) -> None:
        """Push buffered lines to the underlying file."""
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush, then close an owned handle. Idempotent."""
        if self._closed:
            return
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


@dataclass
class NameStats:
    """Aggregate for one span name (durations kept up to a sample cap)."""

    count: int = 0
    errors: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def __post_init__(self) -> None:
        self.samples: List[float] = []
        self.error_types: Counter = Counter()


class SpanStats:
    """Aggregating sink: count / errors / total / p50 / p95 per name.

    Durations are retained up to ``max_samples_per_name`` per span name
    for the percentile estimates (count/total/max stay exact beyond the
    cap; percentiles then describe the first N samples).

    An *unclosed* span (``end is None`` — a tracer only emits closed
    spans, but a buggy or eager caller may feed one directly) reports a
    duration of 0.0, which would silently drag p50/mean toward zero.
    Such spans are skipped entirely and tallied in ``unclosed_total``
    so the corruption is visible instead of baked into the stats.
    """

    def __init__(self, max_samples_per_name: int = 8192) -> None:
        if max_samples_per_name <= 0:
            raise ValueError(
                f"max_samples_per_name must be positive, got {max_samples_per_name}"
            )
        self.max_samples_per_name = max_samples_per_name
        self._by_name: Dict[str, NameStats] = {}
        #: Spans rejected because they were never closed.
        self.unclosed_total = 0

    def on_span(self, span: Span) -> None:
        if span.end is None:
            self.unclosed_total += 1
            return
        stats = self._by_name.get(span.name)
        if stats is None:
            stats = self._by_name[span.name] = NameStats()
        duration = span.duration
        stats.count += 1
        stats.total_s += duration
        stats.max_s = max(stats.max_s, duration)
        if span.is_error:
            stats.errors += 1
            stats.error_types[span.error_type] += 1
        if len(stats.samples) < self.max_samples_per_name:
            stats.samples.append(duration)

    # ------------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return sorted(self._by_name)

    def get(self, name: str) -> Optional[NameStats]:
        return self._by_name.get(name)

    def stats(self) -> Dict[str, dict]:
        """The per-name summary table (JSON-ready)."""
        out: Dict[str, dict] = {}
        for name in self.names:
            s = self._by_name[name]
            out[name] = {
                "count": s.count,
                "errors": s.errors,
                "total_s": s.total_s,
                "mean_s": s.total_s / s.count if s.count else 0.0,
                "p50_s": percentile(s.samples, 50) if s.samples else 0.0,
                "p95_s": percentile(s.samples, 95) if s.samples else 0.0,
                "max_s": s.max_s,
            }
            if s.error_types:
                out[name]["error_types"] = dict(s.error_types)
        return out

    def error_census(self, prefix: str = "") -> Dict[str, Dict[str, int]]:
        """Error spans grouped by name → exception type (optionally
        restricted to names starting with *prefix*)."""
        out: Dict[str, Dict[str, int]] = {}
        for name, s in self._by_name.items():
            if s.error_types and name.startswith(prefix):
                out[name] = dict(s.error_types)
        return out

    def clear(self) -> None:
        self._by_name.clear()
