"""A secure session with one GlobeDoc object.

Implements the full flow of Fig. 3 on top of a bound object: fetch and
verify the public key (steps 4–5), optional identity proofs (6–7), the
integrity certificate (8–9), then per-element retrieval with the hash /
freshness / consistency checks (10–13). The verified binding is cached
so subsequent element fetches skip the (~2 KB) key+certificate exchange
— the knob the certificate-cache ablation turns off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    BindingError,
    ObjectNotFound,
    ReplicaError,
    RevocationError,
    RpcError,
    SecurityError,
    TransportError,
)
from repro.globedoc.element import PageElement
from repro.obs import NOOP_TRACER
from repro.proxy.binding import Binder, BoundObject
from repro.proxy.checks import SecurityChecker, VerifiedBinding
from repro.proxy.metrics import AccessMetrics, AccessTimer, ResilienceStats

__all__ = ["SecureSession", "FetchResult"]


@dataclass(frozen=True)
class FetchResult:
    """A verified element plus the access timing decomposition."""

    element: PageElement
    metrics: AccessMetrics
    certified_as: Optional[str] = None

    @property
    def content(self) -> bytes:
        return self.element.content


class SecureSession:
    """Per-object secure binding state.

    A session is created by the proxy the first time an object is
    accessed and reused afterwards. ``cache_binding=False`` forces the
    paper's worst case — every element access repeats the key and
    certificate exchange — and is what Fig. 4 measures (single-element
    objects access the object exactly once anyway).
    """

    def __init__(
        self,
        binder: Binder,
        checker: SecurityChecker,
        bound: BoundObject,
        cache_binding: bool = True,
        require_identity: bool = False,
        max_rebinds: int = 3,
        content_cache=None,
        tracer=None,
    ) -> None:
        self.binder = binder
        self.checker = checker
        self.bound = bound
        self.cache_binding = cache_binding
        self.require_identity = require_identity
        self.max_rebinds = max_rebinds
        self.content_cache = content_cache
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._verified: Optional[VerifiedBinding] = None
        self.rebind_count = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    # Secure binding (steps 4–9 of Fig. 3)
    # ------------------------------------------------------------------

    def establish(self, timer: AccessTimer) -> VerifiedBinding:
        """Fetch + verify key, identity proofs, and integrity certificate.

        On a key/OID mismatch (malicious or wrong replica, possibly via
        a lying location service) *and* on an operational failure past
        the transport's retry budget (dead replica, dropped frames) the
        session fails over to the next contact address — the paper's
        "at most denial of service" argument made concrete. Security
        violations fail closed: they are never retried against the same
        replica, only escaped via a *different* one.
        """
        if self._verified is not None and self.cache_binding:
            return self._verified
        with self.tracer.span(
            "session.establish", oid=self.bound.oid.hex[:16]
        ) as span:
            while True:
                try:
                    verified = self._establish_once(timer)
                    break
                except RevocationError:
                    # Revocation condemns the *object*, not the replica:
                    # every replica serves the same revoked key, so
                    # failover would only burn containment latency.
                    raise
                except (SecurityError, TransportError, RpcError, ReplicaError) as exc:
                    # ReplicaError: the server no longer hosts the
                    # replica (torn down, e.g. after its creator's key
                    # was revoked) — operationally a dead replica.
                    self._failover(exc)
            span.set_attribute("rebinds", self.rebind_count)
        self._verified = verified
        return verified

    def _failover(self, exc: Exception) -> None:
        """Rebind to the next replica, or re-raise *exc* when exhausted.

        The rebind failure is chained as ``__cause__`` so a transport
        fault is never misreported as (or hidden behind) a security
        violation — *exc* stays the root cause the user sees, with the
        binding exhaustion attached for diagnosis.
        """
        if self.rebind_count >= self.max_rebinds:
            raise exc
        self.rebind_count += 1
        with self.tracer.span(
            "session.failover",
            cause=type(exc).__name__,
            rebind=self.rebind_count,
        ):
            self.binder.note_replica_failure(self.bound)
            try:
                self.bound = self.binder.rebind(self.bound)
            except (BindingError, ObjectNotFound) as rebind_exc:
                raise exc from rebind_exc
        # Mandatory re-verification: nothing learned from the failed
        # replica may be trusted for the new one.
        self._verified = None
        self.failovers += 1

    def _establish_once(self, timer: AccessTimer) -> VerifiedBinding:
        lr = self.bound.lr
        with timer.phase("get_public_key"):
            key = lr.get_public_key()
        key = self.checker.check_public_key(self.bound.oid, key, timer)
        # Seventh check, key scope — before paying for certificate
        # verification: a revoked key makes the rest of the pipeline moot.
        self.checker.check_revocation(self.bound.oid, timer)

        certified_as = None
        if len(self.checker.trust_store) > 0 or self.require_identity:
            with timer.phase("get_identity_proofs"):
                proofs = lr.get_identity_certificates()
            certified_as = self.checker.check_identity(
                key, proofs, timer, require=self.require_identity
            )

        with timer.phase("get_integrity_certificate"):
            integrity = lr.get_integrity_certificate()
        integrity = self.checker.check_certificate(
            key, integrity, self.bound.oid, timer
        )
        return VerifiedBinding(
            oid=self.bound.oid,
            public_key=key,
            integrity=integrity,
            certified_as=certified_as,
        )

    # ------------------------------------------------------------------
    # Element retrieval (steps 10–13 of Fig. 3)
    # ------------------------------------------------------------------

    def fetch(self, element_name: str, timer: Optional[AccessTimer] = None) -> FetchResult:
        """Retrieve and verify one element.

        Raises :class:`~repro.errors.SecurityError` subclasses on any
        violation — the caller renders the "Security Check Failed" page.
        A transport failure mid-fetch triggers the same failover path as
        a bad binding: rebind, *re-verify the full binding* against the
        new replica, and re-fetch the element there.
        """
        own_timer = timer is None
        if own_timer:
            timer = AccessTimer(self.checker.clock)
        assert timer is not None
        snapshot = self._resilience_snapshot()
        with self.tracer.span("session.fetch", element=element_name):
            try:
                return self._fetch_once(element_name, timer, snapshot)
            except BaseException:
                # Even on a failing access the retry/failover work done
                # on its behalf lands in the metrics the caller finishes.
                self._record_resilience(timer, snapshot)
                raise

    def _fetch_once(
        self, element_name: str, timer: AccessTimer, snapshot
    ) -> FetchResult:
        # Verified-content cache: a hit is servable with no network at
        # all — the owner's signed validity interval makes this safe.
        if self.content_cache is not None:
            with timer.phase("content_cache_lookup"):
                cached = self.content_cache.get(self.bound.oid.hex, element_name)
            if cached is not None:
                # A cache hit skips the network, never the revocation
                # check: the hit predates any revocation the feed may
                # have published since (and the check's refresh purges
                # this very cache on first sight of one).
                self.checker.check_revocation(
                    self.bound.oid, timer, element_name=element_name
                )
                self._record_resilience(timer, snapshot)
                return FetchResult(
                    element=cached,
                    metrics=timer.finish(),
                    certified_as=(
                        self._verified.certified_as if self._verified else None
                    ),
                )
        while True:
            verified = self.establish(timer)
            try:
                with timer.phase("get_page_element"):
                    element = self.bound.lr.get_element(element_name)
                break
            except (TransportError, RpcError, ReplicaError) as exc:
                # The replica died (or was torn down) between binding
                # and element fetch: fail over and re-run the whole
                # verification pipeline against the replacement.
                self._failover(exc)
        if not self.cache_binding:
            self._verified = None
        entry = self.checker.check_element(
            verified.integrity, element_name, element, timer
        )
        # Element-scope revocation: now the certificate version is known,
        # so a statement condemning an older row lets a re-issued
        # (version-bumped) certificate through.
        self.checker.check_revocation(
            self.bound.oid,
            timer,
            element_name=element_name,
            cert_version=verified.integrity.version,
        )
        if self.content_cache is not None:
            self.content_cache.put(self.bound.oid.hex, element, entry.expires_at)
        self._record_resilience(timer, snapshot)
        return FetchResult(
            element=element,
            metrics=timer.finish(),
            certified_as=verified.certified_as,
        )

    # ------------------------------------------------------------------
    # Resilience accounting
    # ------------------------------------------------------------------

    def _resilience_snapshot(self):
        counters = getattr(self.binder.rpc, "counters", None)
        health = self.binder.health
        return (
            counters.retries if counters is not None else 0,
            counters.backoff_seconds if counters is not None else 0.0,
            self.failovers,
            health.quarantines if health is not None else 0,
            counters is not None or health is not None,
        )

    def _record_resilience(self, timer: AccessTimer, snapshot) -> None:
        retries0, backoff0, failovers0, quarantines0, tracked = snapshot
        counters = getattr(self.binder.rpc, "counters", None)
        health = self.binder.health
        stats = ResilienceStats(
            retries=(counters.retries - retries0) if counters is not None else 0,
            backoff_seconds=(
                (counters.backoff_seconds - backoff0) if counters is not None else 0.0
            ),
            failovers=self.failovers - failovers0,
            quarantines=(
                (health.quarantines - quarantines0) if health is not None else 0
            ),
        )
        if tracked or stats.any_degradation:
            timer.record_resilience(stats)

    @property
    def verified(self) -> Optional[VerifiedBinding]:
        return self._verified

    def invalidate(self) -> None:
        """Drop the cached binding (e.g. after a freshness failure, to
        re-fetch a newer certificate from the replica)."""
        self._verified = None
