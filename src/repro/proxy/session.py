"""A secure session with one GlobeDoc object.

Implements the full flow of Fig. 3 on top of a bound object: fetch and
verify the public key (steps 4–5), optional identity proofs (6–7), the
integrity certificate (8–9), then per-element retrieval with the hash /
freshness / consistency checks (10–13). The verified binding is cached
so subsequent element fetches skip the (~2 KB) key+certificate exchange
— the knob the certificate-cache ablation turns off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SecurityError
from repro.globedoc.element import PageElement
from repro.proxy.binding import Binder, BoundObject
from repro.proxy.checks import SecurityChecker, VerifiedBinding
from repro.proxy.metrics import AccessMetrics, AccessTimer

__all__ = ["SecureSession", "FetchResult"]


@dataclass(frozen=True)
class FetchResult:
    """A verified element plus the access timing decomposition."""

    element: PageElement
    metrics: AccessMetrics
    certified_as: Optional[str] = None

    @property
    def content(self) -> bytes:
        return self.element.content


class SecureSession:
    """Per-object secure binding state.

    A session is created by the proxy the first time an object is
    accessed and reused afterwards. ``cache_binding=False`` forces the
    paper's worst case — every element access repeats the key and
    certificate exchange — and is what Fig. 4 measures (single-element
    objects access the object exactly once anyway).
    """

    def __init__(
        self,
        binder: Binder,
        checker: SecurityChecker,
        bound: BoundObject,
        cache_binding: bool = True,
        require_identity: bool = False,
        max_rebinds: int = 3,
        content_cache=None,
    ) -> None:
        self.binder = binder
        self.checker = checker
        self.bound = bound
        self.cache_binding = cache_binding
        self.require_identity = require_identity
        self.max_rebinds = max_rebinds
        self.content_cache = content_cache
        self._verified: Optional[VerifiedBinding] = None
        self.rebind_count = 0

    # ------------------------------------------------------------------
    # Secure binding (steps 4–9 of Fig. 3)
    # ------------------------------------------------------------------

    def establish(self, timer: AccessTimer) -> VerifiedBinding:
        """Fetch + verify key, identity proofs, and integrity certificate.

        On a key/OID mismatch (malicious or wrong replica, possibly via
        a lying location service) the session fails over to the next
        contact address — the paper's "at most denial of service"
        argument made concrete.
        """
        if self._verified is not None and self.cache_binding:
            return self._verified
        while True:
            try:
                verified = self._establish_once(timer)
                break
            except SecurityError as security_exc:
                if self.rebind_count >= self.max_rebinds:
                    raise
                self.rebind_count += 1
                try:
                    self.bound = self.binder.rebind(self.bound)
                except Exception:
                    # No alternative replica: the security violation is
                    # the root cause the user must see, not the binding
                    # exhaustion it led to.
                    raise security_exc
        self._verified = verified
        return verified

    def _establish_once(self, timer: AccessTimer) -> VerifiedBinding:
        lr = self.bound.lr
        with timer.phase("get_public_key"):
            key = lr.get_public_key()
        key = self.checker.check_public_key(self.bound.oid, key, timer)

        certified_as = None
        if len(self.checker.trust_store) > 0 or self.require_identity:
            with timer.phase("get_identity_proofs"):
                proofs = lr.get_identity_certificates()
            certified_as = self.checker.check_identity(
                key, proofs, timer, require=self.require_identity
            )

        with timer.phase("get_integrity_certificate"):
            integrity = lr.get_integrity_certificate()
        integrity = self.checker.check_certificate(
            key, integrity, self.bound.oid, timer
        )
        return VerifiedBinding(
            oid=self.bound.oid,
            public_key=key,
            integrity=integrity,
            certified_as=certified_as,
        )

    # ------------------------------------------------------------------
    # Element retrieval (steps 10–13 of Fig. 3)
    # ------------------------------------------------------------------

    def fetch(self, element_name: str, timer: Optional[AccessTimer] = None) -> FetchResult:
        """Retrieve and verify one element.

        Raises :class:`~repro.errors.SecurityError` subclasses on any
        violation — the caller renders the "Security Check Failed" page.
        """
        own_timer = timer is None
        if own_timer:
            timer = AccessTimer(self.checker.clock)
        assert timer is not None
        # Verified-content cache: a hit is servable with no network at
        # all — the owner's signed validity interval makes this safe.
        if self.content_cache is not None:
            with timer.phase("content_cache_lookup"):
                cached = self.content_cache.get(self.bound.oid.hex, element_name)
            if cached is not None:
                return FetchResult(
                    element=cached,
                    metrics=timer.finish(),
                    certified_as=(
                        self._verified.certified_as if self._verified else None
                    ),
                )
        verified = self.establish(timer)
        if not self.cache_binding:
            self._verified = None
        with timer.phase("get_page_element"):
            element = self.bound.lr.get_element(element_name)
        entry = self.checker.check_element(
            verified.integrity, element_name, element, timer
        )
        if self.content_cache is not None:
            self.content_cache.put(self.bound.oid.hex, element, entry.expires_at)
        return FetchResult(
            element=element,
            metrics=timer.finish(),
            certified_as=verified.certified_as,
        )

    @property
    def verified(self) -> Optional[VerifiedBinding]:
        return self._verified

    def invalidate(self) -> None:
        """Drop the cached binding (e.g. after a freshness failure, to
        re-fetch a newer certificate from the replica)."""
        self._verified = None
