"""The GlobeDoc client proxy (§2.1, §3.3, Fig. 3).

Installed next to the user's browser, the proxy intercepts hybrid URLs,
binds to GlobeDoc objects (name resolution → location lookup → local
representative installation) and runs the full security pipeline on
everything it retrieves: public-key/OID check, optional CA identity
proof, integrity-certificate signature, element hash, freshness and
consistency. Regular HTTP URLs pass through untouched.
"""

from repro.proxy.metrics import AccessMetrics, AccessTimer, FastPathStats, SECURITY_PHASES
from repro.proxy.checks import SecurityChecker, VerifiedBinding
from repro.proxy.binding import Binder, BoundObject
from repro.proxy.session import SecureSession, FetchResult
from repro.proxy.clientproxy import GlobeDocProxy, ProxyResponse
from repro.proxy.contentcache import ContentCache, CachedElement

__all__ = [
    "AccessMetrics",
    "AccessTimer",
    "FastPathStats",
    "SECURITY_PHASES",
    "SecurityChecker",
    "VerifiedBinding",
    "Binder",
    "BoundObject",
    "SecureSession",
    "FetchResult",
    "GlobeDocProxy",
    "ProxyResponse",
    "ContentCache",
    "CachedElement",
]
