"""The security check pipeline (§3.2.2, §3.3, Fig. 3).

Four client-side checks make data from untrusted replicas trustworthy:

1. the public key retrieved from the replica hashes to the
   self-certifying OID (else the replica is not part of the object);
2. optionally, an identity certificate from a CA in the user's trust
   store binds the object key to a real-world name ("Certified as:");
3. the integrity certificate's signature verifies under the object key;
4. each retrieved element passes consistency (name match), authenticity
   (hash match) and freshness (validity interval) against the cert.

A seventh, reproduction-added check — ``check_revocation`` — consults
the revocation feed (see :mod:`repro.revocation`): a genuine, fresh,
consistent response is still rejected when the issuing key or element
certificate has been revoked, or when the client's feed view is too
stale to prove it has not been (fail closed).

An eighth check — ``check_frontier`` — verifies a *multi-writer* served
state (see :mod:`repro.versioning`): every delta signature under a
writer key the owner granted and has not revoked, the hash-linked DAG
complete down to its roots, the served frontier no older than what this
client has already verified (branch withholding), and the deterministic
merge reproducible locally. What it returns is computed from verified
deltas only — no server-supplied merge result is ever trusted.

``SecurityChecker`` is transport-agnostic and side-effect free; all
verification CPU is charged through an optional *compute context* so
the simulated host pays for it (see :meth:`SimHost.compute`).

Verification fast path: an optional
:class:`~repro.crypto.verifycache.VerificationCache` memoizes successful
RSA verifications (certificate and identity-proof signatures). Because
the cache replays verdicts instead of re-running RSA, and the compute
context charges *measured* CPU time, a warm verification charges
(near-)zero simulated CPU — the amortization the paper argues for in
§4. Every check still fails closed: the cache keys on the exact payload
bytes, key, suite, and signature, so tampered input always falls through
to the real RSA operation.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Callable, ContextManager, List, Optional

from repro.crypto.batch import BatchItem, verify_batch
from repro.crypto.identity import IdentityCertificate, TrustStore
from repro.crypto.keys import PublicKey
from repro.crypto.verifycache import VerificationCache
from repro.errors import (
    AuthenticityError,
    BranchWithholdingError,
    ConsistencyError,
    FreshnessError,
    RevokedWriterError,
    UnauthorizedWriterError,
    VersioningError,
)
from repro.globedoc.element import PageElement
from repro.globedoc.integrity import ElementEntry, IntegrityCertificate
from repro.globedoc.oid import ObjectId
from repro.obs import NOOP_METRICS, NOOP_TRACER
from repro.proxy.metrics import AccessTimer, FastPathStats
from repro.sim.clock import Clock
from repro.util.encoding import ENCODE_COUNTERS
from repro.versioning.dag import DeltaDag, Frontier
from repro.versioning.delta import SignedDelta
from repro.versioning.frontier import FrontierCertificate
from repro.versioning.grant import WriterGrant
from repro.versioning.merge import MergedDocument, merge_deltas

__all__ = ["SecurityChecker", "VerifiedBinding", "VerifiedFrontier"]

ComputeContext = Callable[[], ContextManager[None]]


@dataclass
class VerifiedBinding:
    """The outcome of a successful secure binding to one object."""

    oid: ObjectId
    public_key: PublicKey
    integrity: IntegrityCertificate
    certified_as: Optional[str] = None


@dataclass
class VerifiedFrontier:
    """The outcome of a successful frontier check on one object.

    Everything here was recomputed client-side from verified deltas:
    the merged document, the DAG it came from (retained by the reader as
    its withholding baseline for the next access), and the frontier
    certificate if the server presented a valid one.
    """

    merged: MergedDocument
    dag: DeltaDag
    frontier_cert: Optional[FrontierCertificate] = None


class SecurityChecker:
    """Stateless verification primitives used by the secure session.

    ``verification_cache`` (optional, off by default) enables the
    signature-verification fast path for the certificate and identity
    checks; pass one shared instance per proxy/user to amortize RSA
    costs across repeated accesses.
    """

    def __init__(
        self,
        clock: Clock,
        trust_store: Optional[TrustStore] = None,
        compute_context: Optional[ComputeContext] = None,
        verification_cache: Optional[VerificationCache] = None,
        revocation_checker=None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.clock = clock
        self.trust_store = trust_store if trust_store is not None else TrustStore()
        self._compute = compute_context if compute_context is not None else nullcontext
        self.verification_cache = verification_cache
        #: Optional :class:`~repro.revocation.checker.RevocationChecker`;
        #: without one, ``check_revocation`` is a no-op (the paper's
        #: original six-check pipeline).
        self.revocation_checker = revocation_checker
        #: Emits one ``check.*`` span per security check; the span that
        #: closes with error status names the check that rejected the
        #: response — the trace profile's rejection census keys on it.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Per-check verdict accounting: every check increments exactly
        #: one ``security_checks_total{check,outcome}`` series, so the
        #: monitor plane sees *which* check is rejecting without parsing
        #: spans.
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_checks = self.metrics.counter(
            "security_checks_total",
            "Security checks executed, by check name and verdict.",
            labelnames=("check", "outcome"),
        )

    @contextmanager
    def _count(self, check: str):
        """Count one check execution as ok/rejected around its body."""
        try:
            yield
        except Exception:
            self._m_checks.labels(check=check, outcome="rejected").inc()
            raise
        self._m_checks.labels(check=check, outcome="ok").inc()

    # ------------------------------------------------------------------
    # Fast-path accounting
    # ------------------------------------------------------------------

    def _fastpath_snapshot(self) -> tuple:
        cache = self.verification_cache
        verify = cache.stats.snapshot() if cache is not None else (0, 0, 0.0)
        return verify + ENCODE_COUNTERS.snapshot()

    def _record_fastpath(self, timer: AccessTimer, before: tuple) -> None:
        after = self._fastpath_snapshot()
        timer.record_fastpath(
            FastPathStats(
                verify_hits=after[0] - before[0],
                verify_misses=after[1] - before[1],
                saved_us=(after[2] - before[2]) * 1e6,
                encode_hits=after[3] - before[3],
                encode_misses=after[4] - before[4],
            )
        )

    def _span_cache_attrs(self, span, before: tuple) -> None:
        """Attach the VerificationCache outcome of one check to its span."""
        if self.verification_cache is None:
            span.set_attribute("cache", "off")
            return
        after = self._fastpath_snapshot()
        hits = after[0] - before[0]
        misses = after[1] - before[1]
        span.set_attribute("verify_hits", hits)
        span.set_attribute("verify_misses", misses)
        span.set_attribute(
            "cache", "hit" if hits and not misses else ("miss" if misses else "idle")
        )

    # ------------------------------------------------------------------
    # Individual checks (each charges its own timer phase)
    # ------------------------------------------------------------------

    def check_public_key(
        self, oid: ObjectId, key: PublicKey, timer: AccessTimer
    ) -> PublicKey:
        """Step 5 of Fig. 3: SHA-1(key) must equal the OID."""
        with self.tracer.span("check.public_key", oid=oid.hex[:16]):
            with self._count("public_key"):
                with timer.phase("verify_public_key"), self._compute():
                    return oid.check_key(key)

    def check_revocation(
        self,
        oid: ObjectId,
        timer: AccessTimer,
        element_name: Optional[str] = None,
        cert_version: Optional[int] = None,
    ) -> None:
        """The seventh check: nothing about the OID may be revoked.

        Raises :class:`~repro.errors.RevocationError` subclasses — a
        revoked key/element, or a feed view staler than the configured
        window (fail closed). Runs at establish time (key scope, before
        paying for certificate verification), before serving any
        content-cache hit, and after each element fetch with the
        certificate version in hand.
        """
        if self.revocation_checker is None:
            return
        with self.tracer.span(
            "check.revocation", oid=oid.hex[:16], element=element_name or ""
        ) as span:
            with self._count("revocation"):
                with timer.phase("check_revocation"), self._compute():
                    self.revocation_checker.check(
                        oid, element_name=element_name, cert_version=cert_version
                    )
            staleness = self.revocation_checker.staleness
            if staleness is not None:
                span.set_attribute("feed_staleness", round(staleness, 3))

    def check_frontier(
        self,
        oid: ObjectId,
        object_key: PublicKey,
        grants: List[WriterGrant],
        deltas: List[SignedDelta],
        timer: AccessTimer,
        known_frontier: Optional[Frontier] = None,
        frontier_cert: Optional[FrontierCertificate] = None,
        served_ids: Optional[set] = None,
    ) -> VerifiedFrontier:
        """The eighth check: a multi-writer served state proves itself.

        In order, failing closed at the first violation:

        * each served grant is verified under the object key (which the
          caller already checked hashes to the OID); a grant that fails
          — lapsed ``not_after``, malformed body, wrong signer — simply
          grants nothing and is skipped, which is strictly fail-safe:
          authority only ever shrinks, and one dead grant in the bundle
          cannot condemn other writers' deltas. A writer may hold
          several verified grants (re-key history); any one of them
          covering a delta's embedded key authorizes that delta;
        * every delta signature verifies under its writer key, which a
          verified grant must cover — forged bytes are
          :class:`~repro.errors.DeltaForgeryError`, a genuine delta for
          another object :class:`~repro.errors.DeltaReplayError`, a
          writer with no verified covering grant
          :class:`~repro.errors.UnauthorizedWriterError`;
        * no delta is signed by a writer the owner has revoked through
          the feed — :class:`~repro.errors.RevokedWriterError`.
          Revocation is retroactive: the writer's pre-revocation deltas
          condemn the served state too (see
          :meth:`~repro.revocation.statement.RevocationStatement.revoke_writer`);
        * the hash-linked DAG closes (every parent present) and the
          server still carries every head this client verified before:
          each *known_frontier* head must appear in *served_ids* (the
          id set the server claims to serve — pass the wire bundle's
          id list, NOT the union with local state, or a rolled-back
          server hides behind the client's own retained copy) — else
          :class:`~repro.errors.BranchWithholdingError`;
        * the merge is recomputed locally, deterministically; when the
          server presents a frontier certificate, its signer must hold a
          grant (or be the owner) and its claim must match a local
          re-merge of exactly the heads it names.

        Returns the locally computed :class:`VerifiedFrontier` — the
        server's own merge result, if any, is never used.
        """
        with self.tracer.span(
            "check.frontier", oid=oid.hex[:16], deltas=len(deltas)
        ) as span:
            with self._count("frontier"):
                with timer.phase("verify_frontier"), self._compute():
                    result = self._check_frontier(
                        oid, object_key, grants, deltas,
                        known_frontier, frontier_cert, served_ids,
                    )
            span.set_attribute("heads", len(result.merged.frontier.heads))
            span.set_attribute("lamport", result.merged.lamport)
            return result

    def _check_frontier(
        self,
        oid: ObjectId,
        object_key: PublicKey,
        grants: List[WriterGrant],
        deltas: List[SignedDelta],
        known_frontier: Optional[Frontier],
        frontier_cert: Optional[FrontierCertificate],
        served_ids: Optional[set],
    ) -> VerifiedFrontier:
        cache = self.verification_cache
        #: writer_id -> {writer key DER -> grant}: a writer may hold
        #: several live grants after an owner re-key, and each key's
        #: deltas stay verifiable under its own grant.
        granted: dict = {}
        for grant in grants:
            try:
                grant.verify(object_key, oid, clock=self.clock, cache=cache)
            except UnauthorizedWriterError:
                # A grant that no longer verifies grants nothing —
                # skipping it confers no authority (fail-safe), and only
                # deltas that depended on it will fail below, instead of
                # one lapsed grant condemning the whole read.
                continue
            granted.setdefault(grant.writer_id, {})[grant.writer_key.der] = grant
        revoked = (
            self.revocation_checker.revoked_writers(oid)
            if self.revocation_checker is not None
            else set()
        )
        for delta in deltas:
            delta.verify(oid, cache=cache)
            if delta.writer_key.der not in granted.get(delta.writer_id, {}):
                raise UnauthorizedWriterError(
                    f"delta {delta.delta_id[:12]}… is signed by writer "
                    f"{delta.writer_id!r} without a verified grant from "
                    "the owner covering its key"
                )
            if delta.writer_id in revoked:
                raise RevokedWriterError(
                    f"delta {delta.delta_id[:12]}… is signed by writer "
                    f"{delta.writer_id!r}, whose grant the owner revoked"
                )
        dag = DeltaDag()
        try:
            dag.add_all(deltas)
        except VersioningError as exc:
            # An unclosed DAG *is* withholding: the server shipped
            # children while hiding their ancestry.
            raise BranchWithholdingError(
                f"served delta set does not close: {exc}"
            ) from exc
        if known_frontier is not None:
            for head in known_frontier.heads:
                served = head in served_ids if served_ids is not None else head in dag
                if not served:
                    raise BranchWithholdingError(
                        f"server no longer serves verified head "
                        f"{head[:12]}… — a previously seen branch is "
                        "being withheld"
                    )
        merged = merge_deltas(dag.deltas, oid_hex=oid.hex)
        if frontier_cert is not None:
            frontier_cert.verify(oid, cache=cache)
            signer = frontier_cert.signer_key.der
            signer_writer = next(
                (
                    grant
                    for by_key in granted.values()
                    for grant in by_key.values()
                    if grant.writer_key.der == signer
                ),
                None,
            )
            if signer != object_key.der:
                if signer_writer is None:
                    raise UnauthorizedWriterError(
                        "frontier certificate is signed by a key the owner "
                        "never granted"
                    )
                if signer_writer.writer_id in revoked:
                    raise RevokedWriterError(
                        f"frontier certificate signer {signer_writer.writer_id!r} "
                        "has been revoked by the owner"
                    )
            cert_heads = frontier_cert.frontier.heads
            missing = [h for h in cert_heads if h not in dag]
            if missing:
                raise BranchWithholdingError(
                    f"frontier certificate names head {missing[0][:12]}… "
                    "but the server did not serve that branch"
                )
            # Re-merge exactly the certified heads (they may be a stale
            # but genuine prefix of the served DAG after gossip).
            cert_merge = merge_deltas(
                [dag.get(i) for i in sorted(dag.ancestors(cert_heads))],
                oid_hex=oid.hex,
            )
            if cert_merge.digest != frontier_cert.state_digest:
                raise BranchWithholdingError(
                    "frontier certificate digest does not match the merge "
                    "of the heads it names — the served DAG and the "
                    "certified state diverge"
                )
        return VerifiedFrontier(merged=merged, dag=dag, frontier_cert=frontier_cert)

    def check_identity(
        self,
        key: PublicKey,
        certificates: List[IdentityCertificate],
        timer: AccessTimer,
        require: bool = False,
    ) -> Optional[str]:
        """Step 7 of Fig. 3: find an identity proof from a trusted CA.

        Returns the certified name or None. With ``require=True`` a
        missing proof raises (strict mode for e-commerce-grade use,
        §3.1.2); default is advisory, matching the paper's UI flow.
        """
        before = self._fastpath_snapshot()
        with self.tracer.span(
            "check.identity", proofs=len(certificates), require=require
        ) as span:
            with self._count("identity"):
                with timer.phase("verify_identity_proofs"), self._compute():
                    match = self.trust_store.first_match(
                        certificates,
                        clock=self.clock,
                        expected_subject_key=key,
                        cache=self.verification_cache,
                    )
                self._span_cache_attrs(span, before)
                self._record_fastpath(timer, before)
                if match is not None:
                    span.set_attribute("certified_as", match.subject_name)
                    return match.subject_name
                if require:
                    raise AuthenticityError(
                        "no identity certificate from a trusted CA was presented"
                    )
                return None

    def check_certificate(
        self,
        key: PublicKey,
        integrity: IntegrityCertificate,
        oid: ObjectId,
        timer: AccessTimer,
    ) -> IntegrityCertificate:
        """Step 9 of Fig. 3: certificate signed by the object key, and
        issued for this OID (prevents cross-object certificate replay)."""
        before = self._fastpath_snapshot()
        with self.tracer.span("check.certificate", oid=oid.hex[:16]) as span:
            with self._count("certificate"):
                with timer.phase("verify_certificate"), self._compute():
                    integrity.verify_signature(
                        key, cache=self.verification_cache, clock=self.clock
                    )
                    if integrity.oid_hex != oid.hex:
                        raise AuthenticityError(
                            "integrity certificate was issued for a different object"
                        )
                self._span_cache_attrs(span, before)
                self._record_fastpath(timer, before)
                return integrity

    def prewarm_certificates(self, pairs) -> int:
        """Batch-verify (key, integrity certificate) pairs into the cache.

        The pipeline scheduler calls this with every certificate a wave
        prefetched: :func:`~repro.crypto.batch.verify_batch` runs one RSA
        operation per distinct certificate and records the successes in
        the shared verification cache, so the per-object
        :meth:`check_certificate` that follows is a cache hit. Failures
        are *dropped here on purpose* — the sequential check re-runs the
        real RSA and raises the exact error in its proper context.
        Returns the number of signatures that verified.

        No-op without a verification cache (nowhere to amortize into).
        """
        pairs = list(pairs)
        if self.verification_cache is None or not pairs:
            return 0
        with self.tracer.span("pipeline.batch_verify", items=len(pairs)) as span:
            with self._compute():
                verdicts = verify_batch(
                    [
                        BatchItem(
                            key=key,
                            envelope=integrity.certificate.envelope,
                            expires_at=integrity.certificate.not_after,
                        )
                        for key, integrity in pairs
                    ],
                    cache=self.verification_cache,
                    now=self.clock.now(),
                )
            verified = sum(1 for verdict in verdicts if verdict is None)
            span.set_attribute("verified", verified)
            span.set_attribute("failed", len(verdicts) - verified)
            return verified

    def check_element(
        self,
        integrity: IntegrityCertificate,
        requested_name: str,
        element: PageElement,
        timer: AccessTimer,
    ) -> ElementEntry:
        """Steps 11–13 of Fig. 3: hash, freshness, consistency.

        Phase accounting separates the (size-proportional) hash from the
        (constant) freshness/consistency comparisons, matching the
        paper's observation that hashing dominates large transfers.
        """
        # Consistency: the right name, and part of the object.
        with self.tracer.span("check.consistency", element=requested_name):
            with self._count("consistency"):
                with timer.phase("check_consistency"):
                    if element.name != requested_name:
                        raise ConsistencyError(
                            f"server returned {element.name!r} "
                            f"for request {requested_name!r}"
                        )
                    entry = integrity.entry_for(requested_name)
        # Authenticity: content hash (the expensive, size-proportional part).
        with self.tracer.span(
            "check.element_hash", element=requested_name, size=element.size
        ):
            with self._count("element_hash"):
                with timer.phase("verify_element_hash"), self._compute():
                    if element.content_hash(integrity.suite) != entry.content_hash:
                        raise AuthenticityError(
                            f"content hash mismatch for element {requested_name!r}"
                        )
        # Freshness: validity interval against retrieval time.
        with self.tracer.span("check.freshness", element=requested_name):
            with self._count("freshness"):
                with timer.phase("check_freshness"):
                    now = self.clock.now()
                    if now > entry.expires_at:
                        raise FreshnessError(
                            f"element {requested_name!r} expired at {entry.expires_at} "
                            f"(retrieved at {now})"
                        )
        return entry
